// Quickstart: define a small associative-skew instance by hand, route it
// with AST-DME, verify the constraints with the independent evaluator, and
// print the result.
//
//   $ ./quickstart

#include "core/router.hpp"
#include "eval/report.hpp"
#include "eval/skew_matrix.hpp"

#include <iostream>

using namespace astclk;

int main() {
    // Eight flip-flops in two timing groups on a 1000 x 1000 die.
    // Zero skew is required within each group; the two groups are free to
    // differ (associative skew).
    topo::instance inst;
    inst.name = "quickstart";
    inst.die_width = inst.die_height = 1000.0;
    inst.source = {500.0, 0.0};
    inst.num_groups = 2;
    inst.sinks = {
        {{100.0, 200.0}, 12e-15, 0}, {{850.0, 150.0}, 18e-15, 1},
        {{300.0, 700.0}, 10e-15, 0}, {{600.0, 800.0}, 25e-15, 1},
        {{450.0, 350.0}, 15e-15, 0}, {{150.0, 900.0}, 20e-15, 1},
        {{900.0, 600.0}, 11e-15, 0}, {{700.0, 400.0}, 14e-15, 1},
    };

    // Route: zero intra-group skew, Elmore delay, default engine.
    const core::route_result route = core::route_ast_dme(inst);

    // Independent verification (rebuilds the RC tree from scratch).
    const rc::delay_model model = rc::delay_model::elmore();
    const auto ev = eval::evaluate(route.tree, inst, model);
    const auto vr =
        eval::verify_route(route, inst, model, core::skew_spec::zero());

    std::cout << "routed " << inst.size() << " sinks in " << inst.num_groups
              << " groups\n"
              << "  wirelength       : " << route.wirelength << " units\n"
              << "  intra-group skew : " << rc::to_ps(ev.max_intra_group_skew)
              << " ps (constraint: 0)\n"
              << "  inter-group skew : " << rc::to_ps(ev.global_skew)
              << " ps (free by-product)\n"
              << "  merges           : " << route.stats.merges << " ("
              << route.stats.disjoint_merges << " cross-group)\n"
              << "  verification     : " << (vr.ok ? "OK" : vr.message)
              << '\n';

    // Per-sink delays for the curious.
    for (std::size_t i = 0; i < inst.size(); ++i) {
        std::cout << "  sink " << i << " (group " << inst.sinks[i].group
                  << "): " << rc::to_ps(ev.sink_delay[i]) << " ps\n";
    }

    // Full report incl. the inter-group offset matrix S_ij (the paper's
    // by-product, Ch. II).
    std::cout << '\n' << eval::format_report(ev, inst);
    return vr.ok ? 0 : 1;
}
