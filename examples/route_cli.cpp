// Command-line router over the routing service: read an instance file,
// build a routing_request, submit it through route_service's streaming
// API (strategy registry + prioritised worker pool), verify, print the
// report, optionally export SVG/JSON.
//
//   $ ./route_cli INSTANCE [--algo ast|zst|bst|sep] [--bound PS]
//                 [--mode auto|windowed|exact|soft] [--threads N]
//                 [--deadline MS] [--speculate K] [--no-plan-cache]
//                 [--kernel scalar|batch] [--shards K|auto] [--retries N]
//                 [--degrade] [--fault-seed S] [--svg OUT.svg]
//                 [--json OUT.json]
//
// --threads 0 (default) uses the hardware concurrency; multi-merge engine
// rounds fan out across the pool, and results are bit-identical to
// --threads 1.  --speculate K dispatches the top-K nearest-pair candidates'
// plan() calls ahead of selection (needs >= 2 threads to engage;
// bit-identical trees either way) and --no-plan-cache disables the
// cross-step plan memo speculation lands in; the stats block reports the
// cache and speculation counters.  --kernel selects the merge-plan solve
// path (DESIGN.md §11): "batch" — the default — drains plan work through
// the SoA batch kernels with scalar fallback for general-path lanes,
// "scalar" pins the reference per-pair plan(); trees and every
// pre-existing statistic are bit-identical either way, only wall-clock
// and the kernel counters in the stats block move.  --shards K routes through the sharded
// reduction (partition + parallel sub-reduce + associative stitch;
// "auto" or 0 picks a count from the instance size and the thread pool,
// 1 — the default — keeps the monolithic engine; ledger-backed AST modes
// always reduce monolithically).  --deadline bounds the route's wall-clock: an expired
// deadline stops the engine at the next merge-round checkpoint and the
// run exits with status `deadline_exceeded`.
//
// Resilience (DESIGN.md §10): --retries N grants the request N total
// attempts with bounded exponential backoff on transient faults;
// --degrade arms the graceful-degradation ladder and partial-result
// salvage, so deadline/fault casualties come back as a valid (re-verified)
// tree tagged `degraded` with the rung and reason printed; --fault-seed S
// attaches a seeded deterministic fault plan (fault_plan::seeded) for
// drilling the machinery — the same seed fires the same faults at the
// same checkpoints every run.  Exit status: 0 when routing and
// verification succeed at full fidelity, 4 for a verified degraded
// result, 3 when the request was cancelled or timed out, 1 on errors.

#include "core/route_service.hpp"
#include "eval/report.hpp"
#include "eval/skew_matrix.hpp"
#include "io/instance_io.hpp"
#include "io/svg.hpp"
#include "io/tree_json.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace astclk;

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " INSTANCE [--algo ast|zst|bst|sep] [--bound PS]\n"
                 "          [--mode auto|windowed|exact|soft]"
                 " [--threads N] [--deadline MS]\n"
                 "          [--speculate K] [--no-plan-cache]"
                 " [--kernel scalar|batch]\n"
                 "          [--shards K|auto]\n"
                 "          [--retries N] [--degrade] [--fault-seed S]\n"
                 "          [--svg OUT.svg] [--json OUT.json]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(argv[0]);
    std::string path = argv[1];
    std::string algo = "ast";
    std::string mode = "auto";
    std::string svg_out, json_out;
    double bound_ps = 10.0;
    int threads = 0;
    double deadline_ms = 0.0;  // <= 0: none
    int speculate_k = 0;
    bool plan_cache = true;
    core::plan_kernel kernel = core::plan_kernel::batch;
    int shards = 1;
    int retries = 1;
    bool degrade = false;
    long long fault_seed = -1;  // < 0: no fault plan
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        const auto need = [&](const char* opt) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << opt << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--algo")
            algo = need("--algo");
        else if (a == "--bound")
            bound_ps = std::atof(need("--bound"));
        else if (a == "--mode")
            mode = need("--mode");
        else if (a == "--threads")
            threads = std::atoi(need("--threads"));
        else if (a == "--deadline")
            deadline_ms = std::atof(need("--deadline"));
        else if (a == "--speculate")
            speculate_k = std::atoi(need("--speculate"));
        else if (a == "--no-plan-cache")
            plan_cache = false;
        else if (a == "--kernel") {
            // Strict parse: a typo must not silently pick the other solve
            // path (the two are bit-identical, so a misspelling would only
            // show up as a perf mystery).
            const std::string v = need("--kernel");
            if (v == "scalar")
                kernel = core::plan_kernel::scalar;
            else if (v == "batch")
                kernel = core::plan_kernel::batch;
            else {
                std::cerr << "--kernel wants \"scalar\" or \"batch\"\n";
                return usage(argv[0]);
            }
        }
        else if (a == "--shards") {
            // Strict parse: a typo must not silently select a different
            // routing mode ("auto"/0 = heuristic, K >= 1 = fixed count).
            const std::string v = need("--shards");
            if (v == "auto") {
                shards = 0;
            } else {
                char* end = nullptr;
                const long parsed = std::strtol(v.c_str(), &end, 10);
                if (end == v.c_str() || *end != '\0' || parsed < 0) {
                    std::cerr << "--shards wants a count >= 1, 0 or "
                                 "\"auto\"\n";
                    return usage(argv[0]);
                }
                shards = static_cast<int>(parsed);
            }
        }
        else if (a == "--retries") {
            retries = std::atoi(need("--retries"));
            if (retries < 1) {
                std::cerr << "--retries wants a total attempt count >= 1\n";
                return usage(argv[0]);
            }
        } else if (a == "--degrade")
            degrade = true;
        else if (a == "--fault-seed")
            fault_seed = std::atoll(need("--fault-seed"));
        else if (a == "--svg")
            svg_out = need("--svg");
        else if (a == "--json")
            json_out = need("--json");
        else
            return usage(argv[0]);
    }

    topo::instance inst;
    try {
        inst = io::load_instance(path);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }

    core::routing_request req;
    req.instance = &inst;
    req.options.engine.speculate_k = speculate_k;
    req.options.engine.plan_cache = plan_cache;
    req.options.engine.kernel = kernel;
    req.options.engine.shards = shards;
    const auto id = core::strategy_registry::global().id_of(algo);
    if (!id.has_value()) return usage(argv[0]);
    req.strategy = *id;
    core::skew_spec constraint = core::skew_spec::zero();
    if (req.strategy == core::strategy_id::ext_bst) {
        req.spec = core::skew_spec::uniform(bound_ps * 1e-12);
        constraint = req.spec;
    } else if (req.strategy == core::strategy_id::ast_dme) {
        if (mode == "windowed")
            req.mode = core::ast_mode::windowed;
        else if (mode == "exact")
            req.mode = core::ast_mode::exact_ledger;
        else if (mode == "soft")
            req.mode = core::ast_mode::soft_ledger;
        else if (mode != "auto")
            return usage(argv[0]);
    }

    // The fault plan is borrowed by the request's cancel token, so it must
    // outlive the route (and the service draining it).
    core::fault_plan faults = core::fault_plan::seeded(
        fault_seed >= 0 ? static_cast<std::uint64_t>(fault_seed) : 0,
        fault_seed >= 0 ? 2 : 0);
    if (fault_seed >= 0) req.options.engine.cancel.set_faults(&faults);

    core::service_options sopt;
    sopt.threads = threads;
    core::route_service service(sopt);
    core::submit_options sub;
    sub.retry.max_attempts = retries;
    sub.degrade.enabled = degrade;
    if (deadline_ms > 0.0)
        sub.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms));
    const char* kernel_name =
        kernel == core::plan_kernel::batch ? "batch" : "scalar";
    std::cout << "routing " << path << " [" << algo << ", kernel "
              << kernel_name << "]\n";
    core::route_handle handle = service.submit(req, sub);
    core::route_result route = handle.wait();
    if (!route.usable()) {
        std::cerr << "route " << core::to_string(route.status) << ": "
                  << route.status_message << " (after " << route.cpu_seconds
                  << " s, " << route.attempts << " attempt"
                  << (route.attempts == 1 ? "" : "s") << ")\n";
        return route.status == core::route_status::error ? 1 : 3;
    }
    const bool degraded = route.status == core::route_status::degraded;
    const core::router_options& opt = req.options;

    const auto ev = eval::evaluate(route.tree, inst, opt.model);
    std::cout << eval::format_report(ev, inst);
    std::cout << "  cpu             : " << route.cpu_seconds << " s ("
              << route.threads_used << " thread"
              << (route.threads_used == 1 ? "" : "s") << ")\n";
    std::cout << "  merges          : " << route.stats.merges << " ("
              << route.stats.disjoint_merges << " cross-group, "
              << route.stats.root_snakes << " snaked, "
              << route.stats.interior_snakes << " interior snakes)\n";
    const auto& st = route.stats;
    const int plan_lookups = st.plan_cache_hits + st.plan_cache_misses;
    std::cout << "  plan cache      : " << st.plan_cache_hits << " hits / "
              << st.plan_cache_misses << " misses";
    if (plan_lookups > 0)
        std::cout << " ("
                  << static_cast<int>(100.0 * st.plan_cache_hits /
                                      plan_lookups)
                  << "% hit rate)";
    std::cout << "\n  speculation     : " << st.speculated_plans
              << " dispatched, " << st.speculative_hits << " consumed, "
              << st.wasted_speculation << " wasted\n";
    std::cout << "  kernel          : " << kernel_name << " ("
              << st.batch_planned << " batch-planned, "
              << st.kernel_fallbacks << " fallbacks, "
              << st.nn_scratch_reuses << " scratch reuses)\n";
    if (st.shards > 0)
        std::cout << "  shards          : " << st.shards
                  << " sub-reductions\n";
    if (route.attempts > 1)
        std::cout << "  attempts        : " << route.attempts << '\n';
    if (degraded) {
        const auto& deg = route.degradation;
        std::cout << "  degraded        : rung "
                  << static_cast<int>(deg.rung) << " ("
                  << core::to_string(deg.rung) << ") — " << deg.reason
                  << '\n';
        if (deg.rung == core::degrade_rung::salvaged)
            std::cout << "  salvage         : " << deg.salvaged_shards
                      << " sub-trees recovered, " << deg.greedy_shards
                      << " completed greedily\n";
    }

    eval::verify_options vopt;
    if (degraded)
        vopt.skew_tolerance = route.stats.worst_violation + 1e-15;
    else if (algo == "sep" || algo == "zst" || algo == "bst" ||
             mode != "windowed")
        vopt.skew_tolerance = 1e-15;
    else
        vopt.skew_tolerance = route.stats.worst_violation + 1e-15;
    const auto vr = eval::verify_route(route, inst, opt.model, constraint,
                                       vopt);
    std::cout << "  verification    : " << (vr.ok ? "OK" : vr.message)
              << '\n';

    if (!svg_out.empty()) {
        io::save_tree_svg(svg_out, route.tree, inst);
        std::cout << "  wrote " << svg_out << '\n';
    }
    if (!json_out.empty()) {
        io::save_tree_json(json_out, route.tree, inst);
        std::cout << "  wrote " << json_out << '\n';
    }
    return vr.ok ? (degraded ? 4 : 0) : 1;
}
