// Clustered-groups flow (the paper's first experiment): synthesise an
// r1-style benchmark, partition the die into rectangular group boxes,
// route with EXT-BST and AST-DME, compare, and export artifacts (instance
// file + SVG renderings) to the current directory.
//
//   $ ./clustered_flow [num_groups]       (default 8)

#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "io/instance_io.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"

#include <cstdlib>
#include <iostream>

using namespace astclk;

int main(int argc, char** argv) {
    const int k = argc > 1 ? std::atoi(argv[1]) : 8;

    auto inst = gen::generate(gen::paper_spec("r1"));
    gen::apply_clustered_groups(inst, k);
    std::cout << "instance: " << inst.size() << " sinks, " << inst.num_groups
              << " clustered groups\n";
    io::save_instance("clustered_r1.inst", inst);
    std::cout << "wrote clustered_r1.inst\n";

    const core::router_options opt;
    const auto ext = core::route_ext_bst(inst, 10e-12, opt);
    const auto ast = core::route_ast_dme(inst);

    io::table t({"Algorithm", "Wirelen", "MaxSkew(ps)", "IntraSkew(ps)",
                 "CPU(s)"});
    for (const auto& [name, r] :
         {std::pair<const char*, const core::route_result&>{"EXT-BST 10ps",
                                                            ext},
          {"AST-DME", ast}}) {
        const auto ev = eval::evaluate(r.tree, inst, opt.model);
        t.add_row({name, io::table::integer(r.wirelength),
                   io::table::fixed(rc::to_ps(ev.global_skew), 1),
                   io::table::fixed(rc::to_ps(ev.max_intra_group_skew), 4),
                   io::table::fixed(r.cpu_seconds, 2)});
    }
    t.print(std::cout);
    std::cout << "reduction: "
              << io::table::percent(1.0 - ast.wirelength / ext.wirelength)
              << '\n';

    io::save_tree_svg("clustered_ext_bst.svg", ext.tree, inst);
    io::save_tree_svg("clustered_ast_dme.svg", ast.tree, inst);
    std::cout << "wrote clustered_ext_bst.svg / clustered_ast_dme.svg\n";

    const auto vr =
        eval::verify_route(ast, inst, opt.model, core::skew_spec::zero());
    std::cout << "verification: " << (vr.ok ? "OK" : vr.message) << '\n';
    return vr.ok ? 0 : 1;
}
