// Walkthrough of the paper's merge-case geometry (Figs. 1, 3, 4, 5) using
// the public geometry and solver APIs — prints the regions and solved
// splits so the cases can be inspected by hand.
//
//   $ ./merge_cases

#include "core/merge_solver.hpp"
#include "geom/octagon.hpp"

#include <iostream>

using namespace astclk;

namespace {

void print_region(const char* label, const geom::octagon& o) {
    std::cout << label << ":\n  slabs " << o << "\n  vertices:";
    for (const auto& v : o.vertices())
        std::cout << " (" << v.x << ", " << v.y << ")";
    std::cout << "\n  area " << o.area() << "\n\n";
}

}  // namespace

int main() {
    std::cout << "=== Merging segments and regions, case by case ===\n\n";

    // --- Case 1 (same group): classic DME merging segment ------------------
    {
        const auto a = geom::tilted_rect::at(geom::point{0, 0});
        const auto b = geom::tilted_rect::at(geom::point{8, 4});
        const double d = a.distance(b);
        const auto ms = geom::merging_segment(a, b, d / 2, d / 2);
        std::cout << "Case 1 (same group, equal halves): sinks (0,0), (8,4), "
                     "d = " << d << "\n  merging segment (tilted) " << ms
                  << "\n  is Manhattan arc: " << std::boolalpha
                  << ms.is_manhattan_arc() << "\n\n";
    }

    // --- Case 2 (different groups): the SDR (Fig. 3) ------------------------
    {
        const geom::tilted_rect ms_a{geom::interval::at(10.0),
                                     geom::interval{-5.0, 5.0}};
        const geom::tilted_rect ms_b{geom::interval{30.0, 40.0},
                                     geom::interval::at(2.0)};
        std::cout << "Case 2 (different groups, Fig. 3): distance "
                  << ms_a.distance(ms_b) << '\n';
        print_region("  shortest-distance region",
                     geom::shortest_distance_region(ms_a, ms_b));
    }

    // --- Cases 3/4 (partially shared groups, Figs. 4-5) ---------------------
    {
        topo::instance inst;
        inst.num_groups = 2;
        inst.die_width = inst.die_height = 5000.0;
        inst.source = {0, 0};
        inst.sinks = {{{0, 0}, 10e-15, 0},     {{60, 0}, 10e-15, 1},
                      {{2205, 0}, 10e-15, 0},  {{1200, 0}, 10e-15, 1},
                      {{3200, 0}, 10e-15, 1}};
        topo::clock_tree t;
        std::vector<topo::node_id> leaves;
        for (int i = 0; i < 5; ++i) leaves.push_back(t.add_leaf(inst, i));
        core::merge_solver solver(rc::delay_model::elmore(),
                                  core::skew_spec::zero());
        const auto commit = [&](topo::node_id x, topo::node_id y) {
            auto p = solver.plan(t, x, y);
            return solver.commit(t, x, y, *p);
        };
        const auto left = commit(leaves[0], leaves[1]);    // {G0, G1}
        const auto deep = commit(leaves[3], leaves[4]);    // deep G1 pair
        const auto right = commit(leaves[2], deep);        // {G0, G1}

        const auto& dl = t.node(left).delays;
        const auto& dr = t.node(right).delays;
        std::cout << "Case 4 (Fig. 5): two subtrees each spanning {G0, G1}\n"
                  << "  left  frozen offset t_G0 - t_G1 = "
                  << rc::to_ps(dl.find(0)->lo - dl.find(1)->lo) << " ps\n"
                  << "  right frozen offset t_G0 - t_G1 = "
                  << rc::to_ps(dr.find(0)->lo - dr.find(1)->lo) << " ps\n";
        const auto plan = solver.plan(t, left, right);
        if (plan.has_value()) {
            std::cout << "  merge solved with " << plan->snakes.size()
                      << " interior snake(s) (Eq. 5.2 gamma";
            for (const auto& s : plan->snakes)
                std::cout << " " << s.gamma << "u/+"
                          << rc::to_ps(s.delay_shift) << "ps";
            std::cout << "), alpha = " << plan->alpha
                      << ", beta = " << plan->beta
                      << ", wire cost = " << plan->cost << '\n';
        } else {
            std::cout << "  merge rejected (irreparable conflict)\n";
        }
    }
    return 0;
}
