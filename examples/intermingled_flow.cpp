// Intermingled-groups flow (the paper's "difficult instances"): random
// group assignment, a sweep over group counts, and a comparison of the
// AST conflict strategies — the full reproduction of the paper's second
// experiment on one circuit.
//
//   $ ./intermingled_flow [circuit]       (default r2)

#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "io/table.hpp"

#include <iostream>
#include <string>

using namespace astclk;

int main(int argc, char** argv) {
    const std::string circuit = argc > 1 ? argv[1] : "r2";
    const auto base = gen::generate(gen::paper_spec(circuit));
    const core::router_options opt;

    const auto ext = core::route_ext_bst(base, 10e-12, opt);
    std::cout << circuit << ": " << base.size()
              << " sinks; EXT-BST(10ps) wirelength "
              << io::table::integer(ext.wirelength) << "\n\n";

    io::table t({"k", "Mode", "Wirelen", "vs EXT-BST", "MaxSkew(ps)",
                 "IntraSkew(ps)", "Forced"});
    for (int k : {4, 6, 8, 10}) {
        auto inst = base;
        gen::apply_intermingled_groups(inst, k, 7);
        for (const auto& [label, mode] :
             {std::pair<const char*, core::ast_mode>{
                  "exact", core::ast_mode::exact_ledger},
              {"windowed", core::ast_mode::windowed}}) {
            const auto r =
                core::route_ast_dme(inst, core::skew_spec::zero(), opt, mode);
            const auto ev = eval::evaluate(r.tree, inst, opt.model);
            t.add_row({std::to_string(k), label,
                       io::table::integer(r.wirelength),
                       io::table::percent(1.0 - r.wirelength / ext.wirelength),
                       io::table::fixed(rc::to_ps(ev.global_skew), 1),
                       io::table::fixed(rc::to_ps(ev.max_intra_group_skew), 4),
                       std::to_string(r.stats.forced_merges)});
        }
        t.add_rule();
    }
    t.print(std::cout);
    std::cout << "\nexact mode guarantees zero intra-group skew; the "
                 "windowed mode is the paper's literal merge-case algorithm "
                 "(residual violations possible — see EXPERIMENTS.md).\n";
    return 0;
}
