// Regenerates Figure 2's argument: constructing a separate tree per sink
// group and stitching (the prior work [12]) overlaps wire on intermingled
// groups; allowing cross-group merges (AST-DME) removes the overlap — "the
// wirelength can be reduced up to 1/3" in the paper's drawing.
//
// We sweep alternating-group combs (maximal interleaving) and random
// intermingled instances, printing the separate/merged wirelength ratio.

#include "common.hpp"

using namespace astclk;

namespace {

topo::instance comb(int teeth) {
    topo::instance inst;
    inst.name = "comb" + std::to_string(teeth);
    inst.num_groups = 2;
    inst.die_width = static_cast<double>(teeth) * 10.0;
    inst.die_height = 20.0;
    inst.source = {inst.die_width / 2, 10.0};
    for (int i = 0; i < teeth; ++i)
        inst.sinks.push_back({{10.0 * i + 1.0, 10.0},
                              10e-15,
                              static_cast<topo::group_id>(i % 2)});
    return inst;
}

}  // namespace

int main() {
    std::cout << "Figure 2 — separate per-group trees vs cross-group "
                 "merging\n\n";
    const core::router_options opt;

    {
        std::cout << "Alternating two-group combs (maximal interleaving):\n";
        io::table t({"Teeth", "Separate+stitch", "AST-DME", "Saved",
                     "Sep/AST"});
        for (int teeth : {8, 16, 32, 64}) {
            const auto inst = comb(teeth);
            const auto sep = core::route_separate_stitch(inst, opt);
            const auto ast = core::route_ast_dme(inst);
            t.add_row({std::to_string(teeth),
                       io::table::integer(sep.wirelength),
                       io::table::integer(ast.wirelength),
                       io::table::percent(1.0 -
                                          ast.wirelength / sep.wirelength),
                       io::table::fixed(sep.wirelength / ast.wirelength, 2)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "Random intermingled instances (r1 die, k groups):\n";
        io::table t({"Sinks", "k", "Separate+stitch", "AST-DME", "Saved"});
        for (int n : {100, 267}) {
            for (int k : {4, 8}) {
                gen::instance_spec spec = gen::paper_spec("r1");
                spec.num_sinks = n;
                auto inst = gen::generate(spec);
                gen::apply_intermingled_groups(inst, k, 17);
                const auto sep = core::route_separate_stitch(inst, opt);
                const auto ast = core::route_ast_dme(inst);
                t.add_row({std::to_string(n), std::to_string(k),
                           io::table::integer(sep.wirelength),
                           io::table::integer(ast.wirelength),
                           io::table::percent(
                               1.0 - ast.wirelength / sep.wirelength)});
            }
        }
        t.print(std::cout);
        std::cout << "\n(Paper: separate construction can waste up to 1/3 of "
                     "the wire; intermingled groups make it far worse.)\n";
    }
    return 0;
}
