// Google-benchmark micro/meso benchmarks: the geometry kernel, the merge
// solver, and full routes across instance sizes (the CPU columns of
// Tables I/II in miniature).

#include "core/merge_solver.hpp"
#include "core/router.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "geom/octagon.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace astclk;

void bm_tilted_distance(benchmark::State& state) {
    const geom::tilted_rect a{geom::interval{0, 10}, geom::interval{5, 9}};
    const geom::tilted_rect b{geom::interval{40, 44}, geom::interval{-3, 2}};
    for (auto _ : state) benchmark::DoNotOptimize(a.distance(b));
}
BENCHMARK(bm_tilted_distance);

void bm_merging_segment(benchmark::State& state) {
    const geom::tilted_rect a{geom::interval{0, 10}, geom::interval{5, 9}};
    const geom::tilted_rect b{geom::interval{40, 44}, geom::interval{-3, 2}};
    const double d = a.distance(b);
    for (auto _ : state)
        benchmark::DoNotOptimize(geom::merging_segment(a, b, 0.3 * d, 0.7 * d));
}
BENCHMARK(bm_merging_segment);

void bm_sdr_octagon(benchmark::State& state) {
    const geom::tilted_rect a{geom::interval{0, 10}, geom::interval{5, 9}};
    const geom::tilted_rect b{geom::interval{40, 44}, geom::interval{-3, 2}};
    for (auto _ : state)
        benchmark::DoNotOptimize(geom::shortest_distance_region(a, b));
}
BENCHMARK(bm_sdr_octagon);

void bm_merge_plan(benchmark::State& state) {
    topo::instance inst;
    inst.num_groups = 2;
    inst.sinks = {{{0, 0}, 10e-15, 0}, {{5000, 2000}, 25e-15, 1}};
    topo::clock_tree t;
    const auto a = t.add_leaf(inst, 0);
    const auto b = t.add_leaf(inst, 1);
    core::merge_solver solver(rc::delay_model::elmore(),
                              core::skew_spec::zero());
    for (auto _ : state) benchmark::DoNotOptimize(solver.plan(t, a, b));
}
BENCHMARK(bm_merge_plan);

void bm_route(benchmark::State& state, core::ast_mode mode, bool grouped) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = static_cast<int>(state.range(0));
    auto inst = gen::generate(spec);
    if (grouped) gen::apply_intermingled_groups(inst, 6, 1);
    for (auto _ : state) {
        auto r = core::route_ast_dme(inst, core::skew_spec::zero(), {}, mode);
        benchmark::DoNotOptimize(r.wirelength);
    }
    state.SetComplexityN(state.range(0));
}

void bm_route_zst(benchmark::State& state) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = static_cast<int>(state.range(0));
    const auto inst = gen::generate(spec);
    for (auto _ : state) {
        auto r = core::route_zst_dme(inst);
        benchmark::DoNotOptimize(r.wirelength);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_route_zst)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void bm_route_ast_exact(benchmark::State& state) {
    bm_route(state, core::ast_mode::exact_ledger, true);
}
BENCHMARK(bm_route_ast_exact)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void bm_route_ast_windowed(benchmark::State& state) {
    bm_route(state, core::ast_mode::windowed, true);
}
BENCHMARK(bm_route_ast_windowed)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
