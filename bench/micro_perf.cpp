// Merge-engine scaling benchmark: wall-clock of the bottom-up reduce and
// of full AST-DME routes across instance sizes, for both nearest-neighbour
// backends (grid vs the linear verification scan).
//
// Emits a human table on stdout and a machine-readable
// BENCH_micro_perf.json (per-n wall-clock, merges/sec, backend tag) so
// future PRs can track the perf trajectory.
//
// Usage:  micro_perf [--quick] [output.json]
//   --quick   cap the sweep at n=512 (CI smoke)

#include "common.hpp"
#include "core/router_detail.hpp"

#include <chrono>
#include <cstring>
#include <limits>

namespace {

using namespace astclk;

double now_diff(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

const char* tag(core::nn_backend be) {
    return be == core::nn_backend::grid ? "grid" : "linear";
}

/// Time one engine.reduce run (the optimised subsystem in isolation).
bench::perf_record bench_reduce(const topo::instance& inst,
                                core::nn_backend be, int reps) {
    core::engine_options eopt;
    eopt.backend = be;
    const core::merge_solver solver(rc::delay_model::elmore(),
                                    core::skew_spec::zero());
    const core::bottom_up_engine engine(solver, eopt);
    bench::perf_record rec;
    rec.bench = "engine_reduce";
    rec.backend = tag(be);
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        topo::clock_tree t;
        auto roots = core::detail::make_leaves(inst, t, false);
        core::engine_stats st;
        const auto t0 = std::chrono::steady_clock::now();
        engine.reduce(t, std::move(roots), &st);
        rec.seconds = std::min(rec.seconds, now_diff(t0));
        rec.merges = st.merges;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// Time a full windowed AST-DME route (embedding included).
bench::perf_record bench_route(const topo::instance& inst,
                               core::nn_backend be, int reps) {
    core::router_options opt;
    opt.engine.backend = be;
    bench::perf_record rec;
    rec.bench = "route_ast_windowed";
    rec.backend = tag(be);
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        const auto r = core::route_ast_dme(inst, core::skew_spec::zero(), opt,
                                           core::ast_mode::windowed);
        rec.seconds = std::min(rec.seconds, r.cpu_seconds);
        rec.merges = r.stats.merges;
        rec.wirelength = r.wirelength;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (argv[i][0] == '-' || !out_path.empty()) {
            std::cerr << "usage: " << argv[0] << " [--quick] [output.json]\n";
            return 2;
        } else {
            out_path = argv[i];
        }
    }
    if (out_path.empty()) out_path = "BENCH_micro_perf.json";

    std::vector<int> sizes{64, 128, 256, 512, 1024, 2048, 3101};
    if (quick) sizes = {64, 128, 256, 512};

    std::cout << "micro_perf — merge-engine scaling (grid vs linear NN "
                 "backend)\n\n";
    io::table t({"Bench", "n", "Backend", "Wall(s)", "Merges/s", "Speedup"});
    std::vector<bench::perf_record> records;

    for (int n : sizes) {
        gen::instance_spec spec = gen::paper_spec("r1");
        spec.num_sinks = n;
        auto inst = gen::generate(spec);
        gen::apply_intermingled_groups(inst, 6, 1);
        const int reps = n >= 2048 ? 2 : 3;

        for (auto mk : {&bench_reduce, &bench_route}) {
            const auto grid = mk(inst, core::nn_backend::grid, reps);
            const auto lin = mk(inst, core::nn_backend::linear, reps);
            const double speedup =
                grid.seconds > 0.0 ? lin.seconds / grid.seconds : 0.0;
            t.add_row({grid.bench, std::to_string(grid.n), grid.backend,
                       io::table::fixed(grid.seconds, 4),
                       io::table::integer(grid.merges_per_sec),
                       io::table::fixed(speedup, 2) + "x"});
            t.add_row({lin.bench, std::to_string(lin.n), lin.backend,
                       io::table::fixed(lin.seconds, 4),
                       io::table::integer(lin.merges_per_sec), "1.00x"});
            records.push_back(grid);
            records.push_back(lin);
        }
    }

    t.print(std::cout);
    std::cout << "\n";
    if (!bench::write_perf_json(out_path, records)) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
