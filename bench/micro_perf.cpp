// Merge-engine scaling benchmark: wall-clock of the bottom-up reduce and
// of full AST-DME routes across instance sizes, for both nearest-neighbour
// backends (grid vs the linear verification scan) — plus the sharded
// die-region reduction on r5 and the large family (shard_reduce:
// monolithic vs auto shards at 1 thread and a hardware-wide pool, with
// the sharded-vs-monolithic wirelength delta in the JSON), aggregate
// throughput of a route_service batch (table2-style requests) at 1 worker
// thread vs 4, and per-request latency percentiles of the same requests
// streamed through the async submit API (service_stream).
//
// Emits a human table on stdout and a machine-readable
// BENCH_micro_perf.json (per-n wall-clock, merges/sec, latency
// percentiles, backend tag) so future PRs can track the perf trajectory
// (bench/perf_diff.py gates the engine benches and the streamed p95
// against the committed baseline).
//
// Usage:  micro_perf [--quick] [output.json]
//   --quick   cap the sweep at n=512 and shrink the batch (CI smoke)

#include "common.hpp"
#include "core/plan_kernels.hpp"
#include "core/router_detail.hpp"

#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

namespace {

using namespace astclk;

double now_diff(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

const char* tag(core::nn_backend be) {
    return be == core::nn_backend::grid ? "grid" : "linear";
}

/// Time one engine.reduce run (the optimised subsystem in isolation).
bench::perf_record bench_reduce(const topo::instance& inst,
                                core::nn_backend be, int reps) {
    core::engine_options eopt;
    eopt.backend = be;
    // The linear row is perf_diff's machine-speed calibration reference
    // and must stay the frozen seed implementation — pin it to the scalar
    // plan kernel so kernel work never shifts the calibration factor.
    if (be == core::nn_backend::linear)
        eopt.kernel = core::plan_kernel::scalar;
    const core::merge_solver solver(rc::delay_model::elmore(),
                                    core::skew_spec::zero());
    const core::bottom_up_engine engine(solver, eopt);
    bench::perf_record rec;
    rec.bench = "engine_reduce";
    rec.backend = tag(be);
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        topo::clock_tree t;
        auto roots = core::detail::make_leaves(inst, t, false);
        core::engine_stats st;
        const auto t0 = std::chrono::steady_clock::now();
        engine.reduce(t, std::move(roots), &st);
        rec.seconds = std::min(rec.seconds, now_diff(t0));
        rec.merges = st.merges;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// The speculative nearest-pair pipeline in isolation: one engine.reduce
/// at a given worker-thread count and speculate_k, grid backend.  The
/// backend tag encodes the configuration ("t1", "t1s4", "thw", "thws16",
/// ...) so perf_diff can gate the plain single-thread series
/// (nearest_pair:t1) while the speculative ones ride along as info.
/// cache-hit and wasted-speculation rates come from the engine counters
/// (deterministic, so any repetition reports the same rates).
bench::perf_record bench_nearest_pair(const topo::instance& inst, int threads,
                                      int speculate_k, int reps) {
    core::engine_options eopt;
    eopt.backend = core::nn_backend::grid;
    eopt.speculate_k = speculate_k;
    std::unique_ptr<core::thread_pool> pool;
    if (threads > 1) {
        pool = std::make_unique<core::thread_pool>(threads);
        eopt.executor = pool.get();
    }
    const core::merge_solver solver(rc::delay_model::elmore(),
                                    core::skew_spec::zero());
    const core::bottom_up_engine engine(solver, eopt);
    bench::perf_record rec;
    rec.bench = "nearest_pair";
    rec.backend = (threads > 1 ? "thw" : "t1");
    if (speculate_k > 0) rec.backend += "s" + std::to_string(speculate_k);
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    core::engine_scratch scratch;
    for (int rep = 0; rep < reps; ++rep) {
        topo::clock_tree t;
        auto roots = core::detail::make_leaves(inst, t, false);
        core::engine_stats st;
        const auto t0 = std::chrono::steady_clock::now();
        engine.reduce(t, std::move(roots), &st, &scratch);
        rec.seconds = std::min(rec.seconds, now_diff(t0));
        rec.merges = st.merges;
        const int lookups = st.plan_cache_hits + st.plan_cache_misses;
        rec.cache_hit_rate =
            lookups > 0 ? static_cast<double>(st.plan_cache_hits) / lookups
                        : 0.0;
        rec.wasted_spec_rate =
            st.speculated_plans > 0
                ? static_cast<double>(st.wasted_speculation) /
                      st.speculated_plans
                : 0.0;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// The accepted merge stream of one nearest-pair reduce: the tree it
/// built plus every committed merge as a (left, right) pair in creation
/// order.  Replaying plan() over this stream on the final tree
/// reproduces each accepted solve exactly (both subtrees are immutable
/// once merged), which isolates the plan-solve kernels from the NN and
/// heap machinery around them.
struct plan_stream {
    topo::clock_tree tree;
    std::vector<std::pair<topo::node_id, topo::node_id>> pairs;
};

plan_stream make_plan_stream(const topo::instance& inst,
                             const core::merge_solver& solver) {
    plan_stream ps;
    core::engine_options eopt;
    eopt.backend = core::nn_backend::grid;
    const core::bottom_up_engine engine(solver, eopt);
    auto roots = core::detail::make_leaves(inst, ps.tree, false);
    const std::size_t leaves = ps.tree.size();
    engine.reduce(ps.tree, std::move(roots), nullptr);
    for (std::size_t i = leaves; i < ps.tree.size(); ++i) {
        const auto& nd = ps.tree.node(static_cast<topo::node_id>(i));
        ps.pairs.emplace_back(nd.left, nd.right);
    }
    return ps;
}

/// The batched SoA plan kernels (DESIGN.md §11) in isolation: replay the
/// nearest-pair reduce's accepted merge stream — the exact solves the
/// reduce commits, n-1 of them — through one kernel selection.  Backend
/// tags: "t1" = solve_plan_batch over the whole stream (the gated
/// series, plan_batch:t1) and "scalar" = the per-pair reference
/// solver.plan() loop.  The t1-vs-scalar ratio at the largest n is the
/// headline batch-kernel speedup (plans are bit-identical either way —
/// tests/test_plan_kernels.cpp asserts that; this series measures only
/// the wall-clock the kernels buy).  The t1 row's cache_hit_rate field
/// carries the fast-path fraction 1 - fallbacks/solves, proving the
/// kernels engaged rather than bouncing to the scalar path wholesale.
bench::perf_record bench_plan_batch(const plan_stream& ps,
                                    const core::merge_solver& solver,
                                    core::plan_kernel kernel, int n,
                                    int reps) {
    bench::perf_record rec;
    rec.bench = "plan_batch";
    rec.backend = kernel == core::plan_kernel::batch ? "t1" : "scalar";
    rec.n = n;
    rec.seconds = std::numeric_limits<double>::infinity();
    std::vector<std::optional<core::merge_plan>> out(ps.pairs.size());
    for (int rep = 0; rep < reps; ++rep) {
        int fallbacks = 0;
        const auto t0 = std::chrono::steady_clock::now();
        if (kernel == core::plan_kernel::batch) {
            fallbacks = core::solve_plan_batch(solver, ps.tree,
                                               ps.pairs.data(),
                                               ps.pairs.size(), out.data());
        } else {
            for (std::size_t i = 0; i < ps.pairs.size(); ++i)
                out[i] = solver.plan(ps.tree, ps.pairs[i].first,
                                     ps.pairs[i].second);
        }
        rec.seconds = std::min(rec.seconds, now_diff(t0));
        rec.merges = static_cast<int>(ps.pairs.size());
        rec.cache_hit_rate =
            ps.pairs.empty()
                ? 0.0
                : 1.0 - static_cast<double>(fallbacks) /
                            static_cast<double>(ps.pairs.size());
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// The sharded die-region reduction (DESIGN.md §4): one full zero-skew
/// route (leaves + reduce + embed, identical overhead on every row) at a
/// given shard configuration and worker-thread count, grid backend.
/// Backend tags: "mono" = monolithic (shards = 1), "t1" = auto shards on
/// one thread — the gated series: single-threaded, the speedup is pure
/// partition quality, no scheduling luck — and "thw" = auto shards fanned
/// over a hardware-wide pool (info).  The per-row wirelength records the
/// sharded-vs-monolithic quality delta alongside the wall-clocks.
bench::perf_record bench_shard_reduce(const topo::instance& inst, int shards,
                                      int threads, int reps) {
    core::router_options opt;
    opt.engine.backend = core::nn_backend::grid;
    opt.engine.shards = shards;
    std::unique_ptr<core::thread_pool> pool;
    if (threads > 1) {
        pool = std::make_unique<core::thread_pool>(threads);
        opt.engine.executor = pool.get();
    }
    bench::perf_record rec;
    rec.bench = "shard_reduce";
    rec.backend = shards == 1 ? "mono" : (threads > 1 ? "thw" : "t1");
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        const auto r = core::route_zst_dme(inst, opt);
        rec.seconds = std::min(rec.seconds, r.cpu_seconds);
        rec.merges = r.stats.merges;
        rec.wirelength = r.wirelength;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// Time a full windowed AST-DME route (embedding included).
bench::perf_record bench_route(const topo::instance& inst,
                               core::nn_backend be, int reps) {
    core::router_options opt;
    opt.engine.backend = be;
    bench::perf_record rec;
    rec.bench = "route_ast_windowed";
    rec.backend = tag(be);
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        const auto r = core::route_ast_dme(inst, core::skew_spec::zero(), opt,
                                           core::ast_mode::windowed);
        rec.seconds = std::min(rec.seconds, r.cpu_seconds);
        rec.merges = r.stats.merges;
        rec.wirelength = r.wirelength;
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// Resilience cost model (DESIGN.md §10): an 8-shard zero-skew route
/// with a poisoned-shard fault fired at the last shard's gate.  Rows:
///   "clean"   — the unfaulted sharded route (reference cost);
///   "salvage" — engine salvage on: the 7 completed sub-trees are kept,
///               the poisoned shard is rebuilt greedily, the stitch runs
///               — the wall-clock of producing the degraded tree (the
///               gated series: salvage must stay cheaper than rerunning);
///   "discard" — salvage off: the faulted attempt unwinds and a full
///               clean rerun recovers — the cost salvage avoids.
bench::perf_record bench_degrade_salvage(const topo::instance& inst,
                                         const std::string& mode, int reps) {
    bench::perf_record rec;
    rec.bench = "degrade_salvage";
    rec.backend = mode;
    rec.n = static_cast<int>(inst.sinks.size());
    rec.seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        core::routing_request req;
        req.instance = &inst;
        req.strategy = core::strategy_id::zst_dme;
        req.options.engine.shards = 8;
        // A fresh plan per repetition: events consume when they fire.
        core::fault_plan plan = core::fault_plan::seeded(0, 0);
        if (mode != "clean") {
            plan.schedule(core::fault_site::shard, 8,
                          core::fault_kind::poisoned_shard);
            req.options.engine.cancel.set_faults(&plan);
        }
        req.options.engine.salvage = mode == "salvage";
        const auto t0 = std::chrono::steady_clock::now();
        auto r = core::route(req);
        if (mode == "discard") {
            if (r.status != core::route_status::data_fault) {
                std::cerr << "degrade_salvage discard row expected a "
                             "data_fault, got "
                          << core::to_string(r.status) << "\n";
                std::exit(1);
            }
            core::routing_request rerun = req;
            rerun.options.engine.cancel = core::cancel_token{};
            rerun.options.engine.salvage = false;
            r = core::route(rerun);  // recovery-by-rerun pays full price
        }
        const double secs = now_diff(t0);
        if (!r.usable()) {
            std::cerr << "degrade_salvage " << mode << " row failed ("
                      << core::to_string(r.status)
                      << "): " << r.status_message << "\n";
            std::exit(1);
        }
        if (secs < rec.seconds) {
            rec.seconds = secs;
            rec.merges = r.stats.merges;
            rec.wirelength = r.wirelength;
        }
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// The table2-shaped serving workload (EXT-BST baseline + windowed
/// AST-DME per instance) shared by the batch and stream benches, so their
/// series always measure the identical request mix.  `total_n` receives
/// the summed sink count.
std::vector<core::routing_request> make_service_requests(
    const std::vector<const topo::instance*>& insts, int& total_n) {
    std::vector<core::routing_request> reqs;
    for (const topo::instance* inst : insts) {
        total_n += static_cast<int>(inst->sinks.size());
        core::routing_request ext;
        ext.instance = inst;
        ext.strategy = core::strategy_id::ext_bst;
        ext.spec = core::skew_spec::uniform(bench::kext_bst_bound);
        reqs.push_back(ext);
        core::routing_request ast;
        ast.instance = inst;
        ast.strategy = core::strategy_id::ast_dme;
        ast.mode = core::ast_mode::windowed;
        reqs.push_back(ast);
    }
    return reqs;
}

/// Aggregate throughput of a route_service batch at a given thread count;
/// instances are borrowed so every thread count routes the identical
/// batch.
bench::perf_record bench_service(
    const std::vector<const topo::instance*>& insts, int threads, int reps) {
    bench::perf_record rec;
    rec.bench = "service_batch";
    rec.backend = "t" + std::to_string(threads);
    rec.seconds = std::numeric_limits<double>::infinity();
    const auto reqs = make_service_requests(insts, rec.n);
    for (int rep = 0; rep < reps; ++rep) {
        core::service_options sopt;
        sopt.threads = threads;
        core::route_service svc(sopt);
        const auto t0 = std::chrono::steady_clock::now();
        const auto entries = svc.route_batch(reqs);
        rec.seconds = std::min(rec.seconds, now_diff(t0));
        rec.merges = 0;
        rec.wirelength = 0.0;
        for (const auto& e : entries) {
            if (!e.ok()) {
                std::cerr << "service bench request failed ("
                          << core::to_string(e.status)
                          << "): " << e.status_message << "\n";
                std::exit(1);
            }
            rec.merges += e.stats.merges;
            rec.wirelength += e.wirelength;
        }
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

/// Streamed serving latency: the same table2-style requests submitted one
/// by one through the async API; each request's latency is submit-to-
/// completion (queueing included, stamped by the completion callback on
/// the worker), reported as p50/p95/p99 over the stream.  The percentile
/// fields of the best (lowest total wall-clock) repetition are kept —
/// bench/perf_diff.py gates the largest-n p95.
bench::perf_record bench_stream(
    const std::vector<const topo::instance*>& insts, int threads, int reps) {
    bench::perf_record rec;
    rec.bench = "service_stream";
    rec.backend = "t" + std::to_string(threads);
    rec.seconds = std::numeric_limits<double>::infinity();
    const auto reqs = make_service_requests(insts, rec.n);
    std::vector<double> latency(reqs.size());
    for (int rep = 0; rep < reps; ++rep) {
        core::service_options sopt;
        sopt.threads = threads;
        core::route_service svc(sopt);
        std::vector<core::route_handle> handles;
        handles.reserve(reqs.size());
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            core::submit_options so;
            const auto ts = std::chrono::steady_clock::now();
            so.on_complete = [&latency, i,
                              ts](const core::route_result&) {
                latency[i] = now_diff(ts);
            };
            handles.push_back(svc.submit(reqs[i], so));
        }
        int merges = 0;
        double wirelength = 0.0;
        for (auto& h : handles) {
            const auto r = h.wait();
            if (!r.ok()) {
                std::cerr << "stream bench request failed ("
                          << core::to_string(r.status)
                          << "): " << r.status_message << "\n";
                std::exit(1);
            }
            merges += r.stats.merges;
            wirelength += r.wirelength;
        }
        const double wall = now_diff(t0);
        if (wall < rec.seconds) {
            rec.seconds = wall;
            rec.merges = merges;
            rec.wirelength = wirelength;
            std::vector<double> sorted = latency;
            std::sort(sorted.begin(), sorted.end());
            rec.p50 = bench::percentile_sorted(sorted, 0.50);
            rec.p95 = bench::percentile_sorted(sorted, 0.95);
            rec.p99 = bench::percentile_sorted(sorted, 0.99);
        }
    }
    rec.merges_per_sec =
        rec.seconds > 0.0 ? static_cast<double>(rec.merges) / rec.seconds : 0.0;
    return rec;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (argv[i][0] == '-' || !out_path.empty()) {
            std::cerr << "usage: " << argv[0] << " [--quick] [output.json]\n";
            return 2;
        } else {
            out_path = argv[i];
        }
    }
    if (out_path.empty()) out_path = "BENCH_micro_perf.json";

    std::vector<int> sizes{64, 128, 256, 512, 1024, 2048, 3101};
    if (quick) sizes = {64, 128, 256, 512};

    std::cout << "micro_perf — merge-engine scaling (grid vs linear NN "
                 "backend)\n\n";
    io::table t({"Bench", "n", "Backend", "Wall(s)", "Merges/s", "Speedup"});
    std::vector<bench::perf_record> records;

    for (int n : sizes) {
        gen::instance_spec spec = gen::paper_spec("r1");
        spec.num_sinks = n;
        auto inst = gen::generate(spec);
        gen::apply_intermingled_groups(inst, 6, 1);
        const int reps = n >= 2048 ? 2 : 3;

        for (auto mk : {&bench_reduce, &bench_route}) {
            const auto grid = mk(inst, core::nn_backend::grid, reps);
            const auto lin = mk(inst, core::nn_backend::linear, reps);
            const double speedup =
                grid.seconds > 0.0 ? lin.seconds / grid.seconds : 0.0;
            t.add_row({grid.bench, std::to_string(grid.n), grid.backend,
                       io::table::fixed(grid.seconds, 4),
                       io::table::integer(grid.merges_per_sec),
                       io::table::fixed(speedup, 2) + "x"});
            t.add_row({lin.bench, std::to_string(lin.n), lin.backend,
                       io::table::fixed(lin.seconds, 4),
                       io::table::integer(lin.merges_per_sec), "1.00x"});
            records.push_back(grid);
            records.push_back(lin);
        }
    }

    // Speculative nearest-pair pipeline: reduce wall-clock across worker
    // threads {1, hw} x speculate_k {0, 4, 16}.  The t1 rows with k > 0
    // are deliberate no-op canaries: without an executor the knob must
    // change nothing, so t1s4/t1s16 matching t1 (time and rates) is
    // itself the asserted property — if speculation ever engaged on the
    // sequential path, these rows would diverge and flag it.  The n=2048 series runs in
    // quick mode too, so the committed full baseline always shares an n
    // with the CI smoke run — and 2048 is deliberately the smallest size
    // whose single-thread reduce (~10 ms) is long enough for the 20%
    // nearest_pair:t1 gate to measure the engine instead of allocator
    // warm-up noise.  perf_diff gates the plain
    // single-thread series (nearest_pair:t1); on 1-core hardware the
    // speculative series measure dispatch overhead, and the JSON carries
    // the cache-hit / wasted-speculation rates that prove the pipeline
    // engaged.
    {
        std::vector<int> np_sizes{2048};
        if (!quick) np_sizes.push_back(3101);
        const int threads_hw = static_cast<int>(
            std::max(2u, std::thread::hardware_concurrency()));
        for (const int n : np_sizes) {
            gen::instance_spec spec = gen::paper_spec("r1");
            spec.num_sinks = n;
            auto inst = gen::generate(spec);
            gen::apply_intermingled_groups(inst, 6, 1);
            // More repetitions than the sweep benches: the t1 series is
            // gated at 20% and a ~10 ms kernel needs a deeper best-of to
            // keep scheduler noise out of the committed baseline.
            const int reps = n >= 3000 ? 3 : 7;
            for (const int threads : {1, threads_hw}) {
                for (const int k : {0, 4, 16}) {
                    const auto rec =
                        bench_nearest_pair(inst, threads, k, reps);
                    t.add_row({rec.bench, std::to_string(rec.n), rec.backend,
                               io::table::fixed(rec.seconds, 4),
                               io::table::integer(rec.merges_per_sec),
                               io::table::percent(rec.cache_hit_rate)});
                    records.push_back(rec);
                }
            }
        }
    }

    // Batched SoA plan kernels: replay the accepted merge stream of one
    // single-thread nearest-pair grid reduce (r1 spec, 12 intermingled
    // skew groups under a uniform bound — every lane windowed, none
    // rejected) through solve_plan_batch vs the per-pair scalar solver.
    // The n=2048 series runs in quick mode too, so the committed full
    // baseline always shares an n with the CI smoke run; perf_diff gates
    // the batch row (plan_batch:t1) and reports the scalar reference
    // plus the batch-over-scalar speedup as info.  The speedup column
    // here IS the acceptance headline: batch must beat scalar >= 1.5x
    // at the largest n.  The JSON's cache_hit_rate field carries the
    // fast-path fraction 1 - fallbacks/solves, proving the kernels
    // engaged rather than falling back wholesale.
    {
        std::vector<int> pb_sizes{2048};
        if (!quick) pb_sizes.push_back(3101);
        for (const int n : pb_sizes) {
            gen::instance_spec spec = gen::paper_spec("r1");
            spec.num_sinks = n;
            auto inst = gen::generate(spec);
            gen::apply_intermingled_groups(inst, 12, 1);
            const core::merge_solver solver(rc::delay_model::elmore(),
                                            core::skew_spec::uniform(2.0));
            const plan_stream ps = make_plan_stream(inst, solver);
            const int reps = n >= 3000 ? 9 : 11;
            const auto batch = bench_plan_batch(
                ps, solver, core::plan_kernel::batch, n, reps);
            const auto scalar = bench_plan_batch(
                ps, solver, core::plan_kernel::scalar, n, reps);
            const double speedup =
                batch.seconds > 0.0 ? scalar.seconds / batch.seconds : 0.0;
            t.add_row({batch.bench, std::to_string(batch.n), batch.backend,
                       io::table::fixed(batch.seconds, 4),
                       io::table::integer(batch.merges_per_sec),
                       io::table::fixed(speedup, 2) + "x"});
            t.add_row({scalar.bench, std::to_string(scalar.n), scalar.backend,
                       io::table::fixed(scalar.seconds, 4),
                       io::table::integer(scalar.merges_per_sec), "1.00x"});
            records.push_back(batch);
            records.push_back(scalar);
        }
    }

    // Sharded die-region reduction: r5-sized and large-family instances,
    // monolithic vs auto shards at 1 thread (the gated series — the
    // speedup is pure partition quality) and at a hardware-wide pool.
    // The quick run keeps the r5 size only, so the committed full
    // baseline always shares an n with the CI smoke run; the acceptance
    // series is the full run's n=50000 pair (l3), where the single-thread
    // sharded route must beat the monolithic grid reduce >= 2x.
    {
        struct shard_case {
            const char* family;  // "r" = paper_spec, "l" = large_spec
            const char* name;
        };
        std::vector<shard_case> cases{{"r", "r5"}};
        if (!quick) {
            cases.push_back({"l", "l2"});   // n = 20000
            cases.push_back({"l", "l3"});   // n = 50000
        }
        const int threads_hw = static_cast<int>(
            std::max(2u, std::thread::hardware_concurrency()));
        for (const auto& c : cases) {
            const gen::instance_spec spec = c.family[0] == 'r'
                                                ? gen::paper_spec(c.name)
                                                : gen::large_spec(c.name);
            const auto inst = gen::generate(spec);
            const int reps = inst.sinks.size() >= 20000 ? 2 : 3;
            const auto mono = bench_shard_reduce(inst, 1, 1, reps);
            const auto t1 = bench_shard_reduce(inst, 0, 1, reps);
            const auto thw = bench_shard_reduce(inst, 0, threads_hw, reps);
            const double speedup =
                t1.seconds > 0.0 ? mono.seconds / t1.seconds : 0.0;
            t.add_row({t1.bench, std::to_string(t1.n), t1.backend,
                       io::table::fixed(t1.seconds, 4),
                       io::table::integer(t1.merges_per_sec),
                       io::table::fixed(speedup, 2) + "x"});
            t.add_row({thw.bench, std::to_string(thw.n), thw.backend,
                       io::table::fixed(thw.seconds, 4),
                       io::table::integer(thw.merges_per_sec),
                       mono.seconds > 0.0 && thw.seconds > 0.0
                           ? io::table::fixed(mono.seconds / thw.seconds, 2) +
                                 "x"
                           : "-"});
            t.add_row({mono.bench, std::to_string(mono.n), mono.backend,
                       io::table::fixed(mono.seconds, 4),
                       io::table::integer(mono.merges_per_sec), "1.00x"});
            std::cout << "shard_reduce n=" << t1.n
                      << " wirelength sharded/mono: "
                      << io::table::fixed(
                             mono.wirelength > 0.0
                                 ? t1.wirelength / mono.wirelength
                                 : 0.0,
                             4)
                      << "\n";
            records.push_back(t1);
            records.push_back(thw);
            records.push_back(mono);
        }
    }

    // Resilience: the cost of salvaging a faulted 8-shard r5 route vs
    // discarding the attempt and rerunning from scratch.  Runs in quick
    // mode too, so the committed full baseline always shares an n with
    // the CI smoke run.  perf_diff gates the salvage wall-clock (widened
    // tolerance — it includes a greedy shard rebuild) and reports the
    // clean/discard rows plus the salvage-vs-discard recovery speedup and
    // the salvaged-tree wirelength delta as info.
    {
        const auto inst = gen::generate(gen::paper_spec("r5"));
        const int reps = quick ? 2 : 3;
        const auto clean = bench_degrade_salvage(inst, "clean", reps);
        const auto salvage = bench_degrade_salvage(inst, "salvage", reps);
        const auto discard = bench_degrade_salvage(inst, "discard", reps);
        t.add_row({salvage.bench, std::to_string(salvage.n), salvage.backend,
                   io::table::fixed(salvage.seconds, 4),
                   io::table::integer(salvage.merges_per_sec),
                   salvage.seconds > 0.0
                       ? io::table::fixed(discard.seconds / salvage.seconds,
                                          2) +
                             "x"
                       : "-"});
        t.add_row({discard.bench, std::to_string(discard.n), discard.backend,
                   io::table::fixed(discard.seconds, 4),
                   io::table::integer(discard.merges_per_sec), "1.00x"});
        t.add_row({clean.bench, std::to_string(clean.n), clean.backend,
                   io::table::fixed(clean.seconds, 4),
                   io::table::integer(clean.merges_per_sec), "-"});
        std::cout << "degrade_salvage n=" << salvage.n
                  << " wirelength salvaged/clean: "
                  << io::table::fixed(clean.wirelength > 0.0
                                          ? salvage.wirelength /
                                                clean.wirelength
                                          : 0.0,
                                      4)
                  << "\n";
        records.push_back(salvage);
        records.push_back(discard);
        records.push_back(clean);
    }

    // Batched serving throughput: the same table2-style batch at 1 worker
    // thread vs 4 (results are bit-identical; only wall-clock moves).
    const auto make_batch = [](int batch_n) {
        std::vector<topo::instance> batch_insts;
        for (const char* name : {"r1", "r2"}) {
            gen::instance_spec spec = gen::paper_spec(name);
            spec.num_sinks = std::min(spec.num_sinks, batch_n);
            for (int k : bench::kpaper_group_counts) {
                auto inst = gen::generate(spec);
                gen::apply_intermingled_groups(
                    inst, k, spec.seed * 1000 + static_cast<unsigned>(k));
                batch_insts.push_back(std::move(inst));
            }
        }
        return batch_insts;
    };
    {
        const int batch_n = quick ? 256 : 862;  // r3-sized in full mode
        const auto batch_insts = make_batch(batch_n);
        std::vector<const topo::instance*> ptrs;
        for (const auto& i : batch_insts) ptrs.push_back(&i);
        const int reps = quick ? 1 : 2;
        const auto s1 = bench_service(ptrs, 1, reps);
        const auto s4 = bench_service(ptrs, 4, reps);
        const double speedup =
            s4.seconds > 0.0 ? s1.seconds / s4.seconds : 0.0;
        t.add_row({s4.bench, std::to_string(s4.n), s4.backend,
                   io::table::fixed(s4.seconds, 4),
                   io::table::integer(s4.merges_per_sec),
                   io::table::fixed(speedup, 2) + "x"});
        t.add_row({s1.bench, std::to_string(s1.n), s1.backend,
                   io::table::fixed(s1.seconds, 4),
                   io::table::integer(s1.merges_per_sec), "1.00x"});
        records.push_back(s4);
        records.push_back(s1);
    }

    // Streamed serving: per-request latency percentiles of the same
    // requests through the async submit API (perf_diff gates the
    // single-worker p95 — the deterministic series on any machine).  The
    // quick-sized batch runs in full mode too, so the committed full
    // baseline always shares an n with the CI smoke run.
    {
        std::vector<int> stream_sizes{256};
        if (!quick) stream_sizes.push_back(862);
        // Percentiles gate the perf trajectory (service_stream:t1:p95 at
        // the @0.5 tolerance in perf_diff's GATED_DEFAULT), so even the
        // quick run takes best-of-3: a single rep's p95 on a loaded
        // machine is too noisy even for that widened gate.
        const int reps = 3;
        for (const int batch_n : stream_sizes) {
            const auto batch_insts = make_batch(batch_n);
            std::vector<const topo::instance*> ptrs;
            for (const auto& i : batch_insts) ptrs.push_back(&i);
            for (const int threads : {1, 4}) {
                const auto sr = bench_stream(ptrs, threads, reps);
                t.add_row({sr.bench, std::to_string(sr.n), sr.backend,
                           io::table::fixed(sr.seconds, 4),
                           io::table::integer(sr.merges_per_sec), "-"});
                std::cout << "service_stream " << sr.backend << " n=" << sr.n
                          << " latency p50/p95/p99: "
                          << io::table::fixed(sr.p50, 4) << " / "
                          << io::table::fixed(sr.p95, 4) << " / "
                          << io::table::fixed(sr.p99, 4) << " s\n";
                records.push_back(sr);
            }
        }
    }

    t.print(std::cout);
    std::cout << "\n";
    if (!bench::write_perf_json(out_path, records)) {
        std::cerr << "error: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
