// Regenerates Table II: AST-DME vs EXT-BST with *intermingled* sink groups
// (random assignment — the "difficult instances" of the title).
//
// Paper shape: larger reductions than Table I (9.4-14.5 %), growing with
// the number of groups; the AST max-skew by-product reaches ~100 ps while
// intra-group skew stays at zero.  Our iso-delay implementation reproduces
// the ordering and the by-product behaviour; see EXPERIMENTS.md for the
// magnitude discussion.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout
        << "Table II — intermingled sink groups (EXT-BST bound 10 ps)\n\n";
    const core::router_options opt;

    for (const char* primary : {"automatic", "windowed"}) {
        const core::ast_mode mode = std::string(primary) == "automatic"
                                        ? core::ast_mode::automatic
                                        : core::ast_mode::windowed;
        std::cout << "AST-DME mode: " << primary
                  << (mode == core::ast_mode::automatic
                          ? "  (guaranteed zero intra-group skew)\n"
                          : "  (paper-literal merge cases; residual "
                            "violations reported)\n");
        auto table = bench::paper_table();
        for (const auto& spec : gen::paper_suite()) {
            const auto base = gen::generate(spec);
            const auto ext = core::route_ext_bst(base, bench::kext_bst_bound,
                                                 opt);
            bench::add_row(table,
                           bench::measure(spec.name + " (" +
                                              std::to_string(spec.num_sinks) +
                                              " sinks)",
                                          1, "EXT-BST", ext, base, opt.model,
                                          0.0),
                           false);
            for (int k : bench::kpaper_group_counts) {
                auto inst = base;
                gen::apply_intermingled_groups(
                    inst, k, spec.seed * 1000 + static_cast<unsigned>(k));
                const auto ast =
                    core::route_ast_dme(inst, core::skew_spec::zero(), opt,
                                        mode);
                bench::add_row(table,
                               bench::measure("", inst.num_groups, "AST-DME",
                                              ast, inst, opt.model,
                                              ext.wirelength),
                               true);
            }
            table.add_rule();
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
