// Ablation A (Ch. V-F): merging-order enhancements.
//  * nearest-pair with true-cost re-keying (default),
//  * nearest-pair keyed by arc distance only,
//  * Edahiro-style multi-merge rounds (V-F.1, a speed enhancement).
//
// Reports wirelength and CPU for each, reproducing the paper's argument
// that the order refinements trade quality and runtime.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — merging order (AST-DME, intermingled k=8)\n\n";
    io::table t({"Circuit", "Order", "Wirelen", "vs default", "Rounds",
                 "CPU(s)"});
    for (const char* name : {"r1", "r2", "r3"}) {
        auto inst = gen::generate(gen::paper_spec(name));
        gen::apply_intermingled_groups(inst, 8, 42);

        struct variant {
            const char* label;
            core::engine_options eng;
        };
        std::vector<variant> variants;
        variants.push_back({"nearest+true-cost", {}});
        {
            core::engine_options e;
            e.true_cost_ordering = false;
            variants.push_back({"nearest distance-only", e});
        }
        {
            core::engine_options e;
            e.order = core::merge_order::multi_merge;
            variants.push_back({"multi-merge (V-F.1)", e});
        }

        double base_wl = 0.0;
        for (const auto& v : variants) {
            core::router_options opt;
            opt.engine = v.eng;
            const auto r = core::route_ast_dme(inst, core::skew_spec::zero(),
                                               opt);
            if (base_wl == 0.0) base_wl = r.wirelength;
            t.add_row({name, v.label, io::table::integer(r.wirelength),
                       io::table::percent(r.wirelength / base_wl - 1.0),
                       std::to_string(r.stats.rounds),
                       io::table::fixed(r.cpu_seconds, 3)});
        }
        t.add_rule();
    }
    t.print(std::cout);
    return 0;
}
