// Ablation A (Ch. V-F): merging-order enhancements.
//  * nearest-pair with true-cost re-keying (default),
//  * nearest-pair keyed by arc distance only,
//  * Edahiro-style multi-merge rounds (V-F.1, a speed enhancement —
//    whose per-round NN queries and plan() calls fan out across the
//    service's worker pool).
//
// Reports wirelength and CPU for each, reproducing the paper's argument
// that the order refinements trade quality and runtime.  One service
// batch covers every (circuit, order) cell.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — merging order (AST-DME, intermingled k=8)\n\n";
    core::route_service svc;
    auto& ctx = svc.context();

    struct variant {
        const char* label;
        core::engine_options eng;
    };
    std::vector<variant> variants;
    variants.push_back({"nearest+true-cost", {}});
    {
        core::engine_options e;
        e.true_cost_ordering = false;
        variants.push_back({"nearest distance-only", e});
    }
    {
        core::engine_options e;
        e.order = core::merge_order::multi_merge;
        variants.push_back({"multi-merge (V-F.1)", e});
    }

    struct job {
        const char* circuit;
        const char* label;
    };
    std::vector<core::routing_request> reqs;
    std::vector<job> jobs;
    for (const char* name : {"r1", "r2", "r3"}) {
        const topo::instance& inst =
            ctx.intermingled(gen::paper_spec(name), 8, 42);
        for (const auto& v : variants) {
            core::routing_request r;
            r.instance = &inst;
            r.strategy = core::strategy_id::ast_dme;
            r.options.engine = v.eng;
            reqs.push_back(r);
            jobs.push_back({name, v.label});
        }
    }
    const auto results = bench::run_batch(svc, reqs);

    io::table t({"Circuit", "Order", "Wirelen", "vs default", "Rounds",
                 "CPU(s)"});
    double base_wl = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto& r = results[i];
        if (i % variants.size() == 0) base_wl = r.wirelength;
        t.add_row({jobs[i].circuit, jobs[i].label,
                   io::table::integer(r.wirelength),
                   io::table::percent(r.wirelength / base_wl - 1.0),
                   std::to_string(r.stats.rounds),
                   io::table::fixed(r.cpu_seconds, 3)});
        if ((i + 1) % variants.size() == 0) t.add_rule();
    }
    t.print(std::cout);
    return 0;
}
