// Regenerates Table I: AST-DME vs EXT-BST with *clustered* sink groups
// (the die divided into k rectangular boxes; sinks grouped by box).
//
// Paper shape: modest reductions (2.0-3.6 %), because geometrically
// separated groups leave few cross-group merge opportunities; the AST
// max-skew column grows with k (the free inter-group offsets) while
// intra-group skew stays at zero.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Table I — clusters of sink groups (EXT-BST bound 10 ps)\n\n";
    const core::router_options opt;

    for (const char* primary : {"automatic", "windowed"}) {
        const core::ast_mode mode = std::string(primary) == "automatic"
                                        ? core::ast_mode::automatic
                                        : core::ast_mode::windowed;
        std::cout << "AST-DME mode: " << primary
                  << (mode == core::ast_mode::automatic
                          ? "  (guaranteed zero intra-group skew)\n"
                          : "  (paper-literal merge cases; residual "
                            "violations reported)\n");
        auto table = bench::paper_table();
        for (const auto& spec : gen::paper_suite()) {
            const auto base = gen::generate(spec);
            const auto ext = core::route_ext_bst(base, bench::kext_bst_bound,
                                                 opt);
            bench::add_row(table,
                           bench::measure(spec.name + " (" +
                                              std::to_string(spec.num_sinks) +
                                              " sinks)",
                                          1, "EXT-BST", ext, base, opt.model,
                                          0.0),
                           false);
            for (int k : bench::kpaper_group_counts) {
                auto inst = base;
                gen::apply_clustered_groups(inst, k);
                const auto ast =
                    core::route_ast_dme(inst, core::skew_spec::zero(), opt,
                                        mode);
                bench::add_row(table,
                               bench::measure("", inst.num_groups, "AST-DME",
                                              ast, inst, opt.model,
                                              ext.wirelength),
                               true);
            }
            table.add_rule();
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
