// Regenerates Table I: AST-DME vs EXT-BST with *clustered* sink groups
// (the die divided into k rectangular boxes; sinks grouped by box).
//
// Paper shape: modest reductions (2.0-3.6 %), because geometrically
// separated groups leave few cross-group merge opportunities; the AST
// max-skew column grows with k (the free inter-group offsets) while
// intra-group skew stays at zero.
//
// Like table2, the whole table is one route_service batch over
// context-cached instances (the batched serving path).

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Table I — clusters of sink groups (EXT-BST bound 10 ps)\n\n";
    core::route_service svc;
    auto& ctx = svc.context();

    for (const char* primary : {"automatic", "windowed"}) {
        const core::ast_mode mode = std::string(primary) == "automatic"
                                        ? core::ast_mode::automatic
                                        : core::ast_mode::windowed;
        std::cout << "AST-DME mode: " << primary
                  << (mode == core::ast_mode::automatic
                          ? "  (guaranteed zero intra-group skew)\n"
                          : "  (paper-literal merge cases; residual "
                            "violations reported)\n");

        struct job {
            const topo::instance* inst;
            std::string circuit;
            std::string algo;
            int baseline;  ///< index of this row's EXT-BST job (-1: none)
        };
        std::vector<core::routing_request> reqs;
        std::vector<job> jobs;
        for (const auto& spec : gen::paper_suite()) {
            const topo::instance& base = ctx.generated(spec);
            core::routing_request ext;
            ext.instance = &base;
            ext.strategy = core::strategy_id::ext_bst;
            ext.spec = core::skew_spec::uniform(bench::kext_bst_bound);
            const int base_idx = static_cast<int>(reqs.size());
            reqs.push_back(ext);
            jobs.push_back({&base,
                            spec.name + " (" +
                                std::to_string(spec.num_sinks) + " sinks)",
                            "EXT-BST", -1});
            for (int k : bench::kpaper_group_counts) {
                const topo::instance& inst = ctx.clustered(spec, k);
                core::routing_request ast;
                ast.instance = &inst;
                ast.strategy = core::strategy_id::ast_dme;
                ast.mode = mode;
                reqs.push_back(ast);
                jobs.push_back({&inst, "", "AST-DME", base_idx});
            }
        }
        const auto results = bench::run_batch(svc, reqs);

        auto table = bench::paper_table();
        const core::router_options opt;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const job& j = jobs[i];
            const double baseline_wl =
                j.baseline >= 0
                    ? results[static_cast<std::size_t>(j.baseline)]
                          .wirelength
                    : 0.0;
            bench::add_row(table,
                           bench::measure(j.circuit, j.inst->num_groups,
                                          j.algo, results[i], *j.inst,
                                          opt.model, baseline_wl),
                           j.baseline >= 0);
            if (i + 1 == jobs.size() || jobs[i + 1].baseline < 0)
                table.add_rule();
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
