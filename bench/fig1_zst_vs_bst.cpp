// Regenerates Figure 1's comparison: on the same instance, zero-skew DME
// routing uses more wire than bounded-skew BST routing (17 vs 16 in the
// paper's didactic drawing, path-length delay model).
//
// We sweep the didactic 5-sink constellation and a family of random
// instances under both the path-length model (as drawn in the figure) and
// Elmore (the paper's actual model), printing wirelength and skew.

#include "common.hpp"

using namespace astclk;

namespace {

topo::instance didactic() {
    topo::instance inst;
    inst.name = "fig1";
    inst.num_groups = 1;
    inst.die_width = inst.die_height = 10.0;
    inst.source = {4.0, 5.0};
    inst.sinks = {{{1.0, 1.0}, 1.0, 0},
                  {{2.0, 6.0}, 1.0, 0},
                  {{6.0, 2.0}, 1.0, 0},
                  {{7.0, 7.0}, 1.0, 0},
                  {{5.0, 9.0}, 1.0, 0}};
    return inst;
}

}  // namespace

int main() {
    std::cout << "Figure 1 — zero-skew (DME) vs bounded-skew (BST) routing\n\n";

    {
        std::cout << "Didactic 5-sink instance, path-length delay model "
                     "(the figure's setting):\n";
        core::router_options opt;
        opt.model = rc::delay_model::path_length();
        const auto inst = didactic();
        io::table t({"Routing", "SkewBound", "Wirelen", "Skew"});
        const auto zst = core::route_zst_dme(inst, opt);
        const auto ev_z = eval::evaluate(zst.tree, inst, opt.model);
        t.add_row({"ZST/DME", "0", io::table::fixed(zst.wirelength, 2),
                   io::table::fixed(ev_z.global_skew, 3)});
        for (double bound : {1.0, 2.0, 4.0}) {
            const auto bst = core::route_ext_bst(inst, bound, opt);
            const auto ev_b = eval::evaluate(bst.tree, inst, opt.model);
            t.add_row({"BST/DME", io::table::fixed(bound, 0),
                       io::table::fixed(bst.wirelength, 2),
                       io::table::fixed(ev_b.global_skew, 3)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "Random 64-sink instances, Elmore model, bound sweep "
                     "(wirelength relative to ZST):\n";
        core::router_options opt;
        io::table t({"Seed", "ZST wirelen", "BST 10ps", "BST 100ps",
                     "BST 1000ps"});
        for (std::uint64_t seed : {1, 2, 3}) {
            gen::instance_spec spec = gen::paper_spec("r1");
            spec.num_sinks = 64;
            spec.seed = seed;
            const auto inst = gen::generate(spec);
            const auto zst = core::route_zst_dme(inst, opt);
            std::vector<std::string> row{std::to_string(seed),
                                         io::table::integer(zst.wirelength)};
            for (double ps : {10.0, 100.0, 1000.0}) {
                const auto bst = core::route_ext_bst(inst, ps * 1e-12, opt);
                row.push_back(
                    io::table::percent(bst.wirelength / zst.wirelength - 1.0));
            }
            t.add_row(std::move(row));
        }
        t.print(std::cout);
        std::cout << "\n(The figure's qualitative claim: relaxing the bound "
                     "never increases wirelength.)\n";
    }
    return 0;
}
