// Ablation B (Ch. I): why naive inter-group constraints lose.  The
// "simple solution in practice" the paper describes replaces associative
// constraints with a global bound; we sweep that bound and compare against
// AST-DME, which needs no global bound at all.
//
// The sweep is one route_service batch: every EXT-BST bound plus the
// AST-DME row per circuit, fanned across the worker pool.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — EXT-BST global bound sweep vs AST-DME "
                 "(intermingled k=8)\n\n";
    core::route_service svc;
    auto& ctx = svc.context();

    const double bounds_ps[] = {0.0, 1.0, 10.0, 50.0, 100.0, 500.0};
    struct job {
        const topo::instance* inst;
        const char* circuit;
        bool is_ast;
        double bound_ps;
    };
    std::vector<core::routing_request> reqs;
    std::vector<job> jobs;
    for (const char* name : {"r1", "r3"}) {
        const topo::instance& inst =
            ctx.intermingled(gen::paper_spec(name), 8, 42);
        for (double ps : bounds_ps) {
            core::routing_request r;
            r.instance = &inst;
            r.strategy = core::strategy_id::ext_bst;
            r.spec = core::skew_spec::uniform(ps * 1e-12);
            reqs.push_back(r);
            jobs.push_back({&inst, name, false, ps});
        }
        core::routing_request ast;
        ast.instance = &inst;
        ast.strategy = core::strategy_id::ast_dme;
        reqs.push_back(ast);
        jobs.push_back({&inst, name, true, 0.0});
    }
    const auto results = bench::run_batch(svc, reqs);

    io::table t({"Circuit", "Algorithm", "Bound(ps)", "Wirelen",
                 "MaxSkew(ps)", "IntraSkew(ps)"});
    const core::router_options opt;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const job& j = jobs[i];
        const auto& r = results[i];
        const auto ev = eval::evaluate(r.tree, *j.inst, opt.model);
        t.add_row({j.circuit, j.is_ast ? "AST-DME" : "EXT-BST",
                   j.is_ast ? "intra=0" : io::table::fixed(j.bound_ps, 0),
                   io::table::integer(r.wirelength),
                   io::table::fixed(rc::to_ps(ev.global_skew), 1),
                   io::table::fixed(rc::to_ps(ev.max_intra_group_skew), 4)});
        if (j.is_ast) t.add_rule();
    }
    t.print(std::cout);
    std::cout << "\n(EXT-BST must pick one global bound: tight bounds cost "
                 "wire, loose bounds give up intra-group control.  AST-DME "
                 "holds intra-group skew at zero with no global bound.)\n";
    return 0;
}
