// Ablation B (Ch. I): why naive inter-group constraints lose.  The
// "simple solution in practice" the paper describes replaces associative
// constraints with a global bound; we sweep that bound and compare against
// AST-DME, which needs no global bound at all.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — EXT-BST global bound sweep vs AST-DME "
                 "(intermingled k=8)\n\n";
    io::table t({"Circuit", "Algorithm", "Bound(ps)", "Wirelen",
                 "MaxSkew(ps)", "IntraSkew(ps)"});
    const core::router_options opt;
    for (const char* name : {"r1", "r3"}) {
        auto inst = gen::generate(gen::paper_spec(name));
        gen::apply_intermingled_groups(inst, 8, 42);
        for (double ps : {0.0, 1.0, 10.0, 50.0, 100.0, 500.0}) {
            const auto r = core::route_ext_bst(inst, ps * 1e-12, opt);
            const auto ev = eval::evaluate(r.tree, inst, opt.model);
            t.add_row({name, "EXT-BST", io::table::fixed(ps, 0),
                       io::table::integer(r.wirelength),
                       io::table::fixed(rc::to_ps(ev.global_skew), 1),
                       io::table::fixed(rc::to_ps(ev.max_intra_group_skew),
                                        4)});
        }
        const auto ast = core::route_ast_dme(inst);
        const auto ev = eval::evaluate(ast.tree, inst, opt.model);
        t.add_row({name, "AST-DME", "intra=0",
                   io::table::integer(ast.wirelength),
                   io::table::fixed(rc::to_ps(ev.global_skew), 1),
                   io::table::fixed(rc::to_ps(ev.max_intra_group_skew), 4)});
        t.add_rule();
    }
    t.print(std::cout);
    std::cout << "\n(EXT-BST must pick one global bound: tight bounds cost "
                 "wire, loose bounds give up intra-group control.  AST-DME "
                 "holds intra-group skew at zero with no global bound.)\n";
    return 0;
}
