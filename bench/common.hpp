#pragma once

/// \file common.hpp
/// Shared plumbing for the bench binaries that regenerate the paper's
/// tables and figures: benchmark construction, the row format of Tables
/// I/II, and small formatting helpers.

#include "core/route_service.hpp"
#include "core/router.hpp"
#include "eval/elmore_eval.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace astclk::bench {

/// Route a whole batch through the service, aborting loudly on any
/// non-ok status — a bench must never print a table with silently missing
/// rows.
inline std::vector<core::route_result> run_batch(
    core::route_service& svc,
    const std::vector<core::routing_request>& reqs) {
    auto results = svc.route_batch(reqs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            std::cerr << "batch request " << i << " failed ("
                      << core::to_string(results[i].status)
                      << "): " << results[i].status_message << "\n";
            std::exit(1);
        }
    }
    return results;
}

/// One machine-readable measurement row, serialised to the BENCH_*.json
/// files that track the perf trajectory across PRs.
struct perf_record {
    std::string bench;    ///< benchmark id, e.g. "engine_reduce"
    std::string backend;  ///< NN backend tag: "grid" | "linear"
    int n = 0;            ///< instance size (sinks)
    double seconds = 0.0; ///< best wall-clock of the repetitions
    int merges = 0;
    double merges_per_sec = 0.0;
    double wirelength = 0.0;
    /// Per-request latency percentiles (seconds), streaming benches only
    /// (zero elsewhere): submit-to-completion, queueing included.
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Plan-cache / speculation rates (nearest_pair series only, zero
    /// elsewhere): hits / lookups and wasted / dispatched of the engine's
    /// speculative pipeline (engine_stats counters).
    double cache_hit_rate = 0.0;
    double wasted_spec_rate = 0.0;
};

/// Nearest-rank percentile of an ascending-sorted sample (q in [0, 1]);
/// sort once, then index p50/p95/p99 without re-sorting per quantile.
inline double percentile_sorted(const std::vector<double>& sorted_xs,
                                double q) {
    if (sorted_xs.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(std::max(
        0.0, std::ceil(q * static_cast<double>(sorted_xs.size())) - 1.0));
    return sorted_xs[std::min(rank, sorted_xs.size() - 1)];
}

/// Write records as a JSON array (no external deps; fixed schema).
/// Returns false when the file could not be opened or a write failed —
/// callers must not report success on a stale/missing file.
[[nodiscard]] inline bool write_perf_json(
    const std::string& path, const std::vector<perf_record>& records) {
    std::ofstream out(path);
    if (!out) return false;
    // Full double precision: the file exists to diff runs across PRs, so
    // small drifts must not vanish into stream-default rounding.
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const perf_record& r = records[i];
        out << "  {\"bench\": \"" << r.bench << "\", \"backend\": \""
            << r.backend << "\", \"n\": " << r.n << ", \"seconds\": "
            << r.seconds << ", \"merges\": " << r.merges
            << ", \"merges_per_sec\": " << r.merges_per_sec
            << ", \"wirelength\": " << r.wirelength
            << ", \"p50\": " << r.p50 << ", \"p95\": " << r.p95
            << ", \"p99\": " << r.p99
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"wasted_spec_rate\": " << r.wasted_spec_rate << "}"
            << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "]\n";
    out.flush();
    return out.good();
}

/// The group counts evaluated in Tables I and II.
inline const std::vector<int> kpaper_group_counts{4, 6, 8, 10};

/// The EXT-BST baseline bound used throughout the paper's experiments.
inline constexpr double kext_bst_bound = 10e-12;  // 10 ps

struct row_data {
    std::string circuit;
    int groups = 1;
    std::string algorithm;
    double wirelen = 0.0;
    double reduction = 0.0;  ///< vs the EXT-BST row of the same circuit
    double max_skew_ps = 0.0;
    double intra_skew_ps = 0.0;
    double cpu_s = 0.0;
};

inline io::table paper_table() {
    return io::table({"Circuit", "#groups", "Algorithm", "Wirelen",
                      "Reduction", "MaxSkew(ps)", "IntraSkew(ps)", "CPU(s)"});
}

inline void add_row(io::table& t, const row_data& r, bool with_reduction) {
    t.add_row({r.circuit, std::to_string(r.groups), r.algorithm,
               io::table::integer(r.wirelen),
               with_reduction ? io::table::percent(r.reduction) : "",
               io::table::fixed(r.max_skew_ps, 1),
               io::table::fixed(r.intra_skew_ps, 4),
               io::table::fixed(r.cpu_s, 2)});
}

inline row_data measure(const std::string& circuit, int groups,
                        const std::string& algorithm,
                        const core::route_result& route,
                        const topo::instance& inst,
                        const rc::delay_model& model, double baseline_wl) {
    const auto ev = eval::evaluate(route.tree, inst, model);
    row_data r;
    r.circuit = circuit;
    r.groups = groups;
    r.algorithm = algorithm;
    r.wirelen = route.wirelength;
    r.reduction = baseline_wl > 0.0
                      ? (baseline_wl - route.wirelength) / baseline_wl
                      : 0.0;
    r.max_skew_ps = rc::to_ps(ev.global_skew);
    r.intra_skew_ps = rc::to_ps(ev.max_intra_group_skew);
    r.cpu_s = route.cpu_seconds;
    return r;
}

}  // namespace astclk::bench
