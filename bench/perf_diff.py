#!/usr/bin/env python3
"""Perf trajectory gate: diff BENCH_micro_perf.json against the committed
baseline and fail on wall-clock regression.

For every gated (bench, backend) series present in both files, the largest
common n is compared; a regression beyond --tolerance (default 20%) fails
the run.  Because absolute wall-clock shifts with the machine, the current
numbers are first calibrated by the linear-backend reference (the frozen
seed implementation): its runtime ratio baseline/current estimates the
machine-speed factor, and the gated grid timings are scaled by it before
comparison.  Pass --no-calibrate for raw wall-clock.

Only the engine benches are gated by default; service_batch throughput is
reported but not gated (batch scheduling noise is not an engine
regression).  Exit codes: 0 ok, 1 regression, 2 usage/missing data.
"""

import argparse
import json
import sys

GATED_DEFAULT = "engine_reduce:grid,route_ast_windowed:grid"
CALIBRATION_SERIES = ("engine_reduce", "linear")


def load(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    series = {}
    for r in rows:
        series.setdefault((r["bench"], r["backend"]), {})[r["n"]] = r
    return series


def pick_common_n(base, cur, key):
    common = sorted(set(base.get(key, {})) & set(cur.get(key, {})))
    return common[-1] if common else None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--gate", default=GATED_DEFAULT,
                    help="comma-separated bench:backend series to gate")
    ap.add_argument("--no-calibrate", action="store_true",
                    help="compare raw wall-clock without machine scaling")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    scale = 1.0
    if not args.no_calibrate:
        n = pick_common_n(base, cur, CALIBRATION_SERIES)
        if n is not None:
            b = base[CALIBRATION_SERIES][n]["seconds"]
            c = cur[CALIBRATION_SERIES][n]["seconds"]
            if b > 0 and c > 0:
                scale = b / c
                print(f"calibration ({CALIBRATION_SERIES[0]}/"
                      f"{CALIBRATION_SERIES[1]} @ n={n}): machine factor "
                      f"{scale:.3f} (baseline {b:.4f}s / current {c:.4f}s)")

    gated = []
    for spec in args.gate.split(","):
        spec = spec.strip()
        if not spec:
            continue
        bench, _, backend = spec.partition(":")
        gated.append((bench, backend))

    failures = []
    compared = 0
    for key in gated:
        n = pick_common_n(base, cur, key)
        if n is None:
            print(f"perf_diff: series {key[0]}:{key[1]} missing from one "
                  f"side; skipped")
            continue
        compared += 1
        b = base[key][n]["seconds"]
        c = cur[key][n]["seconds"] * scale
        ratio = c / b if b > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append((key, n, b, c, ratio))
        elif ratio < 1.0 - args.tolerance:
            verdict = "improvement"
        print(f"{key[0]}:{key[1]} @ n={n}: baseline {b:.4f}s, current "
              f"{c:.4f}s (calibrated), ratio {ratio:.2f} -> {verdict}")

    # Informational: batched serving throughput, never gated.
    for key in sorted(cur):
        if key[0] == "service_batch":
            n = max(cur[key])
            r = cur[key][n]
            print(f"info service_batch:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, {r['merges_per_sec']:.0f} merges/s")

    if compared == 0:
        print("perf_diff: nothing to compare", file=sys.stderr)
        sys.exit(2)
    if failures:
        for key, n, b, c, ratio in failures:
            print(f"perf_diff: {key[0]}:{key[1]} regressed {ratio:.2f}x at "
                  f"n={n} (baseline {b:.4f}s, calibrated current {c:.4f}s)",
                  file=sys.stderr)
        sys.exit(1)
    print("perf_diff: within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
