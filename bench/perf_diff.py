#!/usr/bin/env python3
"""Perf trajectory gate: diff BENCH_micro_perf.json against the committed
baseline and fail on wall-clock (or latency-percentile) regression.

For every gated series — "bench:backend" or "bench:backend:metric", the
metric defaulting to "seconds" — present in both files, the largest common
n is compared; a regression beyond --tolerance (default 20%) fails the
run.  Because absolute wall-clock shifts with the machine, the current
numbers are first calibrated by the linear-backend reference (the frozen
seed implementation): its runtime ratio baseline/current estimates the
machine-speed factor, and the gated timings are scaled by it before
comparison (every gated metric is a time, so the same factor applies).
Pass --no-calibrate for raw wall-clock.

Gated by default: the engine benches, the streamed single-worker p95
per-request latency (service_stream:t1:p95 — one worker keeps the series
deterministic on any machine), the single-thread speculative-pipeline
series (nearest_pair:t1 — the plain sequential path, so plan-cache and
heap changes cannot regress 1-core hardware), and the single-thread
sharded reduction (shard_reduce:t1 — auto shards on one thread, so the
gate measures partition quality, not scheduling), and the salvage path
of the resilience layer (degrade_salvage:salvage — recovering a faulted
sharded route must stay cheaper than rerunning; widened tolerance since
the row includes a greedy shard rebuild), and the batched SoA plan
kernels (plan_batch:t1 — solve_plan_batch replaying the nearest-pair
reduce's accepted merge stream on one thread, so SoA layout or kernel
changes cannot quietly give back the batching win).
Multi-threaded service_batch / service_stream throughput, the
speculative nearest_pair configurations, the fanned shard_reduce:thw
series, the plan_batch scalar reference row and the degrade_salvage
clean/discard rows are reported but not gated (batch scheduling,
speculation overlap and shard fan-out depend on core count, not engine
quality; the scalar row exists to compute the batch speedup).  Exit
codes: 0 ok, 1 regression, 2 usage/missing data.
"""

import argparse
import json
import sys

GATED_DEFAULT = (
    "engine_reduce:grid,route_ast_windowed:grid,service_stream:t1:p95@0.5,"
    "nearest_pair:t1@0.2,shard_reduce:t1@0.2,degrade_salvage:salvage@0.25,"
    "plan_batch:t1@0.2"
)
CALIBRATION_SERIES = ("engine_reduce", "linear")


def load(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    series = {}
    for r in rows:
        series.setdefault((r["bench"], r["backend"]), {})[r["n"]] = r
    return series


def pick_common_n(base, cur, key):
    common = sorted(set(base.get(key, {})) & set(cur.get(key, {})))
    return common[-1] if common else None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--gate", default=GATED_DEFAULT,
                    help="comma-separated bench:backend series to gate")
    ap.add_argument("--no-calibrate", action="store_true",
                    help="compare raw wall-clock without machine scaling")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    scale = 1.0
    if not args.no_calibrate:
        n = pick_common_n(base, cur, CALIBRATION_SERIES)
        if n is not None:
            b = base[CALIBRATION_SERIES][n]["seconds"]
            c = cur[CALIBRATION_SERIES][n]["seconds"]
            if b > 0 and c > 0:
                scale = b / c
                print(f"calibration ({CALIBRATION_SERIES[0]}/"
                      f"{CALIBRATION_SERIES[1]} @ n={n}): machine factor "
                      f"{scale:.3f} (baseline {b:.4f}s / current {c:.4f}s)")

    gated = []
    for spec in args.gate.split(","):
        spec = spec.strip()
        if not spec:
            continue
        # bench:backend[:metric][@tolerance] — per-series tolerance lets
        # the inherently noisier latency percentiles run with a wider gate
        # than the engine wall-clocks.
        spec, _, tol_str = spec.partition("@")
        tolerance = float(tol_str) if tol_str else args.tolerance
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"perf_diff: bad gate spec {spec!r} "
                  f"(want bench:backend[:metric][@tolerance])",
                  file=sys.stderr)
            sys.exit(2)
        bench, backend = parts[0], parts[1]
        metric = parts[2] if len(parts) == 3 else "seconds"
        gated.append((bench, backend, metric, tolerance))

    failures = []
    compared = 0
    for bench, backend, metric, tolerance in gated:
        key = (bench, backend)
        label = f"{bench}:{backend}:{metric}"
        n = pick_common_n(base, cur, key)
        if n is None:
            print(f"perf_diff: series {label} missing from one side; "
                  f"skipped")
            continue
        b = base[key][n].get(metric)
        c = cur[key][n].get(metric)
        if b is None or c is None:
            print(f"perf_diff: metric {metric!r} missing from "
                  f"{bench}:{backend} on one side; skipped")
            continue
        compared += 1
        c *= scale
        ratio = c / b if b > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append((label, n, b, c, ratio))
        elif ratio < 1.0 - tolerance:
            verdict = "improvement"
        print(f"{label} @ n={n}: baseline {b:.4f}s, current "
              f"{c:.4f}s (calibrated), ratio {ratio:.2f} -> {verdict}")

    # Informational: serving throughput/latency and the speculative
    # nearest_pair configurations, never gated here.
    for key in sorted(cur):
        if key[0] in ("service_batch", "service_stream"):
            n = max(cur[key])
            r = cur[key][n]
            extra = ""
            if key[0] == "service_stream":
                extra = (f", p50/p95/p99 {r.get('p50', 0):.4f}/"
                         f"{r.get('p95', 0):.4f}/{r.get('p99', 0):.4f}s")
            print(f"info {key[0]}:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, {r['merges_per_sec']:.0f} "
                  f"merges/s{extra}")
        elif key[0] == "nearest_pair" and key[1] != "t1":
            # t1 is the gated series and already printed above.
            n = max(cur[key])
            r = cur[key][n]
            print(f"info {key[0]}:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, cache hit rate "
                  f"{r.get('cache_hit_rate', 0):.2%}, wasted speculation "
                  f"{r.get('wasted_spec_rate', 0):.2%}")
        elif key[0] == "degrade_salvage" and key[1] != "salvage":
            # clean / discard ride as info; the headline is the recovery
            # speedup of salvage over discard-and-rerun, and the salvaged
            # tree's wirelength premium over the clean route.
            n = max(cur[key])
            r = cur[key][n]
            extra = ""
            sal = cur.get(("degrade_salvage", "salvage"), {}).get(n)
            if key[1] == "discard" and sal is not None:
                if sal["seconds"] > 0:
                    extra += (f", salvage recovery speedup "
                              f"{r['seconds'] / sal['seconds']:.2f}x")
            if key[1] == "clean" and sal is not None:
                if r.get("wirelength", 0) > 0:
                    extra += (f", wirelength salvaged/clean "
                              f"{sal.get('wirelength', 0) / r['wirelength']:.4f}")
            print(f"info {key[0]}:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, {r['merges_per_sec']:.0f} "
                  f"merges/s{extra}")
        elif key[0] == "plan_batch" and key[1] != "t1":
            # The scalar reference row rides as info; the headline is the
            # batch-over-scalar speedup on the same merge stream, plus the
            # batch row's fast-path engagement fraction.
            n = max(cur[key])
            r = cur[key][n]
            extra = ""
            t1 = cur.get(("plan_batch", "t1"), {}).get(n)
            if t1 is not None and t1["seconds"] > 0:
                extra += (f", batch speedup "
                          f"{r['seconds'] / t1['seconds']:.2f}x, fast-path "
                          f"{t1.get('cache_hit_rate', 0):.2%}")
            print(f"info {key[0]}:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, {r['merges_per_sec']:.0f} "
                  f"merges/s{extra}")
        elif key[0] == "shard_reduce" and key[1] != "t1":
            # mono / thw ride as info; the sharded-vs-monolithic speedup
            # and wirelength delta at the largest n are the headline.
            n = max(cur[key])
            r = cur[key][n]
            extra = ""
            t1 = cur.get(("shard_reduce", "t1"), {}).get(n)
            if key[1] == "mono" and t1 is not None:
                if t1["seconds"] > 0:
                    extra += (f", sharded t1 speedup "
                              f"{r['seconds'] / t1['seconds']:.2f}x")
                if r.get("wirelength", 0) > 0:
                    extra += (f", wirelength sharded/mono "
                              f"{t1.get('wirelength', 0) / r['wirelength']:.4f}")
            print(f"info {key[0]}:{key[1]} @ n={n}: "
                  f"{r['seconds']:.4f}s, {r['merges_per_sec']:.0f} "
                  f"merges/s{extra}")

    if compared == 0:
        print("perf_diff: nothing to compare", file=sys.stderr)
        sys.exit(2)
    if failures:
        for label, n, b, c, ratio in failures:
            print(f"perf_diff: {label} regressed {ratio:.2f}x at "
                  f"n={n} (baseline {b:.4f}s, calibrated current {c:.4f}s)",
                  file=sys.stderr)
        sys.exit(1)
    print("perf_diff: within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
