// Ablation C — the consistency study (DESIGN.md §3, EXPERIMENTS.md):
// how the three AST conflict strategies trade wirelength, snaking and
// residual violations, plus the bind-deferral knob demonstrating why
// postponing offset commitments degenerates toward separate-tree overlap
// (the paper's Fig. 2 failure mode).

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — AST consistency modes (intermingled groups)\n\n";
    io::table t({"Circuit", "k", "Mode", "Wirelen", "SnakeWire", "Rejected",
                 "Forced", "ResidViol(ps)", "IntraSkew(ps)"});
    for (const char* name : {"r1", "r2", "r3"}) {
        for (int k : {4, 10}) {
            auto inst = gen::generate(gen::paper_spec(name));
            gen::apply_intermingled_groups(inst, k, 42);
            struct variant {
                const char* label;
                core::ast_mode mode;
                double bias;
            };
            const variant variants[] = {
                {"exact ledger", core::ast_mode::exact_ledger, 0.0},
                {"soft ledger", core::ast_mode::soft_ledger, 0.0},
                {"windowed (paper)", core::ast_mode::windowed, 0.0},
                {"exact + defer-binds", core::ast_mode::exact_ledger, 2e4},
            };
            for (const auto& v : variants) {
                core::router_options opt;
                opt.bind_deferral_bias = v.bias;
                const auto r = core::route_ast_dme(
                    inst, core::skew_spec::zero(), opt, v.mode);
                const auto ev = eval::evaluate(r.tree, inst, opt.model);
                t.add_row(
                    {name, std::to_string(k), v.label,
                     io::table::integer(r.wirelength),
                     io::table::integer(r.stats.snake_wire),
                     std::to_string(r.stats.rejected_pairs),
                     std::to_string(r.stats.forced_merges),
                     io::table::fixed(rc::to_ps(r.stats.worst_violation), 3),
                     io::table::fixed(rc::to_ps(ev.max_intra_group_skew),
                                      4)});
            }
            t.add_rule();
        }
    }
    t.print(std::cout);
    std::cout
        << "\n(Exact ledger: guaranteed zero intra-group skew, stable wire.\n"
           " Windowed: the paper's literal merge cases — per-merge freedom,\n"
           " but frozen-offset conflicts can force residual violations and\n"
           " unpredictable snaking.  Deferring offset binds recreates the\n"
           " separate-tree overlap waste of Fig. 2.)\n";
    return 0;
}
