// Ablation C — the consistency study (DESIGN.md §5, EXPERIMENTS.md):
// how the three AST conflict strategies trade wirelength, snaking and
// residual violations, plus the bind-deferral knob demonstrating why
// postponing offset commitments degenerates toward separate-tree overlap
// (the paper's Fig. 2 failure mode).
//
// All variants are one route_service batch over context-cached instances.

#include "common.hpp"

using namespace astclk;

int main() {
    std::cout << "Ablation — AST consistency modes (intermingled groups)\n\n";
    core::route_service svc;
    auto& ctx = svc.context();

    struct variant {
        const char* label;
        core::ast_mode mode;
        double bias;
    };
    const variant variants[] = {
        {"exact ledger", core::ast_mode::exact_ledger, 0.0},
        {"soft ledger", core::ast_mode::soft_ledger, 0.0},
        {"windowed (paper)", core::ast_mode::windowed, 0.0},
        {"exact + defer-binds", core::ast_mode::exact_ledger, 2e4},
    };

    struct job {
        const topo::instance* inst;
        const char* circuit;
        int k;
        const char* label;
    };
    std::vector<core::routing_request> reqs;
    std::vector<job> jobs;
    for (const char* name : {"r1", "r2", "r3"}) {
        for (int k : {4, 10}) {
            const topo::instance& inst =
                ctx.intermingled(gen::paper_spec(name), k, 42);
            for (const auto& v : variants) {
                core::routing_request r;
                r.instance = &inst;
                r.strategy = core::strategy_id::ast_dme;
                r.mode = v.mode;
                r.options.bind_deferral_bias = v.bias;
                reqs.push_back(r);
                jobs.push_back({&inst, name, k, v.label});
            }
        }
    }
    const auto results = bench::run_batch(svc, reqs);

    io::table t({"Circuit", "k", "Mode", "Wirelen", "SnakeWire", "Rejected",
                 "Forced", "ResidViol(ps)", "IntraSkew(ps)"});
    const core::router_options opt;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const job& j = jobs[i];
        const auto& r = results[i];
        const auto ev = eval::evaluate(r.tree, *j.inst, opt.model);
        t.add_row({j.circuit, std::to_string(j.k), j.label,
                   io::table::integer(r.wirelength),
                   io::table::integer(r.stats.snake_wire),
                   std::to_string(r.stats.rejected_pairs),
                   std::to_string(r.stats.forced_merges),
                   io::table::fixed(rc::to_ps(r.stats.worst_violation), 3),
                   io::table::fixed(rc::to_ps(ev.max_intra_group_skew), 4)});
        if ((i + 1) % std::size(variants) == 0) t.add_rule();
    }
    t.print(std::cout);
    std::cout
        << "\n(Exact ledger: guaranteed zero intra-group skew, stable wire.\n"
           " Windowed: the paper's literal merge cases — per-merge freedom,\n"
           " but frozen-offset conflicts can force residual violations and\n"
           " unpredictable snaking.  Deferring offset binds recreates the\n"
           " separate-tree overlap waste of Fig. 2.)\n";
    return 0;
}
