#include "io/instance_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace astclk::io {

namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
    std::ostringstream os;
    os << "instance parse error at line " << line << ": " << what;
    throw std::runtime_error(os.str());
}

/// Next non-comment, non-blank line; returns false at EOF.
bool next_line(std::istream& is, std::string& out, int& line_no) {
    while (std::getline(is, out)) {
        ++line_no;
        const auto pos = out.find('#');
        if (pos != std::string::npos) out.erase(pos);
        bool blank = true;
        for (char c : out)
            if (!std::isspace(static_cast<unsigned char>(c))) {
                blank = false;
                break;
            }
        if (!blank) return true;
    }
    return false;
}

}  // namespace

void write_instance(std::ostream& os, const topo::instance& inst) {
    os << "astclk-instance v1\n";
    os << "name " << (inst.name.empty() ? "unnamed" : inst.name) << '\n';
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "die " << inst.die_width << ' ' << inst.die_height << '\n';
    os << "source " << inst.source.x << ' ' << inst.source.y << '\n';
    os << "groups " << inst.num_groups << '\n';
    os << "sinks " << inst.sinks.size() << '\n';
    for (const auto& s : inst.sinks)
        os << s.loc.x << ' ' << s.loc.y << ' ' << s.cap << ' ' << s.group
           << '\n';
}

topo::instance read_instance(std::istream& is) {
    topo::instance inst;
    int line_no = 0;
    std::string line;

    if (!next_line(is, line, line_no) || line.rfind("astclk-instance", 0) != 0)
        parse_error(line_no, "missing 'astclk-instance' header");

    std::size_t n_sinks = 0;
    bool have_sinks = false;
    while (!have_sinks) {
        if (!next_line(is, line, line_no))
            parse_error(line_no, "unexpected end of header");
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "name") {
            ls >> inst.name;
        } else if (key == "die") {
            if (!(ls >> inst.die_width >> inst.die_height))
                parse_error(line_no, "bad die line");
        } else if (key == "source") {
            if (!(ls >> inst.source.x >> inst.source.y))
                parse_error(line_no, "bad source line");
        } else if (key == "groups") {
            if (!(ls >> inst.num_groups))
                parse_error(line_no, "bad groups line");
        } else if (key == "sinks") {
            if (!(ls >> n_sinks)) parse_error(line_no, "bad sinks line");
            have_sinks = true;
        } else {
            parse_error(line_no, "unknown header key '" + key + "'");
        }
    }

    inst.sinks.reserve(n_sinks);
    for (std::size_t i = 0; i < n_sinks; ++i) {
        if (!next_line(is, line, line_no))
            parse_error(line_no, "expected more sink lines");
        std::istringstream ls(line);
        topo::sink s;
        if (!(ls >> s.loc.x >> s.loc.y >> s.cap >> s.group))
            parse_error(line_no, "bad sink line");
        inst.sinks.push_back(s);
    }
    const std::string problem = inst.validate();
    if (!problem.empty()) parse_error(line_no, "invalid instance: " + problem);
    return inst;
}

void save_instance(const std::string& path, const topo::instance& inst) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open for writing: " + path);
    write_instance(f, inst);
}

topo::instance load_instance(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("cannot open for reading: " + path);
    return read_instance(f);
}

}  // namespace astclk::io
