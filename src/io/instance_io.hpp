#pragma once

/// \file instance_io.hpp
/// Plain-text instance format, round-trip safe.
///
/// Format (line oriented, '#' comments allowed):
///
///     astclk-instance v1
///     name r1
///     die <width> <height>
///     source <x> <y>
///     groups <k>
///     sinks <n>
///     <x> <y> <cap_farads> <group>      (n lines)
///
/// Floating-point fields are written with max_digits10 so that
/// write -> read reproduces the instance bit-exactly.

#include "topo/instance.hpp"

#include <iosfwd>
#include <string>

namespace astclk::io {

/// Serialise to a stream.
void write_instance(std::ostream& os, const topo::instance& inst);

/// Parse from a stream; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] topo::instance read_instance(std::istream& is);

/// File convenience wrappers.
void save_instance(const std::string& path, const topo::instance& inst);
[[nodiscard]] topo::instance load_instance(const std::string& path);

}  // namespace astclk::io
