#pragma once

/// \file svg.hpp
/// SVG export of routed clock trees for visual inspection: edges as
/// L-shaped Manhattan routes between embedded points, sinks coloured by
/// group, the source marked, snaked edges dashed.

#include "topo/instance.hpp"
#include "topo/tree.hpp"

#include <iosfwd>
#include <string>

namespace astclk::io {

struct svg_options {
    double canvas = 900.0;      ///< output size in px (square)
    bool draw_sinks = true;
    bool draw_arcs = false;     ///< also draw merging arcs (diagnostic)
};

/// Render an embedded tree (embed_tree must have been run).
void write_tree_svg(std::ostream& os, const topo::clock_tree& t,
                    const topo::instance& inst, const svg_options& opt = {});

/// File convenience wrapper.
void save_tree_svg(const std::string& path, const topo::clock_tree& t,
                   const topo::instance& inst, const svg_options& opt = {});

}  // namespace astclk::io
