#pragma once

/// \file table.hpp
/// Minimal column-aligned ASCII table printer used by the bench harness to
/// print the paper's tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace astclk::io {

class table {
  public:
    explicit table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) {
        rows_.push_back(std::move(cells));
    }

    /// Horizontal separator row.
    void add_rule() { rows_.push_back({}); }

    void print(std::ostream& os) const;

    /// Fixed-point formatting helper.
    static std::string fixed(double v, int precision);
    /// Integer with no grouping (the paper prints raw wirelengths).
    static std::string integer(double v);
    /// Percentage with two decimals and a trailing '%'.
    static std::string percent(double fraction);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace astclk::io
