#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace astclk::io {

void table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    const auto print_rule = [&]() {
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    const auto print_cells = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string();
            os << "| " << v << std::string(width[c] - v.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto& row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

std::string table::fixed(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string table::integer(double v) {
    std::ostringstream os;
    os << static_cast<long long>(std::llround(v));
    return os.str();
}

std::string table::percent(double fraction) {
    return fixed(100.0 * fraction, 2) + "%";
}

}  // namespace astclk::io
