#include "io/tree_json.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace astclk::io {

void write_tree_json(std::ostream& os, const topo::clock_tree& t,
                     const topo::instance& inst) {
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n";
    os << "  \"name\": \"" << (inst.name.empty() ? "instance" : inst.name)
       << "\",\n";
    os << "  \"wirelength\": " << t.total_wirelength() << ",\n";
    os << "  \"source\": {\"x\": " << inst.source.x
       << ", \"y\": " << inst.source.y << "},\n";
    os << "  \"source_edge\": " << t.source_edge() << ",\n";
    os << "  \"root\": " << t.root() << ",\n";
    os << "  \"nodes\": [\n";
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto& n = t.node(static_cast<topo::node_id>(i));
        os << "    {\"id\": " << n.id << ", \"left\": " << n.left
           << ", \"right\": " << n.right;
        if (n.is_leaf()) {
            const auto& s = inst.sinks[static_cast<std::size_t>(n.sink_index)];
            os << ", \"sink\": " << n.sink_index << ", \"group\": " << s.group
               << ", \"cap\": " << s.cap;
        } else {
            os << ", \"edge_left\": " << n.edge_left
               << ", \"edge_right\": " << n.edge_right;
        }
        if (n.is_placed)
            os << ", \"x\": " << n.placed.x << ", \"y\": " << n.placed.y;
        os << '}' << (i + 1 < t.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

void save_tree_json(const std::string& path, const topo::clock_tree& t,
                    const topo::instance& inst) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open for writing: " + path);
    write_tree_json(f, t, inst);
}

}  // namespace astclk::io
