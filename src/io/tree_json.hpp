#pragma once

/// \file tree_json.hpp
/// JSON export of routed clock trees for downstream tooling (timing
/// analysis, custom visualisation).  The schema is flat and stable:
///
/// {
///   "name": "...", "wirelength": W, "source": {"x":..,"y":..},
///   "source_edge": L,
///   "nodes": [ {"id":i, "left":l, "right":r, "sink":s, "group":g,
///               "x":..., "y":..., "edge_left":..., "edge_right":...}, ... ],
///   "root": id
/// }
///
/// Leaves have "sink"/"group" and no children (-1); internal nodes the
/// reverse.  Coordinates are the embedded locations; edge lengths are
/// electrical (snaking included).

#include "topo/instance.hpp"
#include "topo/tree.hpp"

#include <iosfwd>
#include <string>

namespace astclk::io {

/// Serialise an embedded tree as JSON.
void write_tree_json(std::ostream& os, const topo::clock_tree& t,
                     const topo::instance& inst);

/// File convenience wrapper.
void save_tree_json(const std::string& path, const topo::clock_tree& t,
                    const topo::instance& inst);

}  // namespace astclk::io
