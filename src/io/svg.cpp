#include "io/svg.hpp"

#include <array>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace astclk::io {

namespace {

constexpr std::array<const char*, 10> kpalette = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"};

const char* group_color(topo::group_id g) {
    return kpalette[static_cast<std::size_t>(g) % kpalette.size()];
}

}  // namespace

void write_tree_svg(std::ostream& os, const topo::clock_tree& t,
                    const topo::instance& inst, const svg_options& opt) {
    const double w = std::max(inst.die_width, 1.0);
    const double h = std::max(inst.die_height, 1.0);
    const double s = opt.canvas / std::max(w, h);
    const auto X = [&](double x) { return x * s; };
    // SVG y grows downward; flip so the die reads naturally.
    const auto Y = [&](double y) { return (h - y) * s; };

    os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opt.canvas
       << "' height='" << opt.canvas << "' viewBox='0 0 " << opt.canvas << ' '
       << opt.canvas << "'>\n";
    os << "<rect width='100%' height='100%' fill='white'/>\n";

    // Edges: parent -> child as an L-route (horizontal then vertical).
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto& n = t.node(static_cast<topo::node_id>(i));
        if (n.is_leaf() || !n.is_placed) continue;
        const auto draw_edge = [&](topo::node_id child, double electrical) {
            const auto& c = t.node(child);
            if (!c.is_placed) return;
            const double phys = geom::manhattan(n.placed, c.placed);
            const bool snaked = electrical > phys + 1e-6;
            os << "<path d='M " << X(n.placed.x) << ' ' << Y(n.placed.y)
               << " L " << X(c.placed.x) << ' ' << Y(n.placed.y) << " L "
               << X(c.placed.x) << ' ' << Y(c.placed.y)
               << "' fill='none' stroke='" << (snaked ? "#d62728" : "#444444")
               << "' stroke-width='1'"
               << (snaked ? " stroke-dasharray='4 2'" : "") << "/>\n";
        };
        draw_edge(n.left, n.edge_left);
        draw_edge(n.right, n.edge_right);
    }

    if (opt.draw_arcs) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            const auto& n = t.node(static_cast<topo::node_id>(i));
            if (n.is_leaf() || n.arc.empty()) continue;
            const auto c = n.arc.real_corners();
            os << "<polygon points='";
            for (const auto& p : c) os << X(p.x) << ',' << Y(p.y) << ' ';
            os << "' fill='none' stroke='#aaccee' stroke-width='0.5'/>\n";
        }
    }

    if (opt.draw_sinks) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            const auto& n = t.node(static_cast<topo::node_id>(i));
            if (!n.is_leaf()) continue;
            const auto& sk = inst.sinks[static_cast<std::size_t>(n.sink_index)];
            os << "<circle cx='" << X(sk.loc.x) << "' cy='" << Y(sk.loc.y)
               << "' r='3' fill='" << group_color(sk.group) << "'/>\n";
        }
    }

    os << "<rect x='" << X(inst.source.x) - 5 << "' y='" << Y(inst.source.y) - 5
       << "' width='10' height='10' fill='black'/>\n";
    os << "</svg>\n";
}

void save_tree_svg(const std::string& path, const topo::clock_tree& t,
                   const topo::instance& inst, const svg_options& opt) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open for writing: " + path);
    write_tree_svg(f, t, inst, opt);
}

}  // namespace astclk::io
