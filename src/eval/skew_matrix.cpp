#include "eval/skew_matrix.hpp"

#include "rc/wire.hpp"

#include <cmath>
#include <sstream>

namespace astclk::eval {

skew_matrix::skew_matrix(const eval_result& ev, topo::group_id num_groups) {
    rep_.resize(static_cast<std::size_t>(num_groups), 0.0);
    for (topo::group_id g = 0; g < num_groups; ++g) {
        const auto idx = static_cast<std::size_t>(g);
        rep_[idx] = 0.5 * (ev.group_min[idx] + ev.group_max[idx]);
    }
}

double skew_matrix::max_abs_offset() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < rep_.size(); ++i)
        for (std::size_t j = i + 1; j < rep_.size(); ++j)
            worst = std::max(worst, std::fabs(rep_[i] - rep_[j]));
    return worst;
}

std::pair<topo::group_id, topo::group_id> skew_matrix::extreme_pair() const {
    std::pair<topo::group_id, topo::group_id> best{0, 0};
    double worst = -1.0;
    for (std::size_t i = 0; i < rep_.size(); ++i) {
        for (std::size_t j = 0; j < rep_.size(); ++j) {
            if (i == j) continue;
            const double d = rep_[j] - rep_[i];
            if (d > worst) {
                worst = d;
                best = {static_cast<topo::group_id>(i),
                        static_cast<topo::group_id>(j)};
            }
        }
    }
    return best;
}

std::string format_report(const eval_result& ev, const topo::instance& inst) {
    std::ostringstream os;
    os << "route report: " << (inst.name.empty() ? "instance" : inst.name)
       << " (" << inst.sinks.size() << " sinks, " << inst.num_groups
       << " groups)\n";
    os << "  wirelength      : " << ev.total_wirelength << " units\n";
    os << "  delay range     : [" << rc::to_ps(ev.min_delay) << ", "
       << rc::to_ps(ev.max_delay) << "] ps\n";
    os << "  global skew     : " << rc::to_ps(ev.global_skew) << " ps\n";
    os << "  max intra-group : " << rc::to_ps(ev.max_intra_group_skew)
       << " ps\n";
    const skew_matrix m(ev, inst.num_groups);
    os << "  inter-group span: " << rc::to_ps(m.max_abs_offset()) << " ps\n";
    os << "  group offsets S_ij (ps, row minus column):\n";
    for (topo::group_id i = 0; i < inst.num_groups; ++i) {
        os << "   g" << i << ":";
        for (topo::group_id j = 0; j < inst.num_groups; ++j) {
            os << ' ' << rc::to_ps(m.offset(i, j));
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace astclk::eval
