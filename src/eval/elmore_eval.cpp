#include "eval/elmore_eval.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace astclk::eval {

eval_result evaluate(const topo::clock_tree& t, const topo::instance& inst,
                     const rc::delay_model& model) {
    eval_result r;
    const std::size_t n_nodes = t.size();
    const std::size_t n_sinks = inst.sinks.size();
    r.sink_delay.assign(n_sinks, 0.0);
    r.node_cap.assign(n_nodes, 0.0);

    // Bottom-up: downstream capacitance from scratch.
    const auto order = t.postorder();
    for (topo::node_id id : order) {
        const topo::tree_node& n = t.node(id);
        const auto idx = static_cast<std::size_t>(id);
        if (n.is_leaf()) {
            r.node_cap[idx] =
                inst.sinks[static_cast<std::size_t>(n.sink_index)].cap;
        } else {
            r.node_cap[idx] =
                r.node_cap[static_cast<std::size_t>(n.left)] +
                r.node_cap[static_cast<std::size_t>(n.right)] +
                model.wire_cap(n.edge_left) + model.wire_cap(n.edge_right);
        }
        r.max_cap_error = std::max(
            r.max_cap_error, std::fabs(r.node_cap[idx] - n.subtree_cap));
    }

    // Top-down: source-to-node delays through electrical edge lengths.
    std::vector<double> node_delay(n_nodes, 0.0);
    const topo::node_id root = t.root();
    assert(root != topo::knull_node);
    node_delay[static_cast<std::size_t>(root)] = model.edge_delay(
        t.source_edge(), r.node_cap[static_cast<std::size_t>(root)]);
    r.total_wirelength = t.source_edge();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const topo::tree_node& n = t.node(*it);
        if (n.is_leaf()) {
            r.sink_delay[static_cast<std::size_t>(n.sink_index)] =
                node_delay[static_cast<std::size_t>(*it)];
            continue;
        }
        const double base = node_delay[static_cast<std::size_t>(*it)];
        node_delay[static_cast<std::size_t>(n.left)] =
            base + model.edge_delay(n.edge_left,
                                    r.node_cap[static_cast<std::size_t>(n.left)]);
        node_delay[static_cast<std::size_t>(n.right)] =
            base + model.edge_delay(
                       n.edge_right,
                       r.node_cap[static_cast<std::size_t>(n.right)]);
        r.total_wirelength += n.edge_left + n.edge_right;
    }

    // Skew statistics.
    r.min_delay = std::numeric_limits<double>::infinity();
    r.max_delay = -std::numeric_limits<double>::infinity();
    const auto k = static_cast<std::size_t>(inst.num_groups);
    r.group_min.assign(k, std::numeric_limits<double>::infinity());
    r.group_max.assign(k, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n_sinks; ++i) {
        const double d = r.sink_delay[i];
        r.min_delay = std::min(r.min_delay, d);
        r.max_delay = std::max(r.max_delay, d);
        const auto g = static_cast<std::size_t>(inst.sinks[i].group);
        r.group_min[g] = std::min(r.group_min[g], d);
        r.group_max[g] = std::max(r.group_max[g], d);
    }
    r.global_skew = r.max_delay - r.min_delay;
    r.group_skew.assign(k, 0.0);
    for (std::size_t g = 0; g < k; ++g) {
        if (r.group_max[g] >= r.group_min[g])
            r.group_skew[g] = r.group_max[g] - r.group_min[g];
        r.max_intra_group_skew =
            std::max(r.max_intra_group_skew, r.group_skew[g]);
    }
    return r;
}

}  // namespace astclk::eval
