#pragma once

/// \file skew_matrix.hpp
/// The inter-group skew by-product.
///
/// Ch. II of the paper: solving the AST problem implicitly fixes the skew
/// `S_ij` between every pair of groups (called *offsets* in the prior
/// work).  This module extracts them from an evaluated route — the
/// quantity behind the "Maximum Skew" column of Tables I/II — plus a
/// human-readable route report used by the examples.

#include "eval/elmore_eval.hpp"

#include <string>
#include <vector>

namespace astclk::eval {

/// Pairwise inter-group skews derived from an evaluation.
class skew_matrix {
  public:
    /// Build from per-group delay envelopes of an eval_result.  Groups with
    /// zero intra-group spread have a well-defined offset; for bounded
    /// groups the representative is the envelope midpoint.
    skew_matrix(const eval_result& ev, topo::group_id num_groups);

    [[nodiscard]] topo::group_id groups() const {
        return static_cast<topo::group_id>(rep_.size());
    }

    /// Representative (midpoint) source-to-sink delay of group g, seconds.
    [[nodiscard]] double representative(topo::group_id g) const {
        return rep_[static_cast<std::size_t>(g)];
    }

    /// S_ij = representative(i) - representative(j), seconds.
    [[nodiscard]] double offset(topo::group_id i, topo::group_id j) const {
        return rep_[static_cast<std::size_t>(i)] -
               rep_[static_cast<std::size_t>(j)];
    }

    /// Largest |S_ij| over all pairs — the inter-group skew span.
    [[nodiscard]] double max_abs_offset() const;

    /// The pair realising max_abs_offset() (i earlier-delay group).
    [[nodiscard]] std::pair<topo::group_id, topo::group_id> extreme_pair()
        const;

  private:
    std::vector<double> rep_;
};

/// Multi-line plain-text summary of a route evaluation: wirelength, global
/// and intra-group skews, and the inter-group offset matrix (in ps).
[[nodiscard]] std::string format_report(const eval_result& ev,
                                        const topo::instance& inst);

}  // namespace astclk::eval
