#include "eval/report.hpp"

#include <cmath>
#include <sstream>

namespace astclk::eval {

verify_result verify_route(const core::route_result& route,
                           const topo::instance& inst,
                           const rc::delay_model& model,
                           const core::skew_spec& spec,
                           const verify_options& opt) {
    verify_result out;
    const topo::clock_tree& t = route.tree;

    const auto fail = [&](const std::string& msg) {
        if (out.ok) {
            out.ok = false;
            out.message = msg;
        }
    };

    const std::string structure = t.check_structure(inst.sinks.size());
    if (!structure.empty()) {
        fail("structure: " + structure);
        return out;
    }

    const eval_result ev = evaluate(t, inst, model);

    // Capacitance bookkeeping.
    const double cap_scale =
        std::max(1e-18, ev.node_cap[static_cast<std::size_t>(t.root())]);
    out.max_cap_error = ev.max_cap_error;
    if (ev.max_cap_error > opt.cap_rel_tolerance * cap_scale) {
        std::ostringstream os;
        os << "cap bookkeeping off by " << ev.max_cap_error << " F";
        fail(os.str());
    }

    // Intra-group skew against bounds.
    for (topo::group_id g = 0; g < inst.num_groups; ++g) {
        const double skew = ev.group_skew[static_cast<std::size_t>(g)];
        const double excess = skew - spec.bound(g);
        out.max_group_violation = std::max(out.max_group_violation, excess);
        if (excess > opt.skew_tolerance) {
            std::ostringstream os;
            os << "group " << g << " skew " << rc::to_ps(skew)
               << " ps exceeds bound " << rc::to_ps(spec.bound(g)) << " ps";
            fail(os.str());
        }
    }

    // Engine delay map vs recomputed delays.  Collapsed-group routers book
    // everything under a single synthetic group; detect and handle that.
    const topo::tree_node& root = t.node(t.root());
    const double source_delay = model.edge_delay(
        t.source_edge(), ev.node_cap[static_cast<std::size_t>(t.root())]);
    const double delay_scale = std::max(1e-15, ev.max_delay);
    for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
        const double from_root = ev.sink_delay[i] - source_delay;
        const geom::interval* iv = root.delays.find(inst.sinks[i].group);
        if (iv == nullptr && root.delays.size() == 1)
            iv = &root.delays.entries().front().second;
        if (iv == nullptr) {
            fail("root delay map misses a group");
            break;
        }
        const double err =
            std::max(iv->lo - from_root, from_root - iv->hi);
        out.max_delay_bookkeeping_error =
            std::max(out.max_delay_bookkeeping_error, err);
        if (err > opt.delay_rel_tolerance * delay_scale) {
            std::ostringstream os;
            os << "sink " << i << " delay " << rc::to_ps(from_root)
               << " ps outside booked interval [" << rc::to_ps(iv->lo) << ", "
               << rc::to_ps(iv->hi) << "] ps";
            fail(os.str());
        }
    }

    // Embedding feasibility.
    out.worst_embed_excess = route.embed.worst_excess;
    if (route.embed.worst_excess > opt.embed_tolerance) {
        std::ostringstream os;
        os << "embedding exceeds electrical length by "
           << route.embed.worst_excess << " units";
        fail(os.str());
    }

    return out;
}

}  // namespace astclk::eval
