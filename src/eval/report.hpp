#pragma once

/// \file report.hpp
/// End-to-end verification of a routed tree against its constraints.
///
/// `verify_route` re-derives everything with the independent evaluator and
/// checks, with explicit tolerances:
///   * structural consistency (every sink exactly once, parents coherent);
///   * the engine's capacitance bookkeeping against the recomputed caps;
///   * every intra-group skew against its bound;
///   * the engine's root delay map against recomputed sink delays;
///   * the embedding (physical lengths never exceed electrical ones).

#include "core/merge_solver.hpp"
#include "core/router.hpp"
#include "eval/elmore_eval.hpp"

#include <string>

namespace astclk::eval {

struct verify_options {
    /// Absolute skew slack in seconds (default 1e-3 ps — far below the
    /// paper's 1 ps reporting resolution, far above fp rounding).
    double skew_tolerance = 1e-15;
    /// Relative capacitance bookkeeping tolerance.
    double cap_rel_tolerance = 1e-9;
    /// Relative delay bookkeeping tolerance.
    double delay_rel_tolerance = 1e-9;
    /// Embedding slack in layout units.
    double embed_tolerance = 1e-5;
};

struct verify_result {
    bool ok = true;
    std::string message;  ///< first failure, empty when ok

    double max_cap_error = 0.0;
    double max_delay_bookkeeping_error = 0.0;
    double max_group_violation = 0.0;  ///< worst (skew - bound), <= 0 when met
    double worst_embed_excess = 0.0;
};

/// Full verification of a route of `inst` under `spec`.
[[nodiscard]] verify_result verify_route(const core::route_result& route,
                                         const topo::instance& inst,
                                         const rc::delay_model& model,
                                         const core::skew_spec& spec,
                                         const verify_options& opt = {});

}  // namespace astclk::eval
