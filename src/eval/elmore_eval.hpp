#pragma once

/// \file elmore_eval.hpp
/// Independent Elmore-delay evaluation of a routed clock tree.
///
/// The evaluator deliberately ignores the engine's bookkeeping: it rebuilds
/// the RC tree from nothing but the tree topology, the *electrical* edge
/// lengths, the sink loads and the delay model, then recomputes every sink
/// delay and all skew figures.  It is the ground truth that the tests hold
/// the merge engine's incremental bookkeeping against, and the source of
/// the "Wirelen" / "Maximum Skew" columns of the paper's tables.

#include "rc/delay_model.hpp"
#include "topo/instance.hpp"
#include "topo/tree.hpp"

#include <vector>

namespace astclk::eval {

struct eval_result {
    /// Source-to-sink Elmore delay per sink index (seconds).
    std::vector<double> sink_delay;
    /// Downstream capacitance per node id (farads), recomputed from scratch.
    std::vector<double> node_cap;

    double total_wirelength = 0.0;  ///< electrical wirelength incl. source edge
    double min_delay = 0.0;
    double max_delay = 0.0;
    double global_skew = 0.0;  ///< max - min over all sinks (the paper's
                               ///< "Maximum Skew" column)

    /// Per group: [min, max] delay and skew (max - min).
    std::vector<double> group_min, group_max, group_skew;
    double max_intra_group_skew = 0.0;

    /// Worst |engine subtree_cap - recomputed cap| over all nodes.
    double max_cap_error = 0.0;
};

/// Evaluate `t` (routed over `inst`) under `model`.
[[nodiscard]] eval_result evaluate(const topo::clock_tree& t,
                                   const topo::instance& inst,
                                   const rc::delay_model& model);

}  // namespace astclk::eval
