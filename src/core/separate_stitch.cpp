#include "core/router.hpp"
#include "core/router_detail.hpp"
#include "core/stitch.hpp"

namespace astclk::core {

namespace detail {

route_result strategy_separate_stitch(const routing_request& req,
                                      routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    const router_options& opt = req.options;
    topo::clock_tree t;
    auto leaves = make_leaves(inst, t, /*collapse_groups=*/false);

    // Phase 1: a zero-skew tree per group, built in isolation — the prior
    // work's construction [12].  Each group root keeps its own group id, so
    // phase 2 sees pairwise-disjoint subtrees.
    offset_ledger ledger(inst.num_groups);
    merge_solver solver(opt.model, skew_spec::zero(), &ledger,
                        consistency_mode::exact);
    bottom_up_engine engine(solver, opt.engine);
    auto lease = ctx.scratch();
    route_result res;
    std::vector<topo::node_id> group_roots;
    for (topo::group_id g = 0; g < inst.num_groups; ++g) {
        std::vector<topo::node_id> members;
        for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
            if (inst.sinks[i].group == g)
                members.push_back(leaves[i]);
        }
        if (members.empty()) continue;
        group_roots.push_back(
            engine.reduce(t, std::move(members), &res.stats, lease.get()));
    }

    // Phase 2: stitch the per-group trees (no inter-group constraints, so
    // every stitch is a disjoint-group merge — but the damage from building
    // the trees separately is already done, cf. Fig. 2).  The stitch itself
    // is the shared phase-2 implementation (stitch.hpp) the sharded
    // reduction uses too.
    const topo::node_id root = stitch_roots(solver, opt.engine, t,
                                            std::move(group_roots),
                                            &res.stats, lease.get());
    finalize_result(inst, std::move(t), root, res);
    return res;
}

}  // namespace detail

route_result route_separate_stitch(const topo::instance& inst,
                                   const router_options& opt) {
    routing_request req;
    req.instance = &inst;
    req.options = opt;
    req.strategy = strategy_id::separate_stitch;
    return route(req);
}

}  // namespace astclk::core
