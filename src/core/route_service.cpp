#include "core/route_service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace astclk::core {

// ---------------------------------------------------------- thread_pool

struct thread_pool::impl {
    struct job {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};  ///< next unclaimed index
        std::atomic<std::size_t> done{0};  ///< completed invocations
        std::exception_ptr error;          ///< first exception wins (mu_)
        std::condition_variable cv_done;
    };

    std::mutex mu_;
    std::condition_variable cv_work_;
    std::deque<std::shared_ptr<job>> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;

    /// Claim and run indices of `j` until none remain.  Exceptions are
    /// recorded on the job (first wins); every claimed index counts as
    /// done either way, so waiters always unblock.  The pool mutex is only
    /// touched to record an error and by the last finisher (fine-grained
    /// fan-outs — thousands of sub-microsecond NN queries per multi-merge
    /// round — must not serialise on a per-index lock).
    void run_jobs(const std::shared_ptr<job>& j) {
        for (;;) {
            const std::size_t i =
                j->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= j->n) return;
            try {
                (*j->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!j->error) j->error = std::current_exception();
            }
            if (j->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                j->n) {
                // Lock before notifying so the waiter cannot check the
                // predicate and sleep between our increment and notify.
                std::lock_guard<std::mutex> lk(mu_);
                j->cv_done.notify_all();
            }
        }
    }

    void worker_loop() {
        for (;;) {
            std::shared_ptr<job> j;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
                if (stop_) return;
                j = queue_.front();
                if (j->next.load(std::memory_order_relaxed) >= j->n) {
                    // Fully claimed (maybe still finishing): retire it from
                    // the queue so workers move on to the next job.
                    queue_.pop_front();
                    continue;
                }
            }
            run_jobs(j);
        }
    }
};

thread_pool::thread_pool(int threads) : p_(std::make_unique<impl>()) {
    const int n = std::max(1, threads);
    p_->workers_.reserve(static_cast<std::size_t>(n - 1));
    for (int i = 0; i < n - 1; ++i)
        p_->workers_.emplace_back([s = p_.get()] { s->worker_loop(); });
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lk(p_->mu_);
        p_->stop_ = true;
    }
    p_->cv_work_.notify_all();
    for (std::thread& w : p_->workers_) w.join();
}

int thread_pool::concurrency() const noexcept {
    return static_cast<int>(p_->workers_.size()) + 1;
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    impl& s = *p_;
    if (s.workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    auto j = std::make_shared<impl::job>();
    j->fn = &fn;
    j->n = n;
    {
        std::lock_guard<std::mutex> lk(s.mu_);
        s.queue_.push_back(j);
    }
    s.cv_work_.notify_all();
    s.run_jobs(j);  // the caller always participates
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(s.mu_);
        const auto it = std::find(s.queue_.begin(), s.queue_.end(), j);
        if (it != s.queue_.end()) s.queue_.erase(it);
        j->cv_done.wait(
            lk, [&] { return j->done.load(std::memory_order_acquire) ==
                             j->n; });
        err = j->error;
    }
    if (err) std::rethrow_exception(err);
}

// --------------------------------------------------------- route_service

route_service::route_service(service_options opt)
    : opt_(opt), ctx_(opt.model) {
    int threads = opt_.threads;
    if (threads <= 0)
        threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    pool_ = std::make_unique<thread_pool>(threads);
}

route_service::~route_service() = default;

task_executor& route_service::executor() { return *pool_; }

int route_service::threads() const { return pool_->concurrency(); }

route_result route_service::route_one(routing_request req) {
    if (opt_.parallel_rounds && req.options.engine.executor == nullptr)
        req.options.engine.executor = pool_.get();
    // threads_used is derived by the dispatch from the executor the run
    // actually carried — a caller-supplied executor or a disabled
    // parallel_rounds must not be misreported as the pool's width.
    return core::route(req, ctx_);
}

route_result route_service::route(routing_request req) {
    return route_one(std::move(req));
}

std::vector<batch_entry> route_service::route_batch(
    const std::vector<routing_request>& requests) {
    std::vector<batch_entry> out(requests.size());
    pool_->parallel_for(requests.size(), [&](std::size_t i) {
        try {
            out[i].result = route_one(requests[i]);
        } catch (const std::exception& e) {
            out[i].error = e.what();
        } catch (...) {
            out[i].error = "unknown error";
        }
    });
    return out;
}

}  // namespace astclk::core
