#include "core/route_service.hpp"

#include "core/shard.hpp"
#include "eval/report.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <utility>

namespace astclk::core {

// ---------------------------------------------------------- thread_pool

struct thread_pool::impl {
    struct job {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};  ///< next unclaimed index
        std::atomic<std::size_t> done{0};  ///< completed invocations
        std::exception_ptr error;          ///< first exception wins (mu_)
        std::condition_variable cv_done;
    };

    std::mutex mu_;
    std::condition_variable cv_work_;
    std::deque<std::shared_ptr<job>> queue_;
    /// Submitted one-shot tasks, keyed (-priority, seq): begin() is the
    /// highest priority, FIFO within a level.
    std::map<std::pair<int, std::uint64_t>, std::function<void()>> tasks_;
    std::uint64_t task_seq_ = 0;
    std::vector<std::thread> workers_;
    bool stop_ = false;

    /// Claim and run indices of `j` until none remain.  Exceptions are
    /// recorded on the job (first wins); every claimed index counts as
    /// done either way, so waiters always unblock.  The pool mutex is only
    /// touched to record an error and by the last finisher (fine-grained
    /// fan-outs — thousands of sub-microsecond NN queries per multi-merge
    /// round — must not serialise on a per-index lock).
    void run_jobs(const std::shared_ptr<job>& j) {
        for (;;) {
            const std::size_t i =
                j->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= j->n) return;
            try {
                (*j->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!j->error) j->error = std::current_exception();
            }
            if (j->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                j->n) {
                // Lock before notifying so the waiter cannot check the
                // predicate and sleep between our increment and notify.
                std::lock_guard<std::mutex> lk(mu_);
                j->cv_done.notify_all();
            }
        }
    }

    /// Workers prefer helping a pending parallel_for (short, fine-grained
    /// sub-work of an already-running task) over claiming the next
    /// submitted task; tasks drain even after stop_, so destruction
    /// completes every submission.
    void worker_loop() {
        for (;;) {
            std::shared_ptr<job> j;
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_work_.wait(lk, [&] {
                    return stop_ || !queue_.empty() || !tasks_.empty();
                });
                if (!queue_.empty()) {
                    j = queue_.front();
                    if (j->next.load(std::memory_order_relaxed) >= j->n) {
                        // Fully claimed (maybe still finishing): retire it
                        // from the queue so workers move on.
                        queue_.pop_front();
                        continue;
                    }
                } else if (!tasks_.empty()) {
                    auto it = tasks_.begin();
                    task = std::move(it->second);
                    tasks_.erase(it);
                } else {
                    return;  // stop_ and nothing left: drained
                }
            }
            if (j) {
                run_jobs(j);
            } else {
                // Tasks own their error reporting (serve() converts
                // exceptions to route_status::error); a stray throw must
                // not unwind the worker thread and terminate the process.
                try {
                    task();
                } catch (...) {
                }
            }
        }
    }
};

thread_pool::thread_pool(int threads) : p_(std::make_shared<impl>()) {
    const int n = std::max(1, threads);
    p_->workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        p_->workers_.emplace_back([s = p_.get()] { s->worker_loop(); });
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lk(p_->mu_);
        p_->stop_ = true;
    }
    p_->cv_work_.notify_all();
    for (std::thread& w : p_->workers_) w.join();
}

int thread_pool::concurrency() const noexcept {
    return static_cast<int>(p_->workers_.size());
}

thread_pool::ticket thread_pool::submit(int priority,
                                        std::function<void()> task) {
    ticket t;
    t.pool_ = p_;
    {
        std::lock_guard<std::mutex> lk(p_->mu_);
        t.key_ = std::make_pair(-priority, p_->task_seq_++);
        p_->tasks_.emplace(t.key_, std::move(task));
    }
    p_->cv_work_.notify_one();
    return t;
}

bool thread_pool::ticket::revoke() {
    const std::shared_ptr<impl> s = pool_.lock();
    if (!s) return false;  // pool already destroyed (queue fully drained)
    std::lock_guard<std::mutex> lk(s->mu_);
    return s->tasks_.erase(key_) > 0;
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    impl& s = *p_;
    // A single-worker pool runs fan-outs inline on the caller: the one
    // worker either *is* the caller or stays free for queued submissions.
    if (s.workers_.size() <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    auto j = std::make_shared<impl::job>();
    j->fn = &fn;
    j->n = n;
    {
        std::lock_guard<std::mutex> lk(s.mu_);
        s.queue_.push_back(j);
    }
    s.cv_work_.notify_all();
    s.run_jobs(j);  // the caller always participates
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(s.mu_);
        const auto it = std::find(s.queue_.begin(), s.queue_.end(), j);
        if (it != s.queue_.end()) s.queue_.erase(it);
        j->cv_done.wait(
            lk, [&] { return j->done.load(std::memory_order_acquire) ==
                             j->n; });
        err = j->error;
    }
    if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------- route_handle

/// Shared between the handle copies and the worker serving the request.
/// `claimed` decides who completes it: the worker that starts routing, or
/// a cancel() that gets there first (whoever wins the exchange owns the
/// completion; the loser backs off).
struct route_handle::state {
    routing_request req;
    submit_options opt;
    thread_pool::ticket ticket;  ///< set at submit; revoked by cancel()
    /// Submission time (degradation-watermark reference point).
    std::chrono::steady_clock::time_point submitted{};
    /// Current degradation-ladder rung; only the serving attempt mutates
    /// it (attempts are strictly sequential), so no synchronisation.
    int rung = 0;
    std::atomic<bool> cancel_flag{false};
    std::atomic<bool> claimed{false};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool retrieved = false;
    route_result result;

    void complete(route_result res) {
        {
            std::lock_guard<std::mutex> lk(mu);
            result = std::move(res);
        }
        // The callback sees the stored result before any waiter can move
        // it out (done is still false here).  Its exceptions are swallowed:
        // a throwing callback must neither kill the completing thread nor
        // leave waiters blocked on a result that is already in.
        if (opt.on_complete) {
            try {
                opt.on_complete(result);
            } catch (...) {
            }
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            done = true;
        }
        cv.notify_all();
    }
};

bool route_handle::done() const {
    if (!st_) return false;
    std::lock_guard<std::mutex> lk(st_->mu);
    return st_->done;
}

bool route_handle::cancel() {
    if (!st_) return false;
    st_->cancel_flag.store(true, std::memory_order_relaxed);
    if (!st_->claimed.exchange(true, std::memory_order_acq_rel)) {
        // Still queued: complete it right here — a cancelled request must
        // not wait behind the backlog — and drop the queued closure so a
        // cancelled backlog frees its memory now instead of leaving
        // tombstones for the workers.  (If a worker popped the task just
        // before the exchange, its serve() finds the state claimed and
        // backs off.)
        st_->ticket.revoke();
        route_result res;
        res.status = route_status::cancelled;
        res.status_message = status_message_for(route_status::cancelled);
        st_->complete(std::move(res));
        return true;
    }
    std::lock_guard<std::mutex> lk(st_->mu);
    return !st_->done;
}

std::optional<route_result> route_handle::try_get() {
    if (!st_) return std::nullopt;
    std::lock_guard<std::mutex> lk(st_->mu);
    if (!st_->done || st_->retrieved) return std::nullopt;
    st_->retrieved = true;
    return std::move(st_->result);
}

route_result route_handle::wait() {
    if (!st_) throw std::logic_error("route_handle: empty handle");
    std::unique_lock<std::mutex> lk(st_->mu);
    st_->cv.wait(lk, [&] { return st_->done; });
    if (st_->retrieved)
        throw std::logic_error("route_handle: result already retrieved");
    st_->retrieved = true;
    return std::move(st_->result);
}

// --------------------------------------------------------- route_service

route_service::route_service(service_options opt)
    : opt_(opt), ctx_(opt.model) {
    int threads = opt_.threads;
    if (threads <= 0)
        threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    pool_ = std::make_unique<thread_pool>(threads);
}

// Members are destroyed in reverse order: the pool first (draining every
// submitted request, which may still use the context), then the context.
route_service::~route_service() = default;

task_executor& route_service::executor() { return *pool_; }

int route_service::threads() const { return pool_->concurrency(); }

route_result route_service::route_one(routing_request req) {
    if (opt_.parallel_rounds && req.options.engine.executor == nullptr)
        req.options.engine.executor = pool_.get();
    // threads_used is derived by the dispatch from the executor the run
    // actually carried — a caller-supplied executor or a disabled
    // parallel_rounds must not be misreported as the pool's width.
    return core::route(req, ctx_);
}

route_result route_service::route(routing_request req) {
    return route_one(std::move(req));
}

namespace {

/// Reconfigure a request for one degradation-ladder rung (cumulative:
/// rung 2 implies rung 1's step).  Rung 3 swaps the strategy for the
/// greedy EXT-BST under the spec's tightest bound — conservative: a
/// global bound no looser than any group's bound satisfies every group.
void apply_rung(routing_request& req, int rung, int concurrency) {
    if (rung >= 1) req.options.engine.speculate_k = 0;
    if (rung >= 2 && req.instance != nullptr)
        req.options.engine.shards =
            coarse_shard_count(req.instance->sinks.size(), concurrency);
    if (rung >= 3) {
        double b = req.spec.default_bound;
        for (const auto& [g, ob] : req.spec.overrides) b = std::min(b, ob);
        req.spec = skew_spec::uniform(b);
        req.strategy = strategy_id::ext_bst;
    }
}

}  // namespace

/// Worker-side execution of one attempt of one submission: claim it on
/// the first attempt (backing off if a cancel got there first), wire the
/// cancel token, apply the current degradation rung, route, and either
/// publish or re-enqueue the next attempt (retry with backoff, or one
/// rung further down the ladder).  Exceptions become route_status::error
/// — isolation by construction — except std::bad_alloc, which maps to
/// the retryable `transient_fault`.
void route_service::serve(const std::shared_ptr<route_handle::state>& st,
                          int attempt) {
    if (attempt == 1 && st->claimed.exchange(true, std::memory_order_acq_rel))
        return;  // cancelled while queued; cancel() completed it
    const retry_policy& rp = st->opt.retry;
    const degrade_policy& dp = st->opt.degrade;

    // Deadline watermark: a (re)attempt starting deep into its budget is
    // not going to finish a full-fidelity run — start it stepped down.
    if (dp.enabled && st->opt.deadline != cancel_token::no_deadline()) {
        const auto now = std::chrono::steady_clock::now();
        const double total = std::chrono::duration<double>(
                                 st->opt.deadline - st->submitted)
                                 .count();
        const double elapsed =
            std::chrono::duration<double>(now - st->submitted).count();
        if (total > 0.0) {
            const double f = elapsed / total;
            const double w = dp.deadline_watermark;
            if (f >= w + (1.0 - w) / 2.0)
                st->rung = std::max(st->rung, 3);
            else if (f >= w)
                st->rung = std::max(st->rung, 1);
        }
    }
    const int rung = st->rung;

    routing_request req = st->req;  // copied: a retry reuses the original
    apply_rung(req, rung, pool_->concurrency());
    req.options.engine.salvage = dp.enabled && dp.salvage;
    // The handle-wired token carries the submission's flag and deadline;
    // the request's own token keeps working through the chain (its flag
    // and deadline are polled too), and its probe and fault plan are
    // forwarded so checkpoints count once and scheduled faults fire (the
    // chain carries neither).  caller_tok outlives the route call.
    const cancel_token caller_tok = req.options.engine.cancel;
    cancel_token tok(&st->cancel_flag, st->opt.deadline);
    tok.set_probe(caller_tok.probe());
    tok.set_faults(caller_tok.faults());
    tok.set_chain(&caller_tok);
    req.options.engine.cancel = tok;
    route_result res;
    try {
        res = route_one(std::move(req));
    } catch (const std::bad_alloc&) {
        res = route_result{};
        res.status = route_status::transient_fault;
        res.status_message = "allocation failure";
    } catch (const std::exception& e) {
        res = route_result{};
        res.status = route_status::error;
        res.status_message = e.what();
    } catch (...) {
        res = route_result{};
        res.status = route_status::error;
        res.status_message = "unknown error";
    }
    res.attempts = attempt;

    // Another attempt?  Retry first (same configuration, backoff), then
    // the ladder (one rung down, immediately).  Neither fires once the
    // handle is cancelled or the deadline is spent — and an expired
    // deadline means `deadline_exceeded` was already the honest outcome.
    const bool cancelled =
        st->cancel_flag.load(std::memory_order_relaxed) ||
        res.status == route_status::cancelled;
    const auto now = std::chrono::steady_clock::now();
    const bool retryable =
        rp.retryable ? rp.retryable(res.status)
                     : res.status == route_status::transient_fault;
    bool again = false;
    if (!cancelled && retryable && attempt < rp.max_attempts) {
        auto backoff = rp.backoff_base;
        for (int i = 1; i < attempt && backoff < rp.backoff_cap; ++i)
            backoff *= 2;
        backoff = std::min(backoff, rp.backoff_cap);
        if (now + backoff < st->opt.deadline) {
            // Sleeping here occupies this worker for the backoff — cheap
            // (milliseconds) and simple; the re-enqueue then restores
            // priority order among the waiting submissions.
            std::this_thread::sleep_for(backoff);
            again = true;
        }
    }
    if (!again && !cancelled && dp.enabled && st->rung < 3 &&
        (res.status == route_status::transient_fault ||
         res.status == route_status::data_fault) &&
        now < st->opt.deadline) {
        ++st->rung;
        again = true;
    }
    if (again) {
        pool_->submit(st->opt.priority,
                      [this, st, attempt] { serve(st, attempt + 1); });
        return;
    }

    // Tag ladder results (the salvage path arrives already tagged) and
    // re-verify every degraded tree with the independent evaluator — a
    // stepped-down configuration must still produce a sound tree.
    if (rung > 0 && res.status == route_status::ok &&
        res.degradation.rung == degrade_rung::none) {
        res.status = route_status::degraded;
        res.degradation.rung = static_cast<degrade_rung>(rung);
        res.degradation.reason =
            std::string("degradation ladder rung ") + std::to_string(rung) +
            " (" + to_string(res.degradation.rung) + ")";
        res.status_message = res.degradation.reason;
    }
    if (res.status == route_status::degraded && dp.verify) {
        eval::verify_options vopt;
        // Forced merges (tracked by the engine) may leave a residual
        // violation the run already reported; verify against it, not
        // against zero, so the check tests the *tree*, not the engine's
        // honesty about forced merges.
        vopt.skew_tolerance += res.stats.worst_violation;
        const eval::verify_result vr = eval::verify_route(
            res, *st->req.instance, st->req.options.model, st->req.spec,
            vopt);
        res.degradation.verified = vr.ok;
        if (!vr.ok) {
            res.status = route_status::error;
            res.status_message =
                "degraded result failed verification: " + vr.message;
        }
    }
    st->complete(std::move(res));
}

route_handle route_service::submit(routing_request req, submit_options opt) {
    auto st = std::make_shared<route_handle::state>();
    st->req = std::move(req);
    st->opt = std::move(opt);
    st->submitted = std::chrono::steady_clock::now();
    const int priority = st->opt.priority;
    st->ticket = pool_->submit(priority, [this, st] { serve(st, 1); });
    return route_handle(std::move(st));
}

std::vector<route_result> route_service::route_batch(
    const std::vector<routing_request>& requests) {
    std::vector<route_handle> handles;
    handles.reserve(requests.size());
    for (const routing_request& r : requests)
        handles.push_back(submit(r));
    std::vector<route_result> out;
    out.reserve(handles.size());
    for (route_handle& h : handles) out.push_back(h.wait());
    return out;
}

}  // namespace astclk::core
