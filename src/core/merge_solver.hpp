#pragma once

/// \file merge_solver.hpp
/// The constraint solver behind every subtree merge — the algorithmic core
/// of the paper (Ch. V, Fig. 6).
///
/// Given two active subtree roots A and B, the solver classifies the merge
/// exactly as AST-DME does:
///
///  * **Same / shared groups** (cases 1, 3): each shared group g constrains
///    the delay difference D = e(beta, C_B) - e(alpha, C_A) to a window
///    W_g; with zero intra-group skew the window is a point and the merge
///    is the classic DME embedding.  D is linear in alpha on
///    alpha + beta = L, so the feasible split is closed-form; targets
///    outside [0, L] are met by root-edge wire snaking.
///  * **Disjoint groups** (case 2): no window at all — the merge costs
///    exactly the arc distance L (a point of the shortest-distance region)
///    and the free split is chosen by a balance heuristic that minimises
///    the merged subtree's overall delay spread, reducing future snaking.
///  * **Partially shared groups with conflicting windows** (case 4,
///    Fig. 5 / Eqs. 5.1-5.3): the window intersection is empty.  The solver
///    repairs it by **interior snaking**: lengthening the edge to a direct
///    child X of one root whose group set is disjoint from its sibling's
///    (the legality condition that keeps frozen intra-group skews intact),
///    which shifts exactly groups(X) by a closed-form gamma.  If no legal
///    repair chain exists the pair is rejected and the caller tries another
///    pair; a forced variant minimising the worst violation exists for
///    pathological endgames.

#include "core/offset_ledger.hpp"
#include "geom/tilted_rect.hpp"
#include "rc/delay_model.hpp"
#include "topo/group_map.hpp"
#include "topo/tree.hpp"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace astclk::core {

/// Memo of true plan order-costs keyed by symmetric pair key (see
/// pair_key in nn_index.hpp).  The engine's lazy re-keying stores a pair's
/// solved `merge_plan::order_cost` here the first time it exceeds the arc
/// distance lower bound; subsequent selections of the pair are keyed by the
/// cached true cost instead of re-solving the plan.  Entries for merged
/// roots are never consulted again (node ids are unique), so no
/// invalidation is needed within one engine run.  The *plan* behind a
/// cached cost lives in the companion `plan_cache` below, so a re-keyed
/// pair popped a second time is committed from the memoised plan instead
/// of being re-solved.
class pair_cost_cache {
  public:
    void store(std::uint64_t key, double order_cost) {
        costs_[key] = order_cost;
        // Degree table for the lookup fast path; re-storing a key
        // over-counts, which is harmless (the fast path only needs
        // "nonzero whenever any entry involves the id").
        const auto hi = static_cast<std::size_t>(key >> 32);
        if (deg_.size() <= hi) deg_.resize(hi + 1, 0);
        ++deg_[hi];
        ++deg_[static_cast<std::size_t>(key & 0xffffffffu)];
    }

    /// The cached true cost, or nullopt when the pair was never re-keyed.
    /// An entry for (a, b) can exist only if *both* ids were part of an
    /// earlier re-key, so two array loads answer almost every probe the
    /// hot set_nn / pop paths make without walking the hash table (the
    /// pair key packs both ids — pair_key in nn_index.hpp).
    [[nodiscard]] std::optional<double> lookup(std::uint64_t key) const {
        const auto hi = static_cast<std::size_t>(key >> 32);
        if (hi >= deg_.size()) return std::nullopt;
        if (deg_[hi] == 0 ||
            deg_[static_cast<std::size_t>(key & 0xffffffffu)] == 0)
            return std::nullopt;
        const auto it = costs_.find(key);
        if (it == costs_.end()) return std::nullopt;
        return it->second;
    }

    /// Drop every entry (engine_scratch reuse between runs).
    void clear() {
        costs_.clear();
        deg_.clear();
    }

  private:
    std::unordered_map<std::uint64_t, double> costs_;
    std::vector<std::uint32_t> deg_;  ///< id -> entries the id is part of
};

/// Intra-group skew bounds (seconds).  `default_bound` applies to every
/// group without an override.  Zero bounds give classic zero-skew behaviour.
struct skew_spec {
    double default_bound = 0.0;
    std::vector<std::pair<topo::group_id, double>> overrides;  // sorted

    [[nodiscard]] double bound(topo::group_id g) const {
        for (const auto& [gid, b] : overrides)
            if (gid == g) return b;
        return default_bound;
    }

    static skew_spec zero() { return {}; }
    static skew_spec uniform(double b) { return {b, {}}; }
};

/// An interior-edge snake: lengthen the edge from `side_root` to its direct
/// child `child` by `gamma`, delaying every sink below `child` by
/// `delay_shift` (the paper's Eq. 5.2 gamma).
struct interior_snake {
    topo::node_id side_root = topo::knull_node;
    topo::node_id child = topo::knull_node;
    double gamma = 0.0;
    double delay_shift = 0.0;
};

/// A fully solved merge, ready to commit.
struct merge_plan {
    double alpha = 0.0;  ///< electrical length of the edge to A
    double beta = 0.0;   ///< electrical length of the edge to B
    geom::tilted_rect arc;  ///< merging segment of the new root
    double cost = 0.0;      ///< total wire added: alpha + beta + snakes
    /// Ordering key for the engine: real cost plus any deferral bias (e.g.
    /// to postpone offset-binding merges); never counted as wire.
    double order_cost = 0.0;
    double new_cap = 0.0;
    topo::group_delays delays;  ///< delay map of the new root
    std::vector<interior_snake> snakes;
    int shared_groups = 0;      ///< diagnostic: how many groups were shared
    double violation = 0.0;     ///< forced merges only: worst skew excess
};

/// Generation-stamped memo of fully solved plans, keyed by the *ordered*
/// pair key (ordered_pair_key, nn_index.hpp) — the promotion of the
/// order-cost hook above into a real cross-step plan cache (DESIGN.md §3).
/// The key must be orientation-sensitive: a merge_plan assigns `alpha` to
/// the first root of the solve, so plan(a, b) and plan(b, a) are mirror
/// images that must never substitute for each other.
///
/// The engine stamps every entry with the *selection generations* of both
/// roots at solve time (engine_scratch's per-node counters: bumped whenever
/// a root's nearest-neighbour record changes or the root is merged away).
/// A lookup only returns the entry when both stamps still match, so a plan
/// solved speculatively — possibly on another thread, for a pair selection
/// never commits — can never leak into a run whose state moved on: stale
/// entries are simply misses and the caller re-solves inline.  For
/// ledger-free solvers a live pair's plan is invariant while both roots
/// remain active (plans read only the two subtrees), so generation
/// stamping is conservative; the engine disables the cache entirely for
/// ledger-backed solvers, whose plans read offsets that commits bind.
///
/// `plan == nullopt` is a *cached rejection*: the solver found the pair
/// infeasible, and consuming the entry reproduces the rejection without
/// re-solving.  `speculative`/`consumed` feed the engine's wasted-work
/// accounting (engine_stats).
class plan_cache {
  public:
    struct entry {
        std::uint32_t gen_a = 0;   ///< generation of the first (alpha) root
        std::uint32_t gen_b = 0;   ///< generation of the second (beta) root
        bool speculative = false;  ///< solved ahead of selection
        bool consumed = false;     ///< selection has used this plan
        std::optional<merge_plan> plan;  ///< nullopt: pair was rejected
    };

    /// Insert or overwrite the pair's entry (an overwritten speculative
    /// entry that was never consumed stays counted as wasted work).
    void store(std::uint64_t key, std::uint32_t gen_a, std::uint32_t gen_b,
               bool speculative, std::optional<merge_plan> plan) {
        entries_[key] =
            entry{gen_a, gen_b, speculative, false, std::move(plan)};
    }

    /// The pair's entry when both generation stamps still match, nullptr
    /// when the pair was never solved or either root's state moved on.
    [[nodiscard]] entry* find(std::uint64_t key, std::uint32_t gen_a,
                              std::uint32_t gen_b) {
        if (entries_.empty()) return nullptr;  // no speculation in flight
        const auto it = entries_.find(key);
        if (it == entries_.end()) return nullptr;
        entry& e = it->second;
        if (e.gen_a != gen_a || e.gen_b != gen_b) return nullptr;
        return &e;
    }

    /// Drop one pair's entry regardless of stamps.  The engine calls this
    /// at a pair's *terminal* event — commit or ban — after which the pair
    /// can never be proposed again (merged roots leave the active set,
    /// banned pairs are excluded from NN queries), so the memo stays
    /// proportional to the in-flight speculation instead of retaining
    /// every plan ever solved until the end of the run.
    void erase(std::uint64_t key) {
        if (!entries_.empty()) entries_.erase(key);
    }

    /// Drop every entry (engine_scratch reuse between runs).
    void clear() { entries_.clear(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Visit every entry as (ordered pair key, entry) — read-only walk for
    /// the invariant auditor's generation-stamp check (core/audit.hpp).
    /// Iteration order is unspecified; callers must not depend on it.
    template <class Fn>
    void for_each(Fn fn) const {
        for (const auto& [key, e] : entries_) fn(key, e);
    }

  private:
    std::unordered_map<std::uint64_t, entry> entries_;
};

/// How the solver treats inter-group offset consistency.
enum class consistency_mode {
    /// No global bookkeeping: per-merge windows, interior snaking, pair
    /// rejection (the paper's literal Fig. 6 behaviour).  Endgame conflicts
    /// can force bounded violations.
    windowed,
    /// Strict offset ledger (zero bounds only): every merge constrained to
    /// the globally consistent offset; conflicts impossible, freedom gone.
    exact,
    /// Ledger as *intent*: follow the consistent offset whenever it costs
    /// nothing (it lies in the no-snake split range), drift away only in
    /// lieu of snake wire, and repair residual conflicts with windows and
    /// interior snakes.  Drift is created exactly where it saves wire.
    soft,
};

class merge_solver {
  public:
    /// `ledger` is required for consistency modes `exact` and `soft` and
    /// ignored for `windowed`.  `exact` additionally requires an all-zero
    /// spec (degenerate delay intervals).
    merge_solver(rc::delay_model model, skew_spec spec,
                 offset_ledger* ledger = nullptr,
                 consistency_mode mode = consistency_mode::windowed)
        : model_(model), spec_(std::move(spec)), ledger_(ledger),
          mode_(ledger == nullptr ? consistency_mode::windowed : mode) {}

    [[nodiscard]] const rc::delay_model& model() const { return model_; }
    [[nodiscard]] const skew_spec& spec() const { return spec_; }
    [[nodiscard]] const offset_ledger* ledger() const { return ledger_; }
    [[nodiscard]] consistency_mode mode() const { return mode_; }

    /// Ordering bias (layout units) added to the engine key of merges that
    /// would bind two offset components.  Binding freezes an inter-group
    /// offset forever; deferring such merges lets the free choice absorb
    /// real delay imbalance instead of committing ~0 offsets while all
    /// subtrees are still tiny.  Pure ordering pressure — never real wire.
    void set_bind_deferral_bias(double units) { bind_bias_ = units; }
    [[nodiscard]] double bind_deferral_bias() const { return bind_bias_; }

    /// Solve the merge of roots a and b.  nullopt when the pair has an
    /// irreconcilable multi-group conflict (caller should try another pair).
    [[nodiscard]] std::optional<merge_plan> plan(const topo::clock_tree& t,
                                                 topo::node_id a,
                                                 topo::node_id b) const;

    /// Like plan(), but never fails: unsatisfiable windows are met at the
    /// minimax point and the residual is reported in `violation`.
    [[nodiscard]] merge_plan plan_forced(const topo::clock_tree& t,
                                         topo::node_id a,
                                         topo::node_id b) const;

    /// Apply a plan: mutate snaked child edges, create and return the new
    /// root node.
    topo::node_id commit(topo::clock_tree& t, topo::node_id a, topo::node_id b,
                         const merge_plan& p) const;

  private:
    [[nodiscard]] std::optional<merge_plan> solve(const topo::clock_tree& t,
                                                  topo::node_id a,
                                                  topo::node_id b,
                                                  bool forced) const;

    rc::delay_model model_;
    skew_spec spec_;
    offset_ledger* ledger_ = nullptr;  // non-owning; nullable
    consistency_mode mode_ = consistency_mode::windowed;
    double bind_bias_ = 0.0;
};

}  // namespace astclk::core
