#pragma once

/// \file router_detail.hpp
/// Internal plumbing shared by the routing strategies: leaf construction
/// (optionally collapsing all groups into one), the engine run with a
/// context-pooled scratch, embedding and bookkeeping.  Also declares the
/// four built-in strategy implementations the registry binds (each lives
/// in its router's .cpp).  Not part of the public API.
///
/// Note there is no timing here: `route()` (strategy.hpp) wraps every
/// strategy with the one wall-clock measurement, so direct and batched
/// calls report cpu_seconds identically.

#include "core/route_context.hpp"
#include "core/strategy.hpp"

namespace astclk::core::detail {

/// Create one leaf per sink.  When `collapse_groups` is set every leaf is
/// booked under synthetic group 0, which turns the associative problem into
/// a conventional single-group one (ZST / EXT-BST baselines).
inline std::vector<topo::node_id> make_leaves(const topo::instance& inst,
                                              topo::clock_tree& t,
                                              bool collapse_groups) {
    std::vector<topo::node_id> roots;
    roots.reserve(inst.sinks.size());
    for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
        const topo::node_id id =
            t.add_leaf(inst, static_cast<std::int32_t>(i));
        if (collapse_groups)
            t.node(id).delays = topo::group_delays::single(0);
        roots.push_back(id);
    }
    return roots;
}

/// Reduce the given roots (borrowing a scratch from the context's pool),
/// embed, and fill in the result bookkeeping.
inline route_result finish_route(const topo::instance& inst,
                                 const merge_solver& solver,
                                 const engine_options& eopt,
                                 topo::clock_tree t,
                                 std::vector<topo::node_id> roots,
                                 routing_context& ctx) {
    route_result res;
    bottom_up_engine engine(solver, eopt);
    auto lease = ctx.scratch();
    const topo::node_id root =
        engine.reduce(t, std::move(roots), &res.stats, lease.get());
    t.set_root(root);
    res.embed = embed_tree(t, inst.source);
    res.tree = std::move(t);
    res.wirelength = res.tree.total_wirelength();
    return res;
}

// The four built-in strategies (registered by strategy_registry's ctor).
route_result strategy_zst_dme(const routing_request&, routing_context&);
route_result strategy_ext_bst(const routing_request&, routing_context&);
route_result strategy_ast_dme(const routing_request&, routing_context&);
route_result strategy_separate_stitch(const routing_request&,
                                      routing_context&);

}  // namespace astclk::core::detail
