#pragma once

/// \file router_detail.hpp
/// Internal plumbing shared by the routing strategies: leaf construction
/// (optionally collapsing all groups into one), the engine run with a
/// context-pooled scratch, embedding and bookkeeping.  Also declares the
/// four built-in strategy implementations the registry binds (each lives
/// in its router's .cpp).  Not part of the public API.
///
/// Note there is no timing here: `route()` (strategy.hpp) wraps every
/// strategy with the one wall-clock measurement, so direct and batched
/// calls report cpu_seconds identically.

#include "core/audit.hpp"
#include "core/route_context.hpp"
#include "core/shard.hpp"
#include "core/strategy.hpp"

namespace astclk::core::detail {

/// Create one leaf per listed sink, in the given order.  When
/// `collapse_groups` is set every leaf is booked under synthetic group 0,
/// which turns the associative problem into a conventional single-group
/// one (ZST / EXT-BST baselines).  The one leaf-construction primitive:
/// the monolithic path books every sink, the shard driver books one
/// shard's subset — both through this body, so leaf initialisation can
/// never diverge between the two paths.
inline std::vector<topo::node_id> make_leaves(
    const topo::instance& inst, topo::clock_tree& t,
    const std::vector<std::int32_t>& sinks, bool collapse_groups) {
    std::vector<topo::node_id> roots;
    roots.reserve(sinks.size());
    for (const std::int32_t i : sinks) {
        const topo::node_id id = t.add_leaf(inst, i);
        if (collapse_groups)
            t.node(id).delays = topo::group_delays::single(0);
        roots.push_back(id);
    }
    return roots;
}

/// Create one leaf per sink of the instance (ascending sink order).
inline std::vector<topo::node_id> make_leaves(const topo::instance& inst,
                                              topo::clock_tree& t,
                                              bool collapse_groups) {
    std::vector<std::int32_t> all(inst.sinks.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<std::int32_t>(i);
    return make_leaves(inst, t, all, collapse_groups);
}

/// Fill in the result bookkeeping shared by every whole-tree strategy
/// tail: root, top-down embedding, tree ownership, wirelength.
inline void finalize_result(const topo::instance& inst, topo::clock_tree t,
                            topo::node_id root, route_result& res) {
    t.set_root(root);
#ifdef ASTCLK_AUDIT
    // Every whole-tree strategy tail funnels through here, so audit builds
    // structurally verify every finished tree before it is embedded.
    audit::checkpoint("finalize/tree",
                      audit::verify_tree_structure(t, inst.sinks.size()));
#endif
    res.embed = embed_tree(t, inst.source);
    res.tree = std::move(t);
    res.wirelength = res.tree.total_wirelength();
}

/// Reduce the given roots (borrowing a scratch from the context's pool),
/// embed, and fill in the result bookkeeping.
inline route_result finish_route(const topo::instance& inst,
                                 const merge_solver& solver,
                                 const engine_options& eopt,
                                 topo::clock_tree t,
                                 std::vector<topo::node_id> roots,
                                 routing_context& ctx) {
    route_result res;
    bottom_up_engine engine(solver, eopt);
    auto lease = ctx.scratch();
    const topo::node_id root =
        engine.reduce(t, std::move(roots), &res.stats, lease.get());
    finalize_result(inst, std::move(t), root, res);
    return res;
}

/// Sink-level route entry for the whole-die strategies: resolve the shard
/// knob and either run the monolithic path (leaves + one reduce — the
/// bit-identical default) or hand the instance to the sharded driver
/// (shard.hpp: partition → parallel sub-reduce → associative stitch).
inline route_result reduce_route(const topo::instance& inst,
                                 const merge_solver& solver,
                                 const engine_options& eopt,
                                 bool collapse_groups,
                                 routing_context& ctx) {
    const int k = effective_shard_count(eopt, solver, inst.sinks.size());
    if (k > 1) {
        route_result res =
            sharded_route(inst, solver, eopt, collapse_groups, k, ctx);
        res.resolved_shards = k;  // auto counts become reproducible inputs
        return res;
    }
    topo::clock_tree t;
    auto roots = make_leaves(inst, t, collapse_groups);
    route_result res = finish_route(inst, solver, eopt, std::move(t),
                                    std::move(roots), ctx);
    res.resolved_shards = 1;
    return res;
}

// The four built-in strategies (registered by strategy_registry's ctor).
route_result strategy_zst_dme(const routing_request&, routing_context&);
route_result strategy_ext_bst(const routing_request&, routing_context&);
route_result strategy_ast_dme(const routing_request&, routing_context&);
route_result strategy_separate_stitch(const routing_request&,
                                      routing_context&);

}  // namespace astclk::core::detail
