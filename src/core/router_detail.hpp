#pragma once

/// \file router_detail.hpp
/// Internal plumbing shared by the router entry points: leaf construction
/// (optionally collapsing all groups into one), the engine run, embedding
/// and timing.  Not part of the public API.

#include "core/router.hpp"

#include <chrono>

namespace astclk::core::detail {

/// Create one leaf per sink.  When `collapse_groups` is set every leaf is
/// booked under synthetic group 0, which turns the associative problem into
/// a conventional single-group one (ZST / EXT-BST baselines).
inline std::vector<topo::node_id> make_leaves(const topo::instance& inst,
                                              topo::clock_tree& t,
                                              bool collapse_groups) {
    std::vector<topo::node_id> roots;
    roots.reserve(inst.sinks.size());
    for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
        const topo::node_id id =
            t.add_leaf(inst, static_cast<std::int32_t>(i));
        if (collapse_groups)
            t.node(id).delays = topo::group_delays::single(0);
        roots.push_back(id);
    }
    return roots;
}

/// Reduce the given roots, embed, and fill in the result bookkeeping.
inline route_result finish_route(const topo::instance& inst,
                                 const merge_solver& solver,
                                 const engine_options& eopt,
                                 topo::clock_tree t,
                                 std::vector<topo::node_id> roots,
                                 std::chrono::steady_clock::time_point start) {
    route_result res;
    bottom_up_engine engine(solver, eopt);
    const topo::node_id root = engine.reduce(t, std::move(roots), &res.stats);
    t.set_root(root);
    res.embed = embed_tree(t, inst.source);
    res.tree = std::move(t);
    res.wirelength = res.tree.total_wirelength();
    res.cpu_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return res;
}

}  // namespace astclk::core::detail
