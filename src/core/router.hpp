#pragma once

/// \file router.hpp
/// Shared result type and options for the four routers built on the merge
/// engine:
///
///  * `route_zst_dme`       — classic zero-skew DME over all sinks
///                            (greedy-DME flavour; groups ignored);
///  * `route_ext_bst`       — greedy bounded-skew tree with a *global*
///                            bound over all sinks: the paper's EXT-BST
///                            baseline (10 ps in the tables);
///  * `route_ast_dme`       — the paper's contribution: per-group skew
///                            constraints only (zero by default, bounded
///                            via skew_spec), full cross-group freedom;
///  * `route_separate_stitch` — the prior work's strategy [12]: a separate
///                            zero-skew tree per group, stitched together
///                            afterwards (the strawman of Fig. 2).
///
/// All four are thin wrappers over the routing-service layer (strategy.hpp:
/// `routing_request` → `route()` dispatch through the strategy registry);
/// batch execution and state sharing live in route_service.hpp /
/// route_context.hpp (DESIGN.md §6-§7).

#include "core/embedder.hpp"
#include "core/engine.hpp"
#include "core/merge_solver.hpp"
#include "topo/instance.hpp"
#include "topo/tree.hpp"

#include <string>

namespace astclk::core {

/// Rung of the graceful-degradation ladder (DESIGN.md §10) a degraded
/// result was produced under.  The numbered rungs trade fidelity for
/// wall-clock in order; `salvaged` marks partial-result recovery of an
/// interrupted sharded reduce rather than a ladder rerun.
enum class degrade_rung : int {
    none = 0,
    no_speculation = 1,   ///< rung 1: speculative pipeline disabled
    coarse_shards = 2,    ///< rung 2: finer auto-shard partition (coarser
                          ///< solution: more stitch seams, less fidelity)
    greedy_fallback = 3,  ///< rung 3: greedy BST under the spec's tightest
                          ///< bound (collapse-groups EXT-BST route)
    salvaged = 4,         ///< completed shard sub-trees recovered, the rest
                          ///< greedily completed, then stitched
};

[[nodiscard]] constexpr const char* to_string(degrade_rung r) noexcept {
    switch (r) {
        case degrade_rung::none: return "none";
        case degrade_rung::no_speculation: return "no_speculation";
        case degrade_rung::coarse_shards: return "coarse_shards";
        case degrade_rung::greedy_fallback: return "greedy_fallback";
        case degrade_rung::salvaged: return "salvaged";
    }
    return "?";
}

/// Why and how a degraded result was produced (route_result.degradation;
/// rung == none on full-fidelity results).
struct degradation_report {
    degrade_rung rung = degrade_rung::none;
    std::string reason;       ///< what pushed the run down the ladder
    int salvaged_shards = 0;  ///< completed sub-trees recovered (salvage)
    int greedy_shards = 0;    ///< unfinished shards completed greedily
    bool verified = false;    ///< independent Elmore re-verification passed
};

struct route_result {
    /// Terminal disposition (executor.hpp): `ok` and `degraded` carry a
    /// valid tree (`degraded` under a stepped-down configuration — see
    /// `degradation`); any other status means the tree below is
    /// empty/partial and must not be consumed.  Replaces the former bare
    /// error-string signaling — callers branch on the kind instead of
    /// string-matching.
    route_status status = route_status::ok;
    /// Human detail for non-ok statuses ("cancelled", "deadline exceeded",
    /// or the exception message of an errored request); empty when ok.
    std::string status_message;
    topo::clock_tree tree;
    engine_stats stats;
    embed_report embed;
    double wirelength = 0.0;   ///< total electrical wirelength (paper metric)
    /// Wall time of the strategy body, measured uniformly by the service
    /// dispatch (strategy.hpp route()) for direct and batched calls alike.
    double cpu_seconds = 0.0;
    /// Executor concurrency available to the run (1 = sequential).
    int threads_used = 1;
    bool used_ledger_fallback = false;  ///< AST auto mode: windowed attempt
                                        ///< violated a bound, exact rerun used
    /// Service attempt that produced this result (1 = first try; >1 means
    /// earlier attempts hit retryable faults and were re-enqueued).
    int attempts = 1;
    /// Shard count the run actually resolved to (1 = monolithic), recording
    /// the automatic choice (`engine.shards == 0`) so any run can be
    /// reproduced by pinning `engine.shards` to this value.
    int resolved_shards = 0;
    /// Degradation ladder bookkeeping; `degradation.rung == none` unless
    /// `status == degraded`.
    degradation_report degradation;

    [[nodiscard]] bool ok() const { return status == route_status::ok; }
    /// True when the tree is valid and consumable: full-fidelity `ok` or a
    /// verified `degraded` result (see `degradation`).
    [[nodiscard]] bool usable() const {
        return status == route_status::ok || status == route_status::degraded;
    }
};

/// Strategy for AST-DME (see DESIGN.md §5):
///  * `windowed` — the paper's literal algorithm (Fig. 6 cases): per-merge
///    feasibility windows, interior snaking for conflicts (Eqs. 5.1-5.3),
///    infeasible pairs rejected.  Exploits inter-group freedom merge by
///    merge; rare irreparable endgame conflicts surface as violations.
///  * `soft_ledger` — windows plus the offset ledger as *intent*: merges
///    follow the globally consistent offset when it is free and drift only
///    in lieu of snake wire, which concentrates (and mostly eliminates)
///    conflicts.
///  * `exact_ledger` — globally consistent inter-group offsets throughout:
///    zero intra-group skew guaranteed, conflicts impossible, but free
///    offsets commit early (conservative wirelength).
///  * `automatic` — soft_ledger first; if a forced merge left any residual
///    violation, rerun with the exact ledger (sound *and* usually cheap).
enum class ast_mode {
    automatic,
    windowed,
    soft_ledger,
    exact_ledger,
};

struct router_options {
    rc::delay_model model = rc::delay_model::elmore();
    /// Engine knobs, forwarded to every reduce run of the route: merge
    /// order, true-cost re-keying, the nearest-neighbour backend
    /// (`engine.backend` — grid by default, `nn_backend::linear` for the
    /// exact-scan verification backend) and the speculative pipeline
    /// (`engine.speculate_k`, `engine.plan_cache` — top-k plan() overlap
    /// and the cross-step plan memo, DESIGN.md §3).  Every configuration
    /// produces identical trees; the knobs move wall-clock only.
    engine_options engine;
    /// AST only: ordering bias (layout units) deferring merges that would
    /// bind two inter-group offset components (see merge_solver).
    double bind_deferral_bias = 0.0;
};

/// Zero-skew tree over all sinks, groups ignored.
route_result route_zst_dme(const topo::instance& inst,
                           const router_options& opt = {});

/// Bounded-skew tree over all sinks with a single global bound (seconds);
/// `route_ext_bst(inst, 10e-12)` reproduces the paper's baseline rows.
route_result route_ext_bst(const topo::instance& inst, double global_bound,
                           const router_options& opt = {});

/// AST-DME with per-group bounds (default: zero intra-group skew).
/// `mode` selects the conflict strategy; `exact_ledger` requires an
/// all-zero spec and falls back to `windowed` otherwise.
route_result route_ast_dme(const topo::instance& inst,
                           const skew_spec& spec = skew_spec::zero(),
                           const router_options& opt = {},
                           ast_mode mode = ast_mode::automatic);

/// Separate zero-skew tree per group, then greedy stitching of the group
/// roots (no inter-group constraints during stitching).
route_result route_separate_stitch(const topo::instance& inst,
                                   const router_options& opt = {});

}  // namespace astclk::core
