#pragma once

/// \file stitch.hpp
/// Phase-2 associative stitching: joining independently built subtrees.
///
/// The paper's associative machinery (offset ledgers, bounded-skew merge
/// windows) exists precisely so subtrees constructed in isolation can be
/// merged afterwards without destroying the skew budget — every stitch is
/// an ordinary engine merge whose windows account for the skews frozen
/// inside the operands.  Two callers share this entry point:
///
///  * the legacy separate-stitch strategy (separate_stitch.cpp), which
///    builds one zero-skew tree per *group* and stitches the group roots
///    (the prior work's construction, Fig. 2's strawman);
///  * the sharded reduction (shard.hpp, DESIGN.md §4), which sub-reduces
///    spatial *shards* in parallel and stitches the shard roots.

#include "core/engine.hpp"

namespace astclk::core {

/// Merge the given subtree roots of `t` down to a single root with the
/// bottom-up engine and return it.  Thin by design — the associative
/// heavy lifting lives in the solver's merge windows — but the one place
/// both stitch callers go through, so the phase-2 contract (stats
/// accumulate into `*stats`, scratch is optional, the engine options'
/// executor/cancel apply to the stitch) is implemented exactly once.
/// `opt.shards` is ignored here: a stitch is always one front.
topo::node_id stitch_roots(const merge_solver& solver,
                           const engine_options& opt, topo::clock_tree& t,
                           std::vector<topo::node_id> roots,
                           engine_stats* stats = nullptr,
                           engine_scratch* scratch = nullptr);

}  // namespace astclk::core
