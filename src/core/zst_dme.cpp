#include "core/router.hpp"
#include "core/router_detail.hpp"

namespace astclk::core {

namespace detail {

route_result strategy_zst_dme(const routing_request& req,
                              routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    topo::clock_tree t;
    auto roots = make_leaves(inst, t, /*collapse_groups=*/true);
    merge_solver solver(req.options.model, skew_spec::zero());
    return finish_route(inst, solver, req.options.engine, std::move(t),
                        std::move(roots), ctx);
}

}  // namespace detail

route_result route_zst_dme(const topo::instance& inst,
                           const router_options& opt) {
    routing_request req;
    req.instance = &inst;
    req.options = opt;
    req.strategy = strategy_id::zst_dme;
    return route(req);
}

}  // namespace astclk::core
