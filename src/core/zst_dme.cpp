#include "core/router.hpp"
#include "core/router_detail.hpp"

namespace astclk::core {

namespace detail {

route_result strategy_zst_dme(const routing_request& req,
                              routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    merge_solver solver(req.options.model, skew_spec::zero());
    return reduce_route(inst, solver, req.options.engine,
                        /*collapse_groups=*/true, ctx);
}

}  // namespace detail

route_result route_zst_dme(const topo::instance& inst,
                           const router_options& opt) {
    routing_request req;
    req.instance = &inst;
    req.options = opt;
    req.strategy = strategy_id::zst_dme;
    return route(req);
}

}  // namespace astclk::core
