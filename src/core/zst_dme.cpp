#include "core/router.hpp"
#include "core/router_detail.hpp"

namespace astclk::core {

route_result route_zst_dme(const topo::instance& inst,
                           const router_options& opt) {
    const auto start = std::chrono::steady_clock::now();
    topo::clock_tree t;
    auto roots = detail::make_leaves(inst, t, /*collapse_groups=*/true);
    merge_solver solver(opt.model, skew_spec::zero());
    return detail::finish_route(inst, solver, opt.engine, std::move(t),
                                std::move(roots), start);
}

}  // namespace astclk::core
