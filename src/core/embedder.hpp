#pragma once

/// \file embedder.hpp
/// Top-down embedding (second DME phase, Ch. V-B).
///
/// The bottom-up phase leaves every node with a merging arc (or region, for
/// snaked merges) and *electrical* edge lengths.  The top-down pass fixes
/// exact locations: the final root goes to the point of its arc nearest the
/// clock source, then every child goes to the point of its own arc nearest
/// its parent's location.  By construction the physical (Manhattan) length
/// of each edge never exceeds its electrical length; the difference is
/// realised as wire snaking and is reported for verification.

#include "geom/point.hpp"
#include "topo/tree.hpp"

namespace astclk::core {

struct embed_report {
    double total_physical = 0.0;  ///< sum of Manhattan edge lengths
    double total_snake = 0.0;     ///< electrical minus physical, summed
    double worst_excess = 0.0;    ///< max(physical - electrical); ~0 expected
    double source_edge = 0.0;     ///< source-to-root connection length
};

/// Embed every node of `t` (sets node.placed / node.is_placed and the
/// tree's source edge).  Requires a routed tree with a root.
embed_report embed_tree(topo::clock_tree& t, const geom::point& source);

}  // namespace astclk::core
