#pragma once

/// \file dary_heap.hpp
/// Implicit d-ary heap primitives over caller-owned vectors — the engine's
/// arena-friendly replacement for std::push_heap / std::pop_heap
/// (ROADMAP "Arena-friendly heaps").
///
/// Why d-ary: the selection and radius heaps dominate the engine's
/// comparison count at large n.  A 4-ary layout halves the tree depth, so
/// sift-up (the common operation — every push) touches half the levels,
/// and the four children of a node share one cache line of sel_entry-sized
/// elements, cutting the comparison constant without changing the
/// algorithm.
///
/// Semantics match the std heap algorithms exactly: the comparator is a
/// strict weak "less" and the *maximum* under it sits at `h.front()`
/// (a min-heap is expressed by inverting the comparator, exactly as with
/// std::push_heap).  Pop order under a *total* order comparator is
/// therefore identical to a binary heap's — both drain the multiset in
/// sorted order — which is what lets the engine swap arities while keeping
/// its seed-exact (key, a, b) tie-break drain bit-identical
/// (tests/test_dary_heap.cpp asserts the equivalence against
/// std::push_heap/pop_heap).
///
/// The functions deliberately operate on plain std::vector storage owned
/// by the caller (engine_scratch's reusable buffers): no container
/// adaptor, no allocation beyond the vector's own growth, so heap storage
/// is pooled across engine runs like every other scratch buffer.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace astclk::core {

/// Heap arity used by the merge engine's selection and radius heaps.
inline constexpr std::size_t kheap_arity = 4;

/// Push `e` onto the d-ary heap in `h` (hole-based sift-up: one move per
/// level instead of a swap).
template <class Cmp, std::size_t D = kheap_arity, class T>
void dary_push(std::vector<T>& h, const T& e) {
    static_assert(D >= 2, "a heap needs at least two children per node");
    const Cmp less{};
    h.push_back(e);
    std::size_t i = h.size() - 1;
    T x = std::move(h[i]);
    while (i > 0) {
        const std::size_t parent = (i - 1) / D;
        if (!less(h[parent], x)) break;
        h[i] = std::move(h[parent]);
        i = parent;
    }
    h[i] = std::move(x);
}

/// Remove the top element `h.front()` (the comparator-maximum) from the
/// d-ary heap in `h`.
template <class Cmp, std::size_t D = kheap_arity, class T>
void dary_pop(std::vector<T>& h) {
    static_assert(D >= 2, "a heap needs at least two children per node");
    const Cmp less{};
    const std::size_t n = h.size() - 1;
    T x = std::move(h.back());
    h.pop_back();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = i * D + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + D, n);
        for (std::size_t c = first + 1; c < last; ++c)
            if (less(h[best], h[c])) best = c;
        if (!less(x, h[best])) break;
        h[i] = std::move(h[best]);
        i = best;
    }
    h[i] = std::move(x);
}

}  // namespace astclk::core
