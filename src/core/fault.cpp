#include "core/executor.hpp"

#include <algorithm>
#include <thread>

namespace astclk::core {

const char* to_string(fault_site s) noexcept {
    switch (s) {
        case fault_site::dispatch: return "dispatch";
        case fault_site::selection: return "selection";
        case fault_site::round: return "round";
        case fault_site::shard: return "shard";
    }
    return "?";
}

const char* to_string(fault_kind k) noexcept {
    switch (k) {
        case fault_kind::none: return "none";
        case fault_kind::transient_solver: return "transient_solver";
        case fault_kind::alloc_failure: return "alloc_failure";
        case fault_kind::worker_stall: return "worker_stall";
        case fault_kind::poisoned_shard: return "poisoned_shard";
    }
    return "?";
}

namespace {

/// splitmix64 — the standard 64-bit mixer: tiny, stateless between calls,
/// and fully deterministic, which is all the seeded schedule needs.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

// The mutex makes fault_plan immovable, so the factory builds the event
// list first and constructs the plan in the return expression (guaranteed
// elision).
fault_plan fault_plan::seeded(std::uint64_t seed, int count,
                              std::uint64_t horizon) {
    std::vector<event> events;
    std::uint64_t state = seed;
    const std::uint64_t span = std::max<std::uint64_t>(horizon, 1);
    for (int i = 0; i < std::max(count, 0); ++i) {
        const auto site = static_cast<fault_site>(splitmix64(state) % 4);
        const auto kind = static_cast<fault_kind>(
            1 + splitmix64(state) % 4);  // skip fault_kind::none
        const std::uint64_t index = 1 + splitmix64(state) % span;
        events.push_back({site, index, kind, false});
    }
    return fault_plan(std::move(events));
}

void fault_plan::schedule(fault_site site, std::uint64_t index,
                          fault_kind kind) {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back({site, index, kind, false});
}

bool fault_plan::armed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return std::any_of(events_.begin(), events_.end(),
                       [](const event& e) { return !e.consumed; });
}

int fault_plan::fired() const {
    std::lock_guard<std::mutex> lk(mu_);
    return fired_;
}

std::vector<fault_plan::event> fault_plan::events() const {
    std::lock_guard<std::mutex> lk(mu_);
    return events_;
}

fault_kind fault_plan::fire(fault_site site, std::uint64_t index) {
    std::lock_guard<std::mutex> lk(mu_);
    if (index == 0) index = ++occurrences_[static_cast<int>(site)];
    for (event& e : events_) {
        if (e.consumed || e.site != site || e.index != index) continue;
        e.consumed = true;  // one-shot: a retried run sails past it
        ++fired_;
        return e.kind;
    }
    return fault_kind::none;
}

route_status cancel_token::poll_at(fault_site site,
                                   std::uint64_t index) const {
    if (probe_ != nullptr) {
        ++probe_->polls;
        if (probe_->on_poll) probe_->on_poll(probe_->polls);
    }
    route_status rs = state();
    if (rs != route_status::ok || faults_ == nullptr) return rs;
    switch (faults_->fire(site, index)) {
        case fault_kind::none:
            break;
        case fault_kind::transient_solver:
        case fault_kind::alloc_failure:
            return route_status::transient_fault;
        case fault_kind::poisoned_shard:
            return route_status::data_fault;
        case fault_kind::worker_stall:
            // Burn the rest of the deadline budget right here: the run
            // terminates (or salvages) at exactly this checkpoint, which
            // is what makes stall outcomes reproducible.  Without a
            // deadline the stall is pure latency — outcome unchanged.
            if (deadline_ != no_deadline())
                std::this_thread::sleep_until(deadline_);
            else
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            rs = state();
            break;
    }
    return rs;
}

}  // namespace astclk::core
