#include "core/router.hpp"
#include "core/router_detail.hpp"

namespace astclk::core {

namespace detail {

route_result strategy_ext_bst(const routing_request& req,
                              routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    topo::clock_tree t;
    auto roots = make_leaves(inst, t, /*collapse_groups=*/true);
    // Groups are collapsed to synthetic group 0, so the request's
    // default_bound is the single global bound of the EXT-BST baseline.
    merge_solver solver(req.options.model,
                        skew_spec::uniform(req.spec.default_bound));
    return finish_route(inst, solver, req.options.engine, std::move(t),
                        std::move(roots), ctx);
}

}  // namespace detail

route_result route_ext_bst(const topo::instance& inst, double global_bound,
                           const router_options& opt) {
    routing_request req;
    req.instance = &inst;
    req.spec = skew_spec::uniform(global_bound);
    req.options = opt;
    req.strategy = strategy_id::ext_bst;
    return route(req);
}

}  // namespace astclk::core
