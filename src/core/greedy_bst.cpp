#include "core/router.hpp"
#include "core/router_detail.hpp"

namespace astclk::core {

namespace detail {

route_result strategy_ext_bst(const routing_request& req,
                              routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    // Groups are collapsed to synthetic group 0, so the request's
    // default_bound is the single global bound of the EXT-BST baseline.
    merge_solver solver(req.options.model,
                        skew_spec::uniform(req.spec.default_bound));
    return reduce_route(inst, solver, req.options.engine,
                        /*collapse_groups=*/true, ctx);
}

}  // namespace detail

route_result route_ext_bst(const topo::instance& inst, double global_bound,
                           const router_options& opt) {
    routing_request req;
    req.instance = &inst;
    req.spec = skew_spec::uniform(global_bound);
    req.options = opt;
    req.strategy = strategy_id::ext_bst;
    return route(req);
}

}  // namespace astclk::core
