#include "core/embedder.hpp"

#include <cassert>
#include <vector>

namespace astclk::core {

embed_report embed_tree(topo::clock_tree& t, const geom::point& source) {
    embed_report rep;
    const topo::node_id root = t.root();
    assert(root != topo::knull_node);

    {
        topo::tree_node& rn = t.node(root);
        const geom::tilted_point sp = source.to_tilted();
        const geom::tilted_point rp = rn.arc.nearest(sp);
        rn.placed = rp.to_real();
        rn.is_placed = true;
        rep.source_edge = geom::chebyshev(sp, rp);
        t.set_source_edge(rep.source_edge);
    }

    std::vector<topo::node_id> stack{root};
    while (!stack.empty()) {
        const topo::node_id cur = stack.back();
        stack.pop_back();
        const topo::tree_node& n = t.node(cur);
        if (n.is_leaf()) continue;
        const geom::tilted_point pp = n.placed.to_tilted();
        const auto place_child = [&](topo::node_id child, double electrical) {
            topo::tree_node& cn = t.node(child);
            const geom::tilted_point cp = cn.arc.nearest(pp);
            cn.placed = cp.to_real();
            cn.is_placed = true;
            const double physical = geom::chebyshev(pp, cp);
            rep.total_physical += physical;
            rep.total_snake += std::max(0.0, electrical - physical);
            rep.worst_excess =
                std::max(rep.worst_excess, physical - electrical);
            stack.push_back(child);
        };
        place_child(n.left, n.edge_left);
        place_child(n.right, n.edge_right);
    }
    return rep;
}

}  // namespace astclk::core
