#pragma once

/// \file plan_kernels.hpp
/// Batched structure-of-arrays kernels for the merge-plan hot path
/// (DESIGN.md §11).
///
/// After the selection, service and sharding layers went sub-quadratic,
/// the per-pair `plan()` solve and the nearest-neighbour distance scans
/// dominate the profile — and both are already *dispatched in batches*
/// (speculative top-k fan-out, multi-merge round planning, grid ring
/// expansion), which is exactly the shape data-parallel kernels want.
/// This layer solves 4-8 independent merge plans per call from one
/// instruction stream:
///
///  1. **Distance lower bounds** (`batch_arc_distance`): the tilted-space
///     L-infinity gap of many candidate arc boxes against one query box,
///     over a cache-dense `packed_arc` mirror (32 bytes per arc vs the
///     ~200-byte `tree_node` stride) — consumed by `grid_index` ring
///     expansion and the engine's post-commit fold-in.
///  2. **Skew-feasibility / window checks**: the per-group delay windows
///     of each lane intersected by an allocation-free two-pointer walk
///     over both sorted delay maps (same ascending order, same
///     intersection sequence as the scalar `shared_with` +
///     `compute_window` pair).
///  3. **Arc-box merges**: the TRR expand + intersect of every lane's
///     merging segment as plain SoA interval arithmetic.
///
/// The split search between (2) and (3) — closed-form `split_for_target`
/// bracketing plus the 80-iteration ternary search of the balance
/// heuristic — runs masked: every lane computes each iteration, updates
/// are gated on that lane's own `(te - ts) > eps` condition, so a
/// converged lane freezes exactly where the scalar early-exit would have
/// left it.
///
/// **Bit-identity contract.**  For every lane the fast path evaluates the
/// *same* floating-point expressions, in the same order, as
/// `merge_solver::plan` (the interval/tilted_rect/delay_model primitives
/// are inline header functions, so both paths compile the same
/// arithmetic).  The fast path engages only when the lane's first window
/// intersection is non-empty in `windowed` mode — precisely the case
/// where the scalar solver breaks out of its conflict loop without
/// touching the working state, so reading the node delay maps in place
/// (no copies) is exact.  Every other lane — unsatisfiable windows
/// (interior-snake repair or rejection), ledger-backed modes — falls
/// back to the scalar `plan()` verbatim.  Trees and engine statistics
/// are therefore bit-identical to `plan_kernel::scalar` across NN
/// backends, thread counts, speculate_k and shard counts; only
/// wall-clock and the kernel counters (`engine_stats::batch_planned`,
/// `kernel_fallbacks`, `nn_scratch_reuses`) move.
///
/// The loops are plain portable SoA code — no intrinsics; the
/// autovectorizer does what the target allows (see the `ASTCLK_NATIVE`
/// CMake option for `-march=native` builds).

#include "core/merge_solver.hpp"
#include "core/nn_index.hpp"
#include "topo/tree.hpp"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace astclk::core {

/// Merge-plan solve kernel selection (engine_options::kernel).
enum class plan_kernel {
    scalar,  ///< per-pair merge_solver::plan (the reference path)
    batch,   ///< SoA batch kernels with scalar fallback (this file)
};

/// The dispatch grain of the batch layer: callers (the engine's
/// speculative drain, the shard planner) hand work to the executor in
/// chunks of this many plans.  Eight double lanes fill two AVX2 (or one
/// AVX-512) vector registers; the remainder loop handles short batches
/// exactly.
inline constexpr std::size_t kplan_lanes = 8;

/// How many plans one solve chunk carries internally — four dispatch
/// grains fused through the masked ternary search.  Once the ternary's
/// conditional updates are branch-free selects the loop is bound by the
/// latency of each lane's serial iteration chain (the division in the
/// two probe points), not by mispredicts, and eight chains leave most
/// of the pipeline idle; 32 independent chains cover the chain latency.
/// Purely a throughput knob: lane math never reads across lanes, so any
/// grouping of the same pairs yields bit-identical plans.
inline constexpr std::size_t kplan_width = 4 * kplan_lanes;

/// Cache-dense mirror of one arc box: the four tilted-space endpoints and
/// nothing else.  An array of these indexed by node id gives the distance
/// kernel a 32-byte gather stride instead of pulling whole tree_nodes
/// (delay maps included) through the cache per candidate.
struct packed_arc {
    double u_lo = 0.0, u_hi = 0.0, v_lo = 0.0, v_hi = 0.0;

    static packed_arc of(const geom::tilted_rect& r) {
        return {r.u().lo, r.u().hi, r.v().lo, r.v().hi};
    }
};

/// Reusable gather buffers for batched NN queries (candidate ids and
/// their distances), owned by engine_scratch so the hot ring-expansion
/// path stops allocating per query.  `reuses` counts the queries that
/// found warm capacity (engine_stats::nn_scratch_reuses).
struct nn_query_scratch {
    std::vector<topo::node_id> ids;
    std::vector<double> dist;
    long long reuses = 0;

    /// Start-of-run reset: drops the counter, keeps the capacity (that
    /// capacity carrying over between runs is the whole point).
    void reset() { reuses = 0; }
};

/// Kernel 1: tilted-space distance lower bounds of `n` candidate arcs
/// (gathered from `arcs` by id) against the query box `q`.
///
/// The per-axis gap is computed branchlessly as
/// `max(0, max(o.lo - hi, lo - o.hi))`, which is bit-identical to the
/// branchy `interval::gap` for every pair of non-empty intervals: when
/// the intervals overlap both differences are <= 0 and the result is
/// +0.0 (max(+0.0, -x) picks the first operand), and when they are
/// disjoint exactly one difference is positive and equals the branchy
/// result.  The gap is symmetric in the same way (the two branches swap),
/// so query-vs-candidate and candidate-vs-query orientations agree
/// bitwise.
inline void batch_arc_distance(const packed_arc* arcs,
                               const topo::node_id* ids, std::size_t n,
                               const packed_arc& q, double* out) {
    const double qul = q.u_lo, quh = q.u_hi;
    const double qvl = q.v_lo, qvh = q.v_hi;
    for (std::size_t k = 0; k < n; ++k) {
        const packed_arc& a = arcs[static_cast<std::size_t>(ids[k])];
        const double gu =
            std::max(0.0, std::max(a.u_lo - quh, qul - a.u_hi));
        const double gv =
            std::max(0.0, std::max(a.v_lo - qvh, qvl - a.v_hi));
        out[k] = std::max(gu, gv);
    }
}

/// Fused variant of kernel 1 for the ring expansion's argmin: the same
/// branchless gap per candidate, folded straight into the running
/// lexicographic-min `(best_d, best)` instead of materialising a distance
/// array the caller immediately reduces.  `center` is skipped (a query
/// never partners itself) and `banned` is consulted only for candidates
/// that would improve the running best — a banned candidate never updates
/// the best either way, so the fused fold computes exactly the min the
/// two-pass scheme does, one pass earlier.  The min over a candidate
/// multiset is visit-order independent, so callers may present candidates
/// in any order (the slab gather does).
template <class Banned>
inline void batch_arc_nearest(const packed_arc* arcs,
                              const topo::node_id* ids, std::size_t n,
                              const packed_arc& q, topo::node_id center,
                              Banned banned, topo::node_id& best,
                              double& best_d) {
    const double qul = q.u_lo, quh = q.u_hi;
    const double qvl = q.v_lo, qvh = q.v_hi;
    for (std::size_t k = 0; k < n; ++k) {
        const topo::node_id other = ids[k];
        if (other == center) continue;
        const packed_arc& a = arcs[static_cast<std::size_t>(other)];
        const double gu =
            std::max(0.0, std::max(a.u_lo - quh, qul - a.u_hi));
        const double gv =
            std::max(0.0, std::max(a.v_lo - qvh, qvl - a.v_hi));
        const double d = std::max(gu, gv);
        if (d < best_d || (d == best_d && other < best)) {
            if (banned(pair_key(center, other))) continue;
            best_d = d;
            best = other;
        }
    }
}

/// Fused variant of kernel 1 for the post-commit fold-in: gap per
/// candidate, handed to `fn(id, d)` in place instead of a distance
/// array.  Same arithmetic, same candidate sequence as
/// batch_arc_distance over the same ids.
template <class Fn>
inline void batch_arc_for_each(const packed_arc* arcs,
                               const topo::node_id* ids, std::size_t n,
                               const packed_arc& q, Fn fn) {
    const double qul = q.u_lo, quh = q.u_hi;
    const double qvl = q.v_lo, qvh = q.v_hi;
    for (std::size_t k = 0; k < n; ++k) {
        const packed_arc& a = arcs[static_cast<std::size_t>(ids[k])];
        const double gu =
            std::max(0.0, std::max(a.u_lo - quh, qul - a.u_hi));
        const double gv =
            std::max(0.0, std::max(a.v_lo - qvh, qvl - a.v_hi));
        fn(ids[k], std::max(gu, gv));
    }
}

/// Kernels 2+3: solve the `n` merge plans `pairs[i] = (a, b)` (alpha
/// oriented to `a`, exactly like `solver.plan(t, a, b)`) in chunks of
/// `kplan_lanes`, writing each result — possibly nullopt for a rejected
/// pair — into `out[i]`.  Lanes whose merge needs the general machinery
/// (non-`windowed` solver modes, or a first window intersection that is
/// empty and so needs interior-snake repair / rejection) are bounced to
/// the scalar `solver.plan` verbatim; the return value is the number of
/// such fallback lanes (engine_stats::kernel_fallbacks).
///
/// Lane math is fully per-plan independent — no cross-lane reads — so a
/// batch of n is bit-identical to n scalar solves regardless of how the
/// caller groups the pairs into batches.
int solve_plan_batch(const merge_solver& solver, const topo::clock_tree& t,
                     const std::pair<topo::node_id, topo::node_id>* pairs,
                     std::size_t n, std::optional<merge_plan>* out);

}  // namespace astclk::core
