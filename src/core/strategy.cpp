#include "core/strategy.hpp"

#include "core/route_context.hpp"
#include "core/router_detail.hpp"

#include <chrono>
#include <stdexcept>

namespace astclk::core {

strategy_registry& strategy_registry::global() {
    static strategy_registry reg;
    return reg;
}

strategy_registry::strategy_registry() {
    // Built-ins are bound here (not via per-TU static initialisers) so a
    // static-library link can never silently drop a router's registration.
    entries_.push_back(
        {strategy_id::zst_dme, "zst_dme", "zst", &detail::strategy_zst_dme});
    entries_.push_back(
        {strategy_id::ext_bst, "ext_bst", "bst", &detail::strategy_ext_bst});
    entries_.push_back(
        {strategy_id::ast_dme, "ast_dme", "ast", &detail::strategy_ast_dme});
    entries_.push_back({strategy_id::separate_stitch, "separate_stitch",
                        "sep", &detail::strategy_separate_stitch});
}

void strategy_registry::add(strategy_id id, std::string name,
                            std::string alias, strategy_fn fn) {
    std::lock_guard<std::mutex> lk(mu_);
    for (entry& e : entries_) {
        if (e.id == id) {
            e.name = std::move(name);
            e.alias = std::move(alias);
            e.fn = fn;
            return;
        }
    }
    entries_.push_back({id, std::move(name), std::move(alias), fn});
}

strategy_fn strategy_registry::find(strategy_id id) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const entry& e : entries_)
        if (e.id == id) return e.fn;
    throw std::out_of_range("strategy_registry: unregistered strategy id " +
                            std::to_string(static_cast<int>(id)));
}

std::optional<strategy_id> strategy_registry::id_of(
    const std::string& name_or_alias) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const entry& e : entries_)
        if (e.name == name_or_alias || e.alias == name_or_alias) return e.id;
    return std::nullopt;
}

std::string strategy_registry::name_of(strategy_id id) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const entry& e : entries_)
        if (e.id == id) return e.name;
    return "?";
}

std::vector<std::string> strategy_registry::names() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const entry& e : entries_) out.push_back(e.name);
    return out;
}

route_result route(const routing_request& req, routing_context& ctx) {
    if (req.instance == nullptr)
        throw std::invalid_argument("routing_request: instance is null");
    const strategy_fn fn = strategy_registry::global().find(req.strategy);
    const auto t0 = std::chrono::steady_clock::now();
    route_result res;
    const cancel_token& tok = req.options.engine.cancel;
    // Checkpoint zero: a token that already fired (cancelled before claim,
    // zero/expired deadline) reports its status without entering the
    // strategy — no leaves, no scratch lease, no reduce.  This is also the
    // `dispatch` fault site: index 0 asks the plan for its per-site
    // occurrence counter, so scheduled dispatch faults index by attempt.
    const route_status pre = tok.armed()
                                 ? tok.poll_at(fault_site::dispatch, 0)
                                 : route_status::ok;
    if (pre != route_status::ok) {
        res.status = pre;
        res.status_message = status_message_for(pre);
    } else {
        try {
            res = fn(req, ctx);
        } catch (const route_interrupt& stop) {
            // A mid-reduce checkpoint fired: the partial tree died with the
            // unwind (scratch lease and instance borrow released on the
            // way); the status and the work burned so far survive.
            res = route_result{};
            res.status = stop.status();
            res.status_message = stop.what();
            res.stats = stop.stats();
        }
    }
    res.cpu_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    res.threads_used = req.options.engine.executor != nullptr
                           ? req.options.engine.executor->concurrency()
                           : 1;
    return res;
}

route_result route(const routing_request& req) {
    routing_context ctx(req.options.model);
    return route(req, ctx);
}

}  // namespace astclk::core
