#include "core/plan_kernels.hpp"

#include "rc/solve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace astclk::core {

namespace {

// Kept in sync with merge_solver.cpp (the private constants of the scalar
// solver): the fast path must evaluate the very same guards.
constexpr double klen_eps = 1e-9;    // layout units; die is ~1e5 units
constexpr double kdelay_eps = 1e-21; // seconds; far below reporting

/// Verbatim copy of the scalar solver's per-group window (merge_solver.cpp
/// group_window): merged spread <= bound  <=>
/// D in [a.hi - b.lo - bound, bound + a.lo - b.hi].  The expression order
/// matters — FP addition is not associative, and the fast path must
/// produce the scalar window bit-for-bit.
geom::interval group_window(const geom::interval& a, const geom::interval& b,
                            double bound) {
    return {a.hi - b.lo - bound, bound + a.lo - b.hi};
}

/// Branch-free select: `c ? a : b` as a bitwise blend of the IEEE-754
/// representations.  Selecting between two already-computed doubles is
/// exact by construction — no arithmetic touches either value — so it is
/// bit-identical to the ternary operator for every input including NaN
/// and signed zero.  The point is codegen: a conditional FP *store*
/// (`x[j] = c ? v : x[j]`) compiles to a compare-and-branch whose
/// direction is data-dependent and near 50/50 in a ternary search, and
/// the mispredict penalty dominates the ~20 cheap FP ops per lane.  The
/// integer mask form lowers to setcc/neg/and/xor — straight-line code
/// with no branch to predict.
inline double select(bool c, double a, double b) {
    std::uint64_t ua;
    std::uint64_t ub;
    std::memcpy(&ua, &a, sizeof ua);
    std::memcpy(&ub, &b, sizeof ub);
    const std::uint64_t m = c ? ~std::uint64_t{0} : std::uint64_t{0};
    const std::uint64_t r = (ua & m) | (ub & ~m);
    double out;
    std::memcpy(&out, &r, sizeof out);
    return out;
}

/// The masked SoA ternary iteration (the balance heuristic of
/// place_split), extracted so the lane loop is a branch-free constant
/// trip count: the model-kind branch of edge_delay is hoisted to a
/// template parameter, inactive and padding lanes are gated per-lane
/// with bitwise *selects* (no control flow), and the convergence test
/// is a bitwise OR-reduction.  The per-lane arithmetic is
/// character-for-character the scalar loop's: a lane with
/// `act == false` keeps its bracket, so a converged (or non-ternary,
/// or padding) lane freezes exactly where the scalar early exit would
/// have left it, and the outer `!any` break fires on the same
/// iteration as the scalar loop's per-lane exit.
///
/// Kept out of line on purpose: inlined into solve_chunk (a function
/// with ~25 live lane arrays) the register allocator spills the
/// loop-carried state and the loop runs ~2x slower; as a standalone
/// function the lane chains stay in registers.  [[gnu::noinline]] is a
/// no-op attribute elsewhere, and correctness never depends on it.
template <bool kelmore>
[[gnu::noinline]] void ternary_iterate(std::size_t nl, double wr, double wc, const double* span,
                     const double* ca, const double* cb, const double* oa_lo,
                     const double* oa_hi, const double* ob_lo,
                     const double* ob_hi, const bool* tern, double* ts,
                     double* te) {
    constexpr double keps = 1e-9;  // == klen_eps
    for (int it = 0; it < 80; ++it) {
        unsigned any = 0;
        for (std::size_t j = 0; j < nl; ++j) {
            const double w = te[j] - ts[j];
            const bool act = tern[j] & (w > keps);
            any |= static_cast<unsigned>(act);
            const double m1 = ts[j] + w / 3.0;
            const double m2 = te[j] - w / 3.0;
            const double r1 = span[j] - m1;
            const double r2 = span[j] - m2;
            const double ea1 = kelmore ? wr * m1 * (0.5 * wc * m1 + ca[j]) : m1;
            const double eb1 = kelmore ? wr * r1 * (0.5 * wc * r1 + cb[j]) : r1;
            const double ea2 = kelmore ? wr * m2 * (0.5 * wc * m2 + ca[j]) : m2;
            const double eb2 = kelmore ? wr * r2 * (0.5 * wc * r2 + cb[j]) : r2;
            const double s1 = std::max(oa_hi[j] + ea1, ob_hi[j] + eb1) -
                              std::min(oa_lo[j] + ea1, ob_lo[j] + eb1);
            const double s2 = std::max(oa_hi[j] + ea2, ob_hi[j] + eb2) -
                              std::min(oa_lo[j] + ea2, ob_lo[j] + eb2);
            // NaN note: a NaN spread makes s1 <= s2 false, so ts moves and
            // te stays — the same side the scalar if/else takes.
            const bool shrink_hi = s1 <= s2;
            te[j] = select(act & shrink_hi, m2, te[j]);
            ts[j] = select(act & !shrink_hi, m1, ts[j]);
        }
        if (!any) break;
    }
}

/// One chunk of at most kplan_width plans.  The structure mirrors the
/// scalar solve() + place_split() pair (merge_solver.cpp) with the
/// working-state copies removed: a fast lane's first window intersection
/// is non-empty, so the scalar conflict loop would break out immediately
/// without snaking — both delay maps and caps are read in place.
int solve_chunk(const merge_solver& solver, const topo::clock_tree& t,
                const std::pair<topo::node_id, topo::node_id>* pairs,
                std::size_t m, std::optional<merge_plan>* out) {
    assert(m <= kplan_width);
    const rc::delay_model& model = solver.model();
    const skew_spec& spec = solver.spec();
    const bool windowed = solver.mode() == consistency_mode::windowed;

    // SoA lane state, gathered for the lanes the fast path keeps.
    std::size_t lane[kplan_width];  // fast lane -> slot in pairs/out
    double au_lo[kplan_width], au_hi[kplan_width];  // arc of a (u axis)
    double av_lo[kplan_width], av_hi[kplan_width];  // arc of a (v axis)
    double bu_lo[kplan_width], bu_hi[kplan_width];  // arc of b (u axis)
    double bv_lo[kplan_width], bv_hi[kplan_width];  // arc of b (v axis)
    double ca[kplan_width], cb[kplan_width];        // subtree caps
    double win_lo[kplan_width], win_hi[kplan_width];
    int shared[kplan_width];

    // --- Kernel 2a: per-lane skew-feasibility window.  The two-pointer
    // walk visits the shared groups in ascending id order — the same
    // order (and therefore the same intersect sequence) as the scalar
    // shared_with() + compute_window() pair.
    int fallbacks = 0;
    std::size_t nf = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const auto [a, b] = pairs[i];
        bool fast = windowed;
        geom::interval w = geom::interval::all();
        int sh = 0;
        if (fast) {
            const auto& ea = t.node(a).delays.entries();
            const auto& eb = t.node(b).delays.entries();
            std::size_t x = 0, y = 0;
            while (x < ea.size() && y < eb.size()) {
                if (ea[x].first < eb[y].first) {
                    ++x;
                } else if (eb[y].first < ea[x].first) {
                    ++y;
                } else {
                    w = w.intersect(group_window(ea[x].second, eb[y].second,
                                                 spec.bound(ea[x].first)));
                    ++sh;
                    ++x;
                    ++y;
                }
            }
            fast = !w.empty(kdelay_eps);
        }
        if (!fast) {
            // Rare general path: ledger-backed modes, or an empty first
            // window (interior-snake repair / rejection) — the scalar
            // solver handles the lane verbatim.
            out[i] = solver.plan(t, a, b);
            ++fallbacks;
            continue;
        }
        const topo::tree_node& na = t.node(a);
        const topo::tree_node& nb = t.node(b);
        lane[nf] = i;
        au_lo[nf] = na.arc.u().lo;
        au_hi[nf] = na.arc.u().hi;
        av_lo[nf] = na.arc.v().lo;
        av_hi[nf] = na.arc.v().hi;
        bu_lo[nf] = nb.arc.u().lo;
        bu_hi[nf] = nb.arc.u().hi;
        bv_lo[nf] = nb.arc.v().lo;
        bv_hi[nf] = nb.arc.v().hi;
        ca[nf] = na.subtree_cap;
        cb[nf] = nb.subtree_cap;
        win_lo[nf] = w.lo;
        win_hi[nf] = w.hi;
        shared[nf] = sh;
        ++nf;
    }
    if (nf == 0) return fallbacks;

    // --- Kernel 1 over the gathered endpoints: the merge span is the
    // tilted-space distance of the two arc boxes.
    double span[kplan_width];
    for (std::size_t j = 0; j < nf; ++j) {
        const double gu = std::max(
            0.0, std::max(bu_lo[j] - au_hi[j], au_lo[j] - bu_hi[j]));
        const double gv = std::max(
            0.0, std::max(bv_lo[j] - av_hi[j], av_lo[j] - bv_hi[j]));
        span[j] = std::max(gu, gv);
    }

    // --- Split bracketing (place_split phase): closed-form split_for_target
    // per lane, then either a ternary-search lane, a degenerate zero-span
    // lane, or root-edge snaking.  Expression-for-expression the scalar
    // place_split with ws.ca/cb/da/db replaced by the in-place reads.
    double ts[kplan_width], te[kplan_width];
    double alpha[kplan_width], beta[kplan_width];
    double oa_lo[kplan_width], oa_hi[kplan_width];
    double ob_lo[kplan_width], ob_hi[kplan_width];
    bool ternary[kplan_width];
    bool any_ternary = false;
    for (std::size_t j = 0; j < nf; ++j) {
        const std::size_t i = lane[j];
        const geom::interval window{win_lo[j], win_hi[j]};
        const double sp = span[j];
        double al = 0.0, be = 0.0;
        bool solved = false;
        bool tern = false;
        if (sp > klen_eps) {
            double a_min = -std::numeric_limits<double>::infinity();
            double a_max = std::numeric_limits<double>::infinity();
            if (std::isfinite(window.hi)) {
                a_min = rc::split_for_target(model, sp, ca[j], cb[j],
                                             window.hi)
                            .value_or(0.0);
            }
            if (std::isfinite(window.lo)) {
                a_max = rc::split_for_target(model, sp, ca[j], cb[j],
                                             window.lo)
                            .value_or(sp);
            }
            if (std::max(a_min, 0.0) <= std::min(a_max, sp) + klen_eps) {
                const double s = std::clamp(a_min, 0.0, sp);
                const double e = std::clamp(a_max, s, sp);
                ts[j] = s;
                te[j] = e;
                const geom::interval oa =
                    t.node(pairs[i].first).delays.overall();
                const geom::interval ob =
                    t.node(pairs[i].second).delays.overall();
                oa_lo[j] = oa.lo;
                oa_hi[j] = oa.hi;
                ob_lo[j] = ob.lo;
                ob_hi[j] = ob.hi;
                tern = true;
                solved = true;
            }
        } else if (window.contains(0.0, kdelay_eps)) {
            al = be = 0.0;
            solved = true;
        }
        if (!solved) {
            // Root-edge snaking: extend the side whose subtree is too
            // fast (scalar place_split's !solved branch, verbatim).
            if (rc::delay_diff(model, sp, ca[j], cb[j], sp) > window.hi) {
                const double target = -window.hi;
                assert(target >= 0.0);
                al = rc::length_for_delay(model, target, ca[j]).value_or(sp);
                al = std::max(al, sp);
                be = 0.0;
            } else {
                const double target = window.lo;
                assert(target >= 0.0);
                be = rc::length_for_delay(model, target, cb[j]).value_or(sp);
                be = std::max(be, sp);
                al = 0.0;
            }
        }
        ternary[j] = tern;
        if (!tern) {
            // Defined (and fast: no NaN/subnormal operands) values for the
            // constant-trip masked loop to read; act=false never stores.
            ts[j] = te[j] = 0.0;
            oa_lo[j] = oa_hi[j] = ob_lo[j] = ob_hi[j] = 0.0;
        }
        alpha[j] = al;
        beta[j] = be;
        any_ternary = any_ternary || tern;
    }

    // --- Masked SoA ternary search (the balance heuristic): every live
    // lane computes every iteration; see ternary_iterate.  The loop runs
    // over the nf lanes this chunk actually carries — short chunks (the
    // speculative drain often brings 1-3 fast lanes) must not pay the
    // full-width iteration.
    if (any_ternary) {
        const double wr = model.wire.res_per_unit;
        const double wc = model.wire.cap_per_unit;
        if (model.kind == rc::model_kind::elmore)
            ternary_iterate<true>(nf, wr, wc, span, ca, cb, oa_lo, oa_hi,
                                  ob_lo, ob_hi, ternary, ts, te);
        else
            ternary_iterate<false>(nf, wr, wc, span, ca, cb, oa_lo, oa_hi,
                                   ob_lo, ob_hi, ternary, ts, te);
        for (std::size_t j = 0; j < nf; ++j) {
            if (!ternary[j]) continue;
            alpha[j] = 0.5 * (ts[j] + te[j]);
            beta[j] = span[j] - alpha[j];
        }
    }

    // --- Kernel 3: batched arc-box merge — TRR expand both children by
    // their split (+ eps) and intersect, as SoA interval arithmetic
    // (identical ops to expanded().intersect()).
    double arc_ulo[kplan_width], arc_uhi[kplan_width];
    double arc_vlo[kplan_width], arc_vhi[kplan_width];
    for (std::size_t j = 0; j < nf; ++j) {
        const double ra = alpha[j] + klen_eps;
        const double rb = beta[j] + klen_eps;
        arc_ulo[j] = std::max(au_lo[j] - ra, bu_lo[j] - rb);
        arc_uhi[j] = std::min(au_hi[j] + ra, bu_hi[j] + rb);
        arc_vlo[j] = std::max(av_lo[j] - ra, bv_lo[j] - rb);
        arc_vhi[j] = std::min(av_hi[j] + ra, bv_hi[j] + rb);
    }

    // --- Assembly: costs, caps and the merged delay map per lane.  The
    // delay merge reads the node maps directly — bit-identical to the
    // scalar merged(ws.da, ..) because a fast lane never snaked, so the
    // working copies the scalar path merges equal the node maps.
    for (std::size_t j = 0; j < nf; ++j) {
        const std::size_t i = lane[j];
        const auto [a, b] = pairs[i];
        merge_plan p;
        p.alpha = alpha[j];
        p.beta = beta[j];
        p.arc = geom::tilted_rect{{arc_ulo[j], arc_uhi[j]},
                                  {arc_vlo[j], arc_vhi[j]}};
        p.shared_groups = shared[j];
        p.violation = 0.0;
        p.cost = alpha[j] + beta[j];
        p.order_cost = p.cost;
        p.new_cap = ca[j] + cb[j] + model.wire_cap(alpha[j] + beta[j]);
        const double ea = model.edge_delay(alpha[j], ca[j]);
        const double eb = model.edge_delay(beta[j], cb[j]);
        p.delays = topo::group_delays::merged(t.node(a).delays, ea,
                                              t.node(b).delays, eb);
        assert(!p.arc.empty());
        out[i] = std::move(p);
    }
    return fallbacks;
}

}  // namespace

int solve_plan_batch(const merge_solver& solver, const topo::clock_tree& t,
                     const std::pair<topo::node_id, topo::node_id>* pairs,
                     std::size_t n, std::optional<merge_plan>* out) {
    int fallbacks = 0;
    for (std::size_t base = 0; base < n; base += kplan_width) {
        const std::size_t m = std::min(kplan_width, n - base);
        fallbacks += solve_chunk(solver, t, pairs + base, m, out + base);
    }
    return fallbacks;
}

}  // namespace astclk::core
