#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace astclk::core {

namespace {

constexpr double kcost_slack = 1e-9;  // layout units

/// Inlined ban predicate: no std::function on the hot path.
struct ban_table {
    const std::unordered_set<std::uint64_t>* bans;
    [[nodiscard]] bool operator()(std::uint64_t k) const {
        return bans->count(k) != 0;
    }
};

void note_plan(const merge_plan& p, double dist, engine_stats& st) {
    ++st.merges;
    if (p.shared_groups == 0)
        ++st.disjoint_merges;
    else if (p.shared_groups == 1)
        ++st.shared_merges;
    else {
        ++st.shared_merges;
        ++st.multi_shared_merges;
    }
    if (p.alpha + p.beta > dist + kcost_slack) ++st.root_snakes;
    st.interior_snakes += static_cast<int>(p.snakes.size());
    st.snake_wire += p.cost - dist;
    if (p.violation > 0.0) {
        ++st.forced_merges;
        st.worst_violation = std::max(st.worst_violation, p.violation);
    }
}

/// Globally nearest active pair ignoring bans — the forced-merge fallback.
/// Deliberately the seed's literal O(n^2) scan (slot-major, first strictly
/// smaller distance wins): forced merges are rare endgame events with small
/// active sets, and keeping the scan verbatim preserves bit-identical
/// results with the pre-grid engine.
template <class Index>
std::pair<topo::node_id, topo::node_id> forced_nearest_pair(
    const topo::clock_tree& t, const Index& idx) {
    topo::node_id ba = topo::knull_node, bb = topo::knull_node;
    double bd = std::numeric_limits<double>::infinity();
    for (topo::node_id i : idx.active()) {
        for (topo::node_id j : idx.active()) {
            if (j <= i) continue;
            const double d = t.node(i).arc.distance(t.node(j).arc);
            if (d < bd) {
                bd = d;
                ba = i;
                bb = j;
            }
        }
    }
    return {ba, bb};
}

/// One nearest-pair reduction run: the heap-driven selection loop with
/// incremental neighbour maintenance, templated over the NN backend so the
/// ban predicate and distance loops fully inline for both.
template <class Index>
class nearest_reducer {
  public:
    nearest_reducer(const merge_solver& solver, const engine_options& opt,
                    topo::clock_tree& t, const std::vector<topo::node_id>& roots,
                    engine_stats& st)
        : solver_(solver), opt_(opt), t_(t), st_(st), idx_(&t, roots) {
        grow(static_cast<topo::node_id>(t_.size()) - 1);
        for (topo::node_id r : roots) recompute(r);
    }

    topo::node_id run() {
        while (idx_.size() > 1) {
            const auto popped = pop_cheapest();
            if (!popped.has_value()) {
                forced_step();
                continue;
            }
            const auto [key, dist, a, b, gen, cached] = *popped;
            (void)gen;
            auto plan = solver_.plan(t_, a, b);
            if (!plan.has_value()) {
                banned_.insert(pair_key(a, b));
                ++st_.rejected_pairs;
                recompute(a);
                recompute(b);
                continue;
            }
            if (opt_.true_cost_ordering && !cached &&
                plan->order_cost > key + kcost_slack) {
                // Lazy re-key: the true cost (snaking and any deferral bias
                // included) exceeds the distance bound — another pair may
                // now be cheaper.
                cost_cache_.store(pair_key(a, b), plan->order_cost);
                heap_.push({plan->order_cost, dist, a, b, gen_at(a), true});
                continue;
            }
            const topo::node_id c = solver_.commit(t_, a, b, *plan);
            note_plan(*plan, dist, st_);
            integrate(a, b, c);
        }
        return idx_.active().front();
    }

  private:
    struct sel_entry {
        double key;   ///< ordering key: distance lower bound or cached cost
        double dist;  ///< arc distance (stats baseline)
        topo::node_id a, b;
        std::uint32_t gen;  ///< gen_[a] at push; mismatch = stale
        bool cached;        ///< key is the true plan cost
    };
    struct sel_order {  // min-heap on (key, a, b)
        bool operator()(const sel_entry& x, const sel_entry& y) const {
            if (x.key != y.key) return x.key > y.key;
            if (x.a != y.a) return x.a > y.a;
            return x.b > y.b;
        }
    };
    struct rad_entry {
        double dist;
        topo::node_id a;
        std::uint32_t gen;
    };
    struct rad_order {  // max-heap on dist
        bool operator()(const rad_entry& x, const rad_entry& y) const {
            return x.dist < y.dist;
        }
    };

    void grow(topo::node_id max_id) {
        const auto need = static_cast<std::size_t>(max_id) + 1;
        if (nn_to_.size() >= need) return;
        nn_to_.resize(need, topo::knull_node);
        nn_dist_.resize(need, 0.0);
        gen_.resize(need, 0);
        rev_.resize(need);
    }

    [[nodiscard]] std::uint32_t gen_at(topo::node_id i) const {
        return gen_[static_cast<std::size_t>(i)];
    }

    /// Point i's nearest-neighbour record at (j, d); maintains the reverse
    /// lists, the generation counter, and both heaps.  j == knull means
    /// "no eligible partner" (all banned) and parks i in the starved set.
    void set_nn(topo::node_id i, topo::node_id j, double d) {
        const auto si = static_cast<std::size_t>(i);
        const topo::node_id old = nn_to_[si];
        if (old != topo::knull_node) {
            auto& r = rev_[static_cast<std::size_t>(old)];
            r.erase(std::find(r.begin(), r.end(), i));
        }
        nn_to_[si] = j;
        nn_dist_[si] = d;
        ++gen_[si];
        if (j == topo::knull_node) {
            starved_.insert(i);
            return;
        }
        starved_.erase(i);
        rev_[static_cast<std::size_t>(j)].push_back(i);
        const auto cv = cost_cache_.lookup(pair_key(i, j));
        heap_.push({cv.value_or(d), d, i, j, gen_[si], cv.has_value()});
        radius_.push({d, i, gen_[si]});
    }

    void recompute(topo::node_id i) {
        const auto n = idx_.nearest_if(i, ban_table{&banned_});
        if (n.has_value())
            set_nn(i, n->first, n->second);
        else
            set_nn(i, topo::knull_node, 0.0);
    }

    /// Pop one live entry off the heap: skips superseded generations and
    /// lazily re-keys entries whose cached true cost exceeds their key.
    std::optional<sel_entry> pop_valid() {
        while (!heap_.empty()) {
            const sel_entry e = heap_.top();
            heap_.pop();
            if (e.gen != gen_at(e.a)) continue;  // superseded or erased
            if (!e.cached) {
                if (const auto cv = cost_cache_.lookup(pair_key(e.a, e.b));
                    cv.has_value() && *cv > e.key) {
                    heap_.push({*cv, e.dist, e.a, e.b, e.gen, true});
                    continue;
                }
            }
            return e;
        }
        return std::nullopt;
    }

    /// Pop the cheapest live candidate; nullopt when every remaining pair
    /// is banned (the forced-merge endgame).  Equal-key groups are drained
    /// and resolved by the owner's active-slot order — exactly the
    /// tie-break of the former O(n) selection sweep, so the heap engine
    /// reproduces its trees bit-for-bit.  Losers go straight back on the
    /// heap (generations untouched), so the drain is O(group * log n).
    std::optional<sel_entry> pop_cheapest() {
        auto best = pop_valid();
        if (!best.has_value()) return std::nullopt;
        std::vector<sel_entry> losers;
        while (!heap_.empty() && heap_.top().key == best->key) {
            const sel_entry e = heap_.top();
            heap_.pop();
            if (e.gen != gen_at(e.a)) continue;
            if (!e.cached) {
                if (const auto cv = cost_cache_.lookup(pair_key(e.a, e.b));
                    cv.has_value() && *cv > e.key) {
                    heap_.push({*cv, e.dist, e.a, e.b, e.gen, true});
                    continue;  // re-keyed above the group; out of contention
                }
            }
            if (idx_.slot_of(e.a) < idx_.slot_of(best->a)) {
                losers.push_back(*best);
                best = e;
            } else {
                losers.push_back(e);
            }
        }
        for (const sel_entry& l : losers) heap_.push(l);
        return best;
    }

    /// Current nearest-neighbour influence radius: the largest up-to-date
    /// nn distance over active roots (stale heap tops are discarded; any
    /// survivor only overestimates, which is admissible).
    double current_radius() {
        while (!radius_.empty()) {
            const rad_entry e = radius_.top();
            if (e.gen == gen_at(e.a)) return e.dist;
            radius_.pop();
        }
        return 0.0;
    }

    void erase_node(topo::node_id i) {
        idx_.erase(i);
        const auto si = static_cast<std::size_t>(i);
        const topo::node_id old = nn_to_[si];
        if (old != topo::knull_node) {
            auto& r = rev_[static_cast<std::size_t>(old)];
            r.erase(std::find(r.begin(), r.end(), i));
        }
        nn_to_[si] = topo::knull_node;
        ++gen_[si];  // invalidates every heap entry owned by i
        starved_.erase(i);
    }

    /// Post-commit maintenance: merged pair out, new root in, and only the
    /// affected neighbourhoods touched —
    ///   * roots whose NN was a or b (reverse lists): full recompute;
    ///   * starved roots: the new root is their only unbanned partner;
    ///   * roots within the influence radius of c's arc: fold c in when
    ///     strictly closer (ties keep the older, smaller id — exactly the
    ///     backends' tie-break, since c has the largest id).
    void integrate(topo::node_id a, topo::node_id b, topo::node_id c) {
        grow(c);
        std::vector<topo::node_id> affected;
        for (topo::node_id i : rev_[static_cast<std::size_t>(a)])
            if (i != b) affected.push_back(i);
        for (topo::node_id i : rev_[static_cast<std::size_t>(b)])
            if (i != a) affected.push_back(i);
        erase_node(a);
        erase_node(b);
        rev_[static_cast<std::size_t>(a)].clear();
        rev_[static_cast<std::size_t>(b)].clear();
        // The affected roots' reverse-list entries died with those clears;
        // void their records so the recompute below doesn't unlink twice.
        for (topo::node_id i : affected)
            nn_to_[static_cast<std::size_t>(i)] = topo::knull_node;
        idx_.insert(c);
        for (topo::node_id i : affected) recompute(i);
        if (!starved_.empty()) {
            const std::vector<topo::node_id> snapshot(starved_.begin(),
                                                      starved_.end());
            const geom::tilted_rect& arc_c = t_.node(c).arc;
            for (topo::node_id i : snapshot)
                set_nn(i, c, t_.node(i).arc.distance(arc_c));
        }
        const double radius = current_radius();
        const geom::tilted_rect& arc_c = t_.node(c).arc;
        idx_.for_each_within(arc_c, radius, [&](topo::node_id i) {
            if (i == c) return;
            const auto si = static_cast<std::size_t>(i);
            if (nn_to_[si] == c) return;  // already folded (duplicate visit)
            const double d = t_.node(i).arc.distance(arc_c);
            if (d < nn_dist_[si]) set_nn(i, c, d);
        });
        recompute(c);
    }

    /// Every remaining pair is banned: forced minimax merge of the globally
    /// nearest pair (keeps the algorithm total; the residual violation is
    /// recorded).
    void forced_step() {
        const auto [a, b] = forced_nearest_pair(t_, idx_);
        assert(a != topo::knull_node);
        const double bd = t_.node(a).arc.distance(t_.node(b).arc);
        const merge_plan p = solver_.plan_forced(t_, a, b);
        const topo::node_id c = solver_.commit(t_, a, b, p);
        note_plan(p, bd, st_);
        if (p.violation <= 0.0) ++st_.forced_merges;  // count the fallback
        integrate(a, b, c);
    }

    const merge_solver& solver_;
    const engine_options& opt_;
    topo::clock_tree& t_;
    engine_stats& st_;
    Index idx_;

    std::unordered_set<std::uint64_t> banned_;
    pair_cost_cache cost_cache_;
    std::vector<topo::node_id> nn_to_;   ///< id -> current NN (knull: none)
    std::vector<double> nn_dist_;        ///< id -> distance to nn_to_
    std::vector<std::uint32_t> gen_;     ///< id -> generation counter
    std::vector<std::vector<topo::node_id>> rev_;  ///< id -> roots whose NN it is
    std::unordered_set<topo::node_id> starved_;    ///< all partners banned
    std::priority_queue<sel_entry, std::vector<sel_entry>, sel_order> heap_;
    std::priority_queue<rad_entry, std::vector<rad_entry>, rad_order> radius_;
};

template <class Index>
topo::node_id reduce_nearest_impl(const merge_solver& solver,
                                  const engine_options& opt,
                                  topo::clock_tree& t,
                                  const std::vector<topo::node_id>& roots,
                                  engine_stats& st) {
    nearest_reducer<Index> r(solver, opt, t, roots, st);
    return r.run();
}

template <class Index>
topo::node_id reduce_multi_impl(const merge_solver& solver,
                                topo::clock_tree& t,
                                const std::vector<topo::node_id>& roots,
                                engine_stats& st) {
    Index idx(&t, roots);
    std::unordered_set<std::uint64_t> banned;
    const ban_table banned_fn{&banned};

    while (idx.size() > 1) {
        ++st.rounds;
        // Fresh nearest neighbours each round.
        std::unordered_map<topo::node_id, std::pair<topo::node_id, double>> nn;
        nn.reserve(idx.size());
        for (topo::node_id i : idx.active()) {
            if (auto n = idx.nearest_if(i, banned_fn)) nn[i] = *n;
        }
        // Mutually nearest pairs, cheapest first (Edahiro's multi-merge);
        // full (d, a, b) ordering keeps rounds deterministic across
        // backends and runs.
        struct cand {
            topo::node_id a, b;
            double d;
        };
        std::vector<cand> cands;
        for (const auto& [i, n] : nn) {
            const auto [j, d] = n;
            if (j < i) continue;  // dedup (i, j) with i < j
            auto jt = nn.find(j);
            if (jt != nn.end() && jt->second.first == i)
                cands.push_back({i, j, d});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const cand& x, const cand& y) {
                      if (x.d != y.d) return x.d < y.d;
                      if (x.a != y.a) return x.a < y.a;
                      return x.b < y.b;
                  });

        bool merged_any = false;
        std::unordered_set<topo::node_id> used;
        for (const cand& cd : cands) {
            if (used.count(cd.a) || used.count(cd.b)) continue;
            auto plan = solver.plan(t, cd.a, cd.b);
            if (!plan.has_value()) {
                banned.insert(pair_key(cd.a, cd.b));
                ++st.rejected_pairs;
                continue;
            }
            const topo::node_id c = solver.commit(t, cd.a, cd.b, *plan);
            note_plan(*plan, cd.d, st);
            used.insert(cd.a);
            used.insert(cd.b);
            idx.erase(cd.a);
            idx.erase(cd.b);
            idx.insert(c);
            merged_any = true;
        }
        if (merged_any) continue;

        // No mutual pair merged this round: force progress on the globally
        // nearest (possibly banned) pair.
        const auto [ba, bb] = forced_nearest_pair(t, idx);
        const double bd = t.node(ba).arc.distance(t.node(bb).arc);
        const merge_plan p = solver.plan_forced(t, ba, bb);
        const topo::node_id c = solver.commit(t, ba, bb, p);
        note_plan(p, bd, st);
        idx.erase(ba);
        idx.erase(bb);
        idx.insert(c);
    }
    return idx.active().front();
}

}  // namespace

topo::node_id bottom_up_engine::reduce(topo::clock_tree& t,
                                       std::vector<topo::node_id> roots,
                                       engine_stats* stats) const {
    assert(!roots.empty());
    engine_stats local;
    engine_stats& st = stats ? *stats : local;
    if (roots.size() == 1) return roots.front();
    if (opt_.order == merge_order::multi_merge) {
        if (opt_.backend == nn_backend::linear)
            return reduce_multi_impl<nn_index>(solver_, t, roots, st);
        return reduce_multi_impl<grid_index>(solver_, t, roots, st);
    }
    if (opt_.backend == nn_backend::linear)
        return reduce_nearest_impl<nn_index>(solver_, opt_, t, roots, st);
    return reduce_nearest_impl<grid_index>(solver_, opt_, t, roots, st);
}

}  // namespace astclk::core
