#include "core/engine.hpp"

#include "core/audit.hpp"
#include "core/dary_heap.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <type_traits>
#include <unordered_set>
#include <vector>


namespace astclk::core {

/// The buffers behind engine_scratch: everything a reduce run allocates
/// that is independent of the instance being routed.  reset() fully
/// reinitialises the *contents* while keeping the capacity, so a reused
/// scratch produces bit-identical runs and merely skips the allocations.
struct engine_scratch::impl {
    struct sel_entry {
        double key;   ///< ordering key: distance lower bound or cached cost
        double dist;  ///< arc distance (stats baseline)
        topo::node_id a, b;
        std::uint32_t gen;  ///< gen[a] at push; mismatch = stale
        bool cached;        ///< key is the true plan cost
    };
    struct rad_entry {
        double dist;
        topo::node_id a;
        std::uint32_t gen;
    };

    /// One speculative plan() job: a pair drained off the heap top, the
    /// generation stamps taken at dispatch, and the slot its result is
    /// written into (each job writes only its own slot — the determinism
    /// rule of executor.hpp).
    struct spec_job {
        topo::node_id a, b;  ///< solve orientation: alpha goes to `a`
        std::uint32_t gen_a, gen_b;
        std::optional<merge_plan> plan;
    };

    std::unordered_set<std::uint64_t> banned;
    /// id -> number of banned pairs the id participates in.  A pair can be
    /// banned only if *both* endpoints have nonzero degree, so the NN hot
    /// loops answer almost every ban probe with two array loads instead of
    /// a hash walk (bans are rare: one per rejected pair).  Grown lazily by
    /// ban_pair(); ids beyond the vector have degree zero by construction.
    std::vector<std::uint32_t> ban_deg;
    pair_cost_cache cost_cache;
    plan_cache plans;  ///< generation-stamped cross-step plan memo
    std::vector<topo::node_id> nn_to;  ///< id -> current NN (knull: none)
    std::vector<double> nn_dist;       ///< id -> distance to nn_to
    std::vector<std::uint32_t> gen;    ///< id -> generation counter
    std::vector<std::vector<topo::node_id>> rev;  ///< id -> roots whose NN it is
    std::unordered_set<topo::node_id> starved;    ///< all partners banned
    std::vector<sel_entry> heap;    ///< selection min-heap (4-ary, dary_heap)
    std::vector<rad_entry> radius;  ///< influence-radius max-heap (4-ary)
    // Speculation buffers: the top-k entries drained for peeking and the
    // plan jobs fanned out per step (reused across steps and runs).
    std::vector<sel_entry> spec_peek;
    std::vector<spec_job> spec_jobs;
    // Multi-merge round buffers (slot-indexed NN records, pre-solved plans).
    std::vector<std::pair<topo::node_id, double>> round_nn;
    std::vector<std::optional<merge_plan>> round_plans;
    // Batch-kernel buffers (engine_options::kernel == batch): the NN
    // gather scratch of the grid backend's batched queries, and the
    // pair/result/fallback-count arrays the chunked solve_plan_batch
    // dispatches write into (disjoint slots per chunk, so parallel
    // chunks stay deterministic).
    nn_query_scratch nnq;
    std::vector<std::pair<topo::node_id, topo::node_id>> kernel_pairs;
    std::vector<std::optional<merge_plan>> kernel_out;
    std::vector<int> kernel_fb;
    // Per-step work lists reused across the run (integrate's affected
    // roots, pop_cheapest's equal-key losers): both are cleared before
    // use, so reuse only spares the per-call allocation.
    std::vector<topo::node_id> affected;
    std::vector<sel_entry> losers;

    /// Reinitialise for a run over a tree that currently has `ids` nodes.
    void reset(std::size_t ids) {
        banned.clear();
        ban_deg.clear();
        cost_cache.clear();
        plans.clear();
        starved.clear();
        heap.clear();
        radius.clear();
        spec_peek.clear();
        spec_jobs.clear();
        nnq.reset();
        kernel_pairs.clear();
        kernel_out.clear();
        kernel_fb.clear();
        nn_to.assign(ids, topo::knull_node);
        nn_dist.assign(ids, 0.0);
        gen.assign(ids, 0);
        if (rev.size() < ids) rev.resize(ids);
        for (auto& r : rev) r.clear();
    }
};

engine_scratch::engine_scratch() : p_(std::make_unique<impl>()) {}
engine_scratch::~engine_scratch() = default;
engine_scratch::engine_scratch(engine_scratch&&) noexcept = default;
engine_scratch& engine_scratch::operator=(engine_scratch&&) noexcept = default;

namespace {

constexpr double kcost_slack = 1e-9;  // layout units

using sel_entry = engine_scratch::impl::sel_entry;
using rad_entry = engine_scratch::impl::rad_entry;

struct sel_order {  // min-heap on (key, a, b)
    bool operator()(const sel_entry& x, const sel_entry& y) const {
        if (x.key != y.key) return x.key > y.key;
        if (x.a != y.a) return x.a > y.a;
        return x.b > y.b;
    }
};
struct rad_order {  // max-heap on dist
    bool operator()(const rad_entry& x, const rad_entry& y) const {
        return x.dist < y.dist;
    }
};

// The heaps are 4-ary implicit heaps over the scratch vectors
// (dary_heap.hpp).  Pop order under sel_order — a *total* order on
// (key, a, b) — is the sorted drain of the multiset regardless of arity,
// so the switch from the former std::push_heap/pop_heap binary layout is
// bit-identical by construction (and asserted by tests/test_dary_heap.cpp);
// rad_order ties are resolved arbitrarily, but current_radius only reads
// the dist *value*, which is the same for every tied top.
template <class Cmp, class T>
void heap_push(std::vector<T>& h, const T& e) {
    dary_push<Cmp>(h, e);
}
template <class Cmp, class T>
void heap_pop(std::vector<T>& h) {
    dary_pop<Cmp>(h);
}

/// Inlined ban predicate: no std::function on the hot path.  This is the
/// seed's literal probe — every candidate pair walks the hash set — and
/// the `kernel = scalar` dispatch keeps it, so the scalar rows of the
/// perf series stay the frozen reference implementation (the same role
/// the linear NN backend plays for the grid).
struct ban_table {
    const std::unordered_set<std::uint64_t>* bans;
    [[nodiscard]] bool operator()(std::uint64_t k) const {
        return bans->count(k) != 0;
    }
};

/// Batch-kernel ban predicate (engine_options::kernel == batch): the
/// packed pair key carries both endpoint ids (pair_key, nn_index.hpp),
/// so the degree table short-circuits the hash walk whenever either
/// endpoint has never been part of a ban — the overwhelmingly common
/// case, since bans accrue one rejected pair at a time while the NN
/// loops probe every candidate pair they scan.  Bit-identical answers
/// to ban_table: a pair is in `bans` only if both endpoints' degrees
/// are nonzero (ban_pair bumps both).
struct ban_table_fast {
    const std::unordered_set<std::uint64_t>* bans;
    const std::vector<std::uint32_t>* deg;
    [[nodiscard]] bool operator()(std::uint64_t k) const {
        const auto hi = static_cast<std::size_t>(k >> 32);
        if (hi >= deg->size()) return false;  // id newer than every ban
        if ((*deg)[hi] == 0 ||
            (*deg)[static_cast<std::size_t>(k & 0xffffffffu)] == 0)
            return false;
        return bans->count(k) != 0;
    }
};

/// Record a banned pair: the hash set answers exact probes, the degree
/// table powers ban_table's fast path.  The degree vector grows lazily to
/// the larger endpoint (merged roots mint fresh ids mid-run).
void ban_pair(engine_scratch::impl& s, topo::node_id a, topo::node_id b) {
    s.banned.insert(pair_key(a, b));
    const auto need = static_cast<std::size_t>(std::max(a, b)) + 1;
    if (s.ban_deg.size() < need) s.ban_deg.resize(need, 0);
    ++s.ban_deg[static_cast<std::size_t>(a)];
    ++s.ban_deg[static_cast<std::size_t>(b)];
}

void note_plan(const merge_plan& p, double dist, engine_stats& st) {
    ++st.merges;
    if (p.shared_groups == 0)
        ++st.disjoint_merges;
    else if (p.shared_groups == 1)
        ++st.shared_merges;
    else {
        ++st.shared_merges;
        ++st.multi_shared_merges;
    }
    if (p.alpha + p.beta > dist + kcost_slack) ++st.root_snakes;
    st.interior_snakes += static_cast<int>(p.snakes.size());
    st.snake_wire += p.cost - dist;
    if (p.violation > 0.0) {
        ++st.forced_merges;
        st.worst_violation = std::max(st.worst_violation, p.violation);
    }
}

/// Globally nearest active pair ignoring bans — the forced-merge fallback.
/// Deliberately the seed's literal O(n^2) scan (slot-major, first strictly
/// smaller distance wins): forced merges are rare endgame events with small
/// active sets, and keeping the scan verbatim preserves bit-identical
/// results with the pre-grid engine.
template <class Index>
std::pair<topo::node_id, topo::node_id> forced_nearest_pair(
    const topo::clock_tree& t, const Index& idx) {
    topo::node_id ba = topo::knull_node, bb = topo::knull_node;
    double bd = std::numeric_limits<double>::infinity();
    for (topo::node_id i : idx.active()) {
        for (topo::node_id j : idx.active()) {
            if (j <= i) continue;
            const double d = t.node(i).arc.distance(t.node(j).arc);
            if (d < bd) {
                bd = d;
                ba = i;
                bb = j;
            }
        }
    }
    return {ba, bb};
}

/// One nearest-pair reduction run: the heap-driven selection loop with
/// incremental neighbour maintenance, templated over the NN backend so the
/// ban predicate and distance loops fully inline for both.  All mutable
/// run state lives in the borrowed engine_scratch::impl.
template <class Index>
class nearest_reducer {
  public:
    nearest_reducer(const merge_solver& solver, const engine_options& opt,
                    topo::clock_tree& t, const std::vector<topo::node_id>& roots,
                    engine_stats& st, engine_scratch::impl& s)
        : solver_(solver), opt_(opt), t_(t), st_(st), s_(s), idx_(&t, roots),
          // The plan cache (and with it speculation) requires ledger-free
          // planning: ledger-backed plans read offsets that commits bind,
          // so a memoised plan could go stale without a generation moving.
          cache_on_(opt.plan_cache && solver.ledger() == nullptr),
          spec_on_(cache_on_ && opt.speculate_k > 0 &&
                   opt.executor != nullptr && opt.executor->concurrency() > 1),
          // The batch kernels' fast path requires ledger-free planning
          // (plan_kernels.hpp); a ledger-backed run would bounce every
          // lane anyway, so gate the dispatch off entirely and keep the
          // kernel counters at zero there.
          batch_on_(opt.kernel == plan_kernel::batch &&
                    solver.ledger() == nullptr) {
        s_.reset(t_.size());
        for (topo::node_id r : roots) recompute(r);
    }

    topo::node_id run() {
        const bool watched = opt_.cancel.armed();
        std::uint64_t step = 0;  // deterministic fault-site index
#ifdef ASTCLK_AUDIT
        std::uint64_t audit_step = 0;
#endif
        while (idx_.size() > 1) {
            // The checkpoint precedes the speculative dispatch, so a fired
            // token never fans out another plan batch; the batch below is a
            // blocking parallel_for, so no plan() task can outlive the step
            // that dispatched it — cancellation strands nothing.
            if (watched) {
                if (const route_status rs =
                        opt_.cancel.poll_at(fault_site::selection, ++step);
                    rs != route_status::ok)
                    interrupt(rs);
            }
#ifdef ASTCLK_AUDIT
            audit_checkpoint(++audit_step);
#endif
            if (spec_on_) speculate();
            const auto popped = pop_cheapest();
            if (!popped.has_value()) {
                forced_step();
                continue;
            }
            const auto [key, dist, a, b, gen, cached] = *popped;
            (void)gen;
            auto plan = obtain_plan(a, b);
            if (!plan.has_value()) {
                ban_pair(s_, a, b);
                ++st_.rejected_pairs;
                release_plans(a, b);  // terminal: banned pairs never return
                recompute(a);
                recompute(b);
                continue;
            }
            if (opt_.true_cost_ordering && !cached &&
                plan->order_cost > key + kcost_slack) {
                // Lazy re-key: the true cost (snaking and any deferral bias
                // included) exceeds the distance bound — another pair may
                // now be cheaper.  The solved plan is memoised here — the
                // re-keyed re-pop is the only consumer of an inline solve
                // (committed and banned pairs are released immediately), so
                // this is the one store the sequential path needs.
                s_.cost_cache.store(pair_key(a, b), plan->order_cost);
                heap_push<sel_order>(
                    s_.heap, {plan->order_cost, dist, a, b, gen_at(a), true});
                if (cache_on_)
                    s_.plans.store(ordered_pair_key(a, b), gen_at(a),
                                   gen_at(b), /*speculative=*/false,
                                   std::move(plan));
                continue;
            }
            const topo::node_id c = solver_.commit(t_, a, b, *plan);
            note_plan(*plan, dist, st_);
            release_plans(a, b);  // terminal: merged roots leave the set
            integrate(a, b, c);
        }
        finalize_stats();
        return idx_.active().front();
    }

  private:
    void grow(topo::node_id max_id) {
        const auto need = static_cast<std::size_t>(max_id) + 1;
        if (s_.nn_to.size() >= need) return;
        s_.nn_to.resize(need, topo::knull_node);
        s_.nn_dist.resize(need, 0.0);
        s_.gen.resize(need, 0);
        if (s_.rev.size() < need) s_.rev.resize(need);
    }

    [[nodiscard]] std::uint32_t gen_at(topo::node_id i) const {
        return s_.gen[static_cast<std::size_t>(i)];
    }

#ifdef ASTCLK_AUDIT
    /// Audit-build hook riding the selection checkpoint (DESIGN.md §12):
    /// cheap structural checks every step — both scratch heaps ordered,
    /// the stats books internally consistent, no plan-cache entry stamped
    /// from the future — and the full grid-vs-live-set cross-check (which
    /// walks every cell) every 64th step and on the first.
    void audit_checkpoint(std::uint64_t step) {
        audit::checkpoint("selection/heap",
                          audit::verify_heap_invariant<sel_order>(s_.heap));
        audit::checkpoint(
            "selection/radius",
            audit::verify_heap_invariant<rad_order>(s_.radius));
        audit::checkpoint("selection/stats", audit::verify_stats_books(st_));
        audit::checkpoint(
            "selection/plan-cache",
            audit::verify_plan_cache_generations(s_.plans, s_.gen));
        if constexpr (std::is_same_v<Index, grid_index>) {
            if (step % 64 == 1)
                audit::checkpoint("selection/grid",
                                  audit::verify_grid_vs_live_set(idx_, t_));
        }
    }
#endif


    /// Close the speculation books (wasted = dispatched − consumed); runs
    /// once per reduce, at the normal end and before an interrupt unwinds.
    void finalize_stats() {
        st_.wasted_speculation = st_.speculated_plans - st_.speculative_hits;
        st_.nn_scratch_reuses += s_.nnq.reuses;
    }

    /// One plan solve, routed through the batch kernel (a chunk of one:
    /// the SoA fast path still skips the scalar path's working-state
    /// copies and shared-group allocation) or the scalar solver.
    std::optional<merge_plan> solve_one(topo::node_id a, topo::node_id b) {
        if (!batch_on_) return solver_.plan(t_, a, b);
        const std::pair<topo::node_id, topo::node_id> pr{a, b};
        std::optional<merge_plan> plan;
        const int fb = solve_plan_batch(solver_, t_, &pr, 1, &plan);
        st_.kernel_fallbacks += fb;
        st_.batch_planned += 1 - fb;
        return plan;
    }

    [[noreturn]] void interrupt(route_status rs) {
        finalize_stats();
        throw route_interrupt(rs, st_);
    }

    /// Drop both orientations of a pair from the plan memo — called at the
    /// pair's terminal event (commit or ban), after which it can never be
    /// proposed again.  Keeps the memo's live population proportional to
    /// the speculation in flight (wasted speculative entries for still-
    /// active pairs linger until their own terminal event or run end)
    /// rather than to the total merge count.
    void release_plans(topo::node_id a, topo::node_id b) {
        if (!cache_on_) return;
        s_.plans.erase(ordered_pair_key(a, b));
        s_.plans.erase(ordered_pair_key(b, a));
    }

    /// The plan for (a, b): served from the generation-stamped memo when
    /// the stamps still match (speculative results and re-keyed survivors),
    /// solved inline otherwise.  Inline solves are *not* stored here — a
    /// popped pair either commits, gets banned (both terminal) or re-keys,
    /// and only the re-key path can consult the memo again, so run() stores
    /// exactly there and the hot loop skips a store+erase round trip per
    /// merge.  Bit-identical to a direct plan() call: ledger-free plans
    /// depend only on the two subtrees, which are immutable while both
    /// roots are active, and stale stamps fall back to the inline solve.
    std::optional<merge_plan> obtain_plan(topo::node_id a, topo::node_id b) {
        if (!cache_on_) return solve_one(a, b);
        const std::uint64_t key = ordered_pair_key(a, b);
        if (plan_cache::entry* e = s_.plans.find(key, gen_at(a), gen_at(b))) {
            ++st_.plan_cache_hits;
            if (e->speculative && !e->consumed) ++st_.speculative_hits;
            e->consumed = true;
            return e->plan;  // copied: a re-keyed pair consults it twice
        }
        ++st_.plan_cache_misses;
        return solve_one(a, b);
    }

    /// Speculative top-k planning: drain the k cheapest *live* entries off
    /// the selection heap (an exact peek — stale entries met on the way
    /// are dropped, which selection would do anyway), push them straight
    /// back, and fan the plan() calls of every distinct pair that lacks a
    /// live memo entry out over the executor.  The heap's multiset of live
    /// entries is untouched and each job writes only its own slot, so the
    /// subsequent pops — and therefore trees, stats and tie-breaks — are
    /// bit-identical to the sequential engine; the only effect is that the
    /// pops' obtain_plan() calls hit the memo instead of solving inline.
    void speculate() {
        auto& peek = s_.spec_peek;
        auto& jobs = s_.spec_jobs;
        peek.clear();
        jobs.clear();
        const auto k = static_cast<std::size_t>(opt_.speculate_k);
        while (peek.size() < k && !s_.heap.empty()) {
            const sel_entry e = s_.heap.front();
            heap_pop<sel_order>(s_.heap);
            if (e.gen != gen_at(e.a)) continue;  // stale: drop for good
            peek.push_back(e);
        }
        for (const sel_entry& e : peek) heap_push<sel_order>(s_.heap, e);
        for (const sel_entry& e : peek) {
            // Jobs are keyed and solved in the entry's own (a, b)
            // orientation — exactly the call the pop would make — because
            // plans are orientation-sensitive (alpha goes to the first
            // root); when both orientations of one pair are live, each
            // gets its own entry.
            const std::uint64_t key = ordered_pair_key(e.a, e.b);
            if (s_.plans.find(key, gen_at(e.a), gen_at(e.b)) != nullptr)
                continue;
            bool queued = false;
            for (const auto& j : jobs)
                queued = queued || ordered_pair_key(j.a, j.b) == key;
            if (queued) continue;
            jobs.push_back({e.a, e.b, gen_at(e.a), gen_at(e.b),
                            std::nullopt});
        }
        if (jobs.empty()) return;
        if (batch_on_) {
            // Chunked batch dispatch: each worker solves a kplan_lanes
            // chunk of the job list via the SoA kernels, writing plans and
            // its own fallback count into disjoint slots — deterministic
            // regardless of schedule, and each chunk amortises the kernel
            // over several lanes instead of going pair-at-a-time.
            auto& pairs = s_.kernel_pairs;
            auto& outs = s_.kernel_out;
            auto& fb = s_.kernel_fb;
            pairs.resize(jobs.size());
            outs.assign(jobs.size(), std::nullopt);
            for (std::size_t i = 0; i < jobs.size(); ++i)
                pairs[i] = {jobs[i].a, jobs[i].b};
            const std::size_t chunks =
                (jobs.size() + kplan_lanes - 1) / kplan_lanes;
            fb.assign(chunks, 0);
            run_indexed(opt_.executor, chunks, [&](std::size_t c) {
                const std::size_t lo = c * kplan_lanes;
                const std::size_t n = std::min(kplan_lanes, jobs.size() - lo);
                fb[c] = solve_plan_batch(solver_, t_, pairs.data() + lo, n,
                                         outs.data() + lo);
            });
            for (std::size_t i = 0; i < jobs.size(); ++i)
                jobs[i].plan = std::move(outs[i]);
            int total_fb = 0;
            for (const int f : fb) total_fb += f;
            st_.kernel_fallbacks += total_fb;
            st_.batch_planned += static_cast<int>(jobs.size()) - total_fb;
        } else {
            run_indexed(opt_.executor, jobs.size(), [&](std::size_t i) {
                jobs[i].plan = solver_.plan(t_, jobs[i].a, jobs[i].b);
            });
        }
        for (auto& j : jobs) {
            s_.plans.store(ordered_pair_key(j.a, j.b), j.gen_a, j.gen_b,
                           /*speculative=*/true, std::move(j.plan));
            ++st_.speculated_plans;
        }
    }

    /// Point i's nearest-neighbour record at (j, d); maintains the reverse
    /// lists, the generation counter, and both heaps.  j == knull means
    /// "no eligible partner" (all banned) and parks i in the starved set.
    void set_nn(topo::node_id i, topo::node_id j, double d) {
        const auto si = static_cast<std::size_t>(i);
        const topo::node_id old = s_.nn_to[si];
        if (old != topo::knull_node) {
            auto& r = s_.rev[static_cast<std::size_t>(old)];
            r.erase(std::find(r.begin(), r.end(), i));
        }
        s_.nn_to[si] = j;
        s_.nn_dist[si] = d;
        ++s_.gen[si];
        if (j == topo::knull_node) {
            s_.starved.insert(i);
            return;
        }
        // Starvation is an endgame phenomenon (every partner banned), so
        // the set is empty for almost the whole run — the one-load probe
        // spares a hash erase per neighbour update.
        if (!s_.starved.empty()) s_.starved.erase(i);
        s_.rev[static_cast<std::size_t>(j)].push_back(i);
        const auto cv = s_.cost_cache.lookup(pair_key(i, j));
        heap_push<sel_order>(s_.heap,
                             {cv.value_or(d), d, i, j, s_.gen[si],
                              cv.has_value()});
        heap_push<rad_order>(s_.radius, {d, i, s_.gen[si]});
    }

    void recompute(topo::node_id i) {
        // Batch kernel only: a centre that takes part in no ban can skip
        // every per-candidate ban probe — pair (i, j) can only be banned
        // if *both* endpoints have nonzero ban degree — so the query runs
        // with the fully inlined no_bans predicate, and centres that do
        // carry bans still get the degree-pruned probe.  Almost every
        // recompute qualifies (bans accrue one rejected pair at a time).
        // The scalar kernel keeps the seed's plain hash probe so the
        // reference rows of the perf series measure the seed path.
        if (batch_on_) {
            const auto si = static_cast<std::size_t>(i);
            if (si >= s_.ban_deg.size() || s_.ban_deg[si] == 0) {
                recompute_with(i, no_bans{});
                return;
            }
            recompute_with(i, ban_table_fast{&s_.banned, &s_.ban_deg});
            return;
        }
        recompute_with(i, ban_table{&s_.banned});
    }

    template <class Banned>
    void recompute_with(topo::node_id i, Banned banned) {
        // The batched ring expansion exists only on the grid backend (the
        // linear scan has no gather stage worth batching); the reducer's
        // NN maintenance is single-threaded, so one scratch serves the run.
        if constexpr (std::is_same_v<Index, grid_index>) {
            if (batch_on_) {
                const auto n = idx_.nearest_if_batched(i, banned, s_.nnq);
                if (n.has_value())
                    set_nn(i, n->first, n->second);
                else
                    set_nn(i, topo::knull_node, 0.0);
                return;
            }
        }
        const auto n = idx_.nearest_if(i, banned);
        if (n.has_value())
            set_nn(i, n->first, n->second);
        else
            set_nn(i, topo::knull_node, 0.0);
    }

    /// Pop one live entry off the heap: skips superseded generations and
    /// lazily re-keys entries whose cached true cost exceeds their key.
    std::optional<sel_entry> pop_valid() {
        while (!s_.heap.empty()) {
            const sel_entry e = s_.heap.front();
            heap_pop<sel_order>(s_.heap);
            if (e.gen != gen_at(e.a)) continue;  // superseded or erased
            if (!e.cached) {
                if (const auto cv = s_.cost_cache.lookup(pair_key(e.a, e.b));
                    cv.has_value() && *cv > e.key) {
                    heap_push<sel_order>(s_.heap,
                                         {*cv, e.dist, e.a, e.b, e.gen, true});
                    continue;
                }
            }
            return e;
        }
        return std::nullopt;
    }

    /// Pop the cheapest live candidate; nullopt when every remaining pair
    /// is banned (the forced-merge endgame).  Equal-key groups are drained
    /// and resolved by the owner's active-slot order — exactly the
    /// tie-break of the former O(n) selection sweep, so the heap engine
    /// reproduces its trees bit-for-bit.  Losers go straight back on the
    /// heap (generations untouched), so the drain is O(group * log n).
    std::optional<sel_entry> pop_cheapest() {
        auto best = pop_valid();
        if (!best.has_value()) return std::nullopt;
        auto& losers = s_.losers;
        losers.clear();
        while (!s_.heap.empty() && s_.heap.front().key == best->key) {
            const sel_entry e = s_.heap.front();
            heap_pop<sel_order>(s_.heap);
            if (e.gen != gen_at(e.a)) continue;
            if (!e.cached) {
                if (const auto cv = s_.cost_cache.lookup(pair_key(e.a, e.b));
                    cv.has_value() && *cv > e.key) {
                    heap_push<sel_order>(s_.heap,
                                         {*cv, e.dist, e.a, e.b, e.gen, true});
                    continue;  // re-keyed above the group; out of contention
                }
            }
            if (idx_.slot_of(e.a) < idx_.slot_of(best->a)) {
                losers.push_back(*best);
                best = e;
            } else {
                losers.push_back(e);
            }
        }
        for (const sel_entry& l : losers) heap_push<sel_order>(s_.heap, l);
        return best;
    }

    /// Current nearest-neighbour influence radius: the largest up-to-date
    /// nn distance over active roots (stale heap tops are discarded; any
    /// survivor only overestimates, which is admissible).
    double current_radius() {
        while (!s_.radius.empty()) {
            const rad_entry e = s_.radius.front();
            if (e.gen == gen_at(e.a)) return e.dist;
            heap_pop<rad_order>(s_.radius);
        }
        return 0.0;
    }

    void erase_node(topo::node_id i) {
        idx_.erase(i);
        const auto si = static_cast<std::size_t>(i);
        const topo::node_id old = s_.nn_to[si];
        if (old != topo::knull_node) {
            auto& r = s_.rev[static_cast<std::size_t>(old)];
            r.erase(std::find(r.begin(), r.end(), i));
        }
        s_.nn_to[si] = topo::knull_node;
        ++s_.gen[si];  // invalidates every heap entry owned by i
        if (!s_.starved.empty()) s_.starved.erase(i);
    }

    /// Post-commit maintenance: merged pair out, new root in, and only the
    /// affected neighbourhoods touched —
    ///   * roots whose NN was a or b (reverse lists): full recompute;
    ///   * starved roots: the new root is their only unbanned partner;
    ///   * roots within the influence radius of c's arc: fold c in when
    ///     strictly closer (ties keep the older, smaller id — exactly the
    ///     backends' tie-break, since c has the largest id).
    void integrate(topo::node_id a, topo::node_id b, topo::node_id c) {
        grow(c);
        auto& affected = s_.affected;
        affected.clear();
        for (topo::node_id i : s_.rev[static_cast<std::size_t>(a)])
            if (i != b) affected.push_back(i);
        for (topo::node_id i : s_.rev[static_cast<std::size_t>(b)])
            if (i != a) affected.push_back(i);
        erase_node(a);
        erase_node(b);
        s_.rev[static_cast<std::size_t>(a)].clear();
        s_.rev[static_cast<std::size_t>(b)].clear();
        // The affected roots' reverse-list entries died with those clears;
        // void their records so the recompute below doesn't unlink twice.
        for (topo::node_id i : affected)
            s_.nn_to[static_cast<std::size_t>(i)] = topo::knull_node;
        idx_.insert(c);
        for (topo::node_id i : affected) recompute(i);
        if (!s_.starved.empty()) {
            const std::vector<topo::node_id> snapshot(s_.starved.begin(),
                                                      s_.starved.end());
            const geom::tilted_rect& arc_c0 = t_.node(c).arc;
            for (topo::node_id i : snapshot)
                set_nn(i, c, t_.node(i).arc.distance(arc_c0));
        }
        const double radius = current_radius();
        const geom::tilted_rect& arc_c = t_.node(c).arc;
        if constexpr (std::is_same_v<Index, grid_index>) {
            if (batch_on_) {
                // Batched fold-in: same candidate superset and visit
                // order, distances from the SoA kernel (symmetric gap, so
                // the orientation swap is bitwise-neutral); the
                // duplicate-visit guard and the strict `<` update are the
                // scalar loop's, applied to precomputed distances.
                idx_.for_each_within_batched(
                    arc_c, radius, s_.nnq, [&](topo::node_id i, double d) {
                        if (i == c) return;
                        const auto si = static_cast<std::size_t>(i);
                        if (s_.nn_to[si] == c) return;
                        if (d < s_.nn_dist[si]) set_nn(i, c, d);
                    });
                recompute(c);
                return;
            }
        }
        idx_.for_each_within(arc_c, radius, [&](topo::node_id i) {
            if (i == c) return;
            const auto si = static_cast<std::size_t>(i);
            if (s_.nn_to[si] == c) return;  // already folded (duplicate visit)
            const double d = t_.node(i).arc.distance(arc_c);
            if (d < s_.nn_dist[si]) set_nn(i, c, d);
        });
        recompute(c);
    }

    /// Every remaining pair is banned: forced minimax merge of the globally
    /// nearest pair (keeps the algorithm total; the residual violation is
    /// recorded).
    void forced_step() {
        const auto [a, b] = forced_nearest_pair(t_, idx_);
        assert(a != topo::knull_node);
        const double bd = t_.node(a).arc.distance(t_.node(b).arc);
        const merge_plan p = solver_.plan_forced(t_, a, b);
        const topo::node_id c = solver_.commit(t_, a, b, p);
        note_plan(p, bd, st_);
        if (p.violation <= 0.0) ++st_.forced_merges;  // count the fallback
        integrate(a, b, c);
    }

    const merge_solver& solver_;
    const engine_options& opt_;
    topo::clock_tree& t_;
    engine_stats& st_;
    engine_scratch::impl& s_;
    Index idx_;
    const bool cache_on_;  ///< plan memo enabled (knob on, ledger-free)
    const bool spec_on_;   ///< top-k dispatch enabled (memo + wide executor)
    const bool batch_on_;  ///< SoA kernels enabled (knob on, ledger-free)
};

template <class Index>
topo::node_id reduce_nearest_impl(const merge_solver& solver,
                                  const engine_options& opt,
                                  topo::clock_tree& t,
                                  const std::vector<topo::node_id>& roots,
                                  engine_stats& st, engine_scratch::impl& s) {
    nearest_reducer<Index> r(solver, opt, t, roots, st, s);
    return r.run();
}

/// Edahiro-style multi-merge rounds.  Per round, the nearest-neighbour
/// queries are pure reads over the tree and index and fan out across the
/// executor; the plan() calls of the round's candidates do too when the
/// solver carries no offset ledger (mutually-nearest pairs are
/// vertex-disjoint — each root has exactly one NN — so their plans read
/// disjoint subtrees, and commits of one pair cannot change another pair's
/// plan).  Ledger-backed solvers keep planning sequential, because plans
/// read offsets that earlier commits of the same round bind.  Commits are
/// always applied sequentially in the deterministic (d, a, b) candidate
/// order, so threaded rounds are bit-identical to sequential ones.
template <class Index>
topo::node_id reduce_multi_impl(const merge_solver& solver,
                                const engine_options& opt,
                                topo::clock_tree& t,
                                const std::vector<topo::node_id>& roots,
                                engine_stats& st, engine_scratch::impl& s) {
    Index idx(&t, roots);
    s.banned.clear();
    s.ban_deg.clear();
    const ban_table banned_fn{&s.banned};
    task_executor* exec = opt.executor;
    const bool parallel_plans = exec != nullptr && solver.ledger() == nullptr;
    const bool batch_on =
        opt.kernel == plan_kernel::batch && solver.ledger() == nullptr;
    // Pre-solving a round's plans before any of its commits is exact for
    // ledger-free solvers whether or not an executor is present: the
    // round's mutually-nearest pairs are vertex-disjoint, and a commit
    // mutates only its own pair's nodes (snake side-roots are the pair
    // roots themselves), so no plan reads state another commit of the
    // same round writes.  The batch kernel piggybacks on that argument to
    // solve the round in kplan_lanes chunks even sequentially.
    const bool pre_plans = parallel_plans || batch_on;

    struct cand {
        topo::node_id a, b;
        double d;
    };
    std::vector<cand> cands;
    const bool watched = opt.cancel.armed();

    std::uint64_t round_ckpt = 0;  // per-run fault-site index (st.rounds
                                   // may carry accumulated shard counts)
    while (idx.size() > 1) {
        if (watched) {
            if (const route_status rs = opt.cancel.poll_at(
                    fault_site::round, ++round_ckpt);
                rs != route_status::ok)
                throw route_interrupt(rs, st);
        }
#ifdef ASTCLK_AUDIT
        // Round checkpoint: the multi-merge path keeps no selection heap
        // or plan memo, so the books are the auditable state here.
        audit::checkpoint("round/stats", audit::verify_stats_books(st));
#endif
        ++st.rounds;
        // Fresh nearest neighbours each round, slot-indexed so the fan-out
        // writes disjoint slots (deterministic regardless of schedule).
        const std::vector<topo::node_id>& act = idx.active();
        const std::size_t m = act.size();
        s.round_nn.assign(m, {topo::knull_node, 0.0});
        auto& nn = s.round_nn;
        run_indexed(exec, m, [&](std::size_t k) {
            if (const auto n = idx.nearest_if(act[k], banned_fn)) nn[k] = *n;
        });

        // Mutually nearest pairs, cheapest first (Edahiro's multi-merge);
        // full (d, a, b) ordering keeps rounds deterministic across
        // backends, thread counts and runs.
        cands.clear();
        for (std::size_t k = 0; k < m; ++k) {
            const auto [j, d] = nn[k];
            const topo::node_id i = act[k];
            if (j == topo::knull_node || j < i) continue;  // dedup i < j
            const auto js = static_cast<std::size_t>(idx.slot_of(j));
            if (nn[js].first == i) cands.push_back({i, j, d});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const cand& x, const cand& y) {
                      if (x.d != y.d) return x.d < y.d;
                      if (x.a != y.a) return x.a < y.a;
                      return x.b < y.b;
                  });

        if (pre_plans) {
            s.round_plans.assign(cands.size(), std::nullopt);
            if (batch_on) {
                auto& pairs = s.kernel_pairs;
                pairs.resize(cands.size());
                for (std::size_t k = 0; k < cands.size(); ++k)
                    pairs[k] = {cands[k].a, cands[k].b};
                const std::size_t chunks =
                    (cands.size() + kplan_lanes - 1) / kplan_lanes;
                s.kernel_fb.assign(chunks, 0);
                auto& fb = s.kernel_fb;
                run_indexed(exec, chunks, [&](std::size_t c) {
                    const std::size_t lo = c * kplan_lanes;
                    const std::size_t n =
                        std::min(kplan_lanes, cands.size() - lo);
                    fb[c] = solve_plan_batch(solver, t, pairs.data() + lo, n,
                                             s.round_plans.data() + lo);
                });
                int total_fb = 0;
                for (const int f : fb) total_fb += f;
                st.kernel_fallbacks += total_fb;
                st.batch_planned +=
                    static_cast<int>(cands.size()) - total_fb;
            } else {
                run_indexed(exec, cands.size(), [&](std::size_t k) {
                    s.round_plans[k] = solver.plan(t, cands[k].a, cands[k].b);
                });
            }
        }

        bool merged_any = false;
        for (std::size_t k = 0; k < cands.size(); ++k) {
            const cand& cd = cands[k];
            auto plan = pre_plans ? std::move(s.round_plans[k])
                                  : solver.plan(t, cd.a, cd.b);
            if (!plan.has_value()) {
                ban_pair(s, cd.a, cd.b);
                ++st.rejected_pairs;
                continue;
            }
            const topo::node_id c = solver.commit(t, cd.a, cd.b, *plan);
            note_plan(*plan, cd.d, st);
            idx.erase(cd.a);
            idx.erase(cd.b);
            idx.insert(c);
            merged_any = true;
        }
        if (merged_any) continue;

        // No mutual pair merged this round: force progress on the globally
        // nearest (possibly banned) pair.
        const auto [ba, bb] = forced_nearest_pair(t, idx);
        const double bd = t.node(ba).arc.distance(t.node(bb).arc);
        const merge_plan p = solver.plan_forced(t, ba, bb);
        const topo::node_id c = solver.commit(t, ba, bb, p);
        note_plan(p, bd, st);
        idx.erase(ba);
        idx.erase(bb);
        idx.insert(c);
    }
    return idx.active().front();
}

}  // namespace

topo::node_id bottom_up_engine::reduce(topo::clock_tree& t,
                                       std::vector<topo::node_id> roots,
                                       engine_stats* stats,
                                       engine_scratch* scratch) const {
    assert(!roots.empty());
    engine_stats local;
    engine_stats& st = stats ? *stats : local;
    if (roots.size() == 1) return roots.front();
    std::unique_ptr<engine_scratch> own;  // fallback, built only if needed
    if (scratch == nullptr) {
        own = std::make_unique<engine_scratch>();
        scratch = own.get();
    }
    engine_scratch::impl& s = scratch->state();
    if (opt_.order == merge_order::multi_merge) {
        if (opt_.backend == nn_backend::linear)
            return reduce_multi_impl<nn_index>(solver_, opt_, t, roots, st, s);
        return reduce_multi_impl<grid_index>(solver_, opt_, t, roots, st, s);
    }
    if (opt_.backend == nn_backend::linear)
        return reduce_nearest_impl<nn_index>(solver_, opt_, t, roots, st, s);
    return reduce_nearest_impl<grid_index>(solver_, opt_, t, roots, st, s);
}

}  // namespace astclk::core
