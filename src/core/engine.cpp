#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace astclk::core {

namespace {
constexpr double kcost_slack = 1e-9;  // layout units
}

void bottom_up_engine::note_plan(const merge_plan& p, double dist,
                                 engine_stats& st) const {
    ++st.merges;
    if (p.shared_groups == 0)
        ++st.disjoint_merges;
    else if (p.shared_groups == 1)
        ++st.shared_merges;
    else {
        ++st.shared_merges;
        ++st.multi_shared_merges;
    }
    if (p.alpha + p.beta > dist + kcost_slack) ++st.root_snakes;
    st.interior_snakes += static_cast<int>(p.snakes.size());
    st.snake_wire += p.cost - dist;
    if (p.violation > 0.0) {
        ++st.forced_merges;
        st.worst_violation = std::max(st.worst_violation, p.violation);
    }
}

topo::node_id bottom_up_engine::reduce(topo::clock_tree& t,
                                       std::vector<topo::node_id> roots,
                                       engine_stats* stats) const {
    assert(!roots.empty());
    engine_stats local;
    engine_stats& st = stats ? *stats : local;
    if (roots.size() == 1) return roots.front();
    if (opt_.order == merge_order::multi_merge)
        return reduce_multi(t, std::move(roots), st);
    return reduce_nearest(t, std::move(roots), st);
}

topo::node_id bottom_up_engine::reduce_nearest(topo::clock_tree& t,
                                               std::vector<topo::node_id> roots,
                                               engine_stats& st) const {
    nn_index idx(&t);
    for (topo::node_id r : roots) idx.insert(r);

    std::unordered_set<std::uint64_t> banned;
    std::unordered_map<std::uint64_t, double> cost_cache;
    std::unordered_map<topo::node_id,
                       std::optional<std::pair<topo::node_id, double>>>
        nn_of;
    const auto banned_fn = [&](std::uint64_t k) { return banned.count(k) > 0; };
    const auto recompute = [&](topo::node_id i) {
        nn_of[i] = idx.nearest(i, banned_fn);
    };
    for (topo::node_id r : roots) recompute(r);

    while (idx.size() > 1) {
        // Select the minimum-key candidate (cached true cost wins over the
        // distance lower bound when known).
        topo::node_id best_a = topo::knull_node, best_b = topo::knull_node;
        double best_key = std::numeric_limits<double>::infinity();
        double best_dist = 0.0;
        bool best_cached = false;
        for (topo::node_id i : idx.active()) {
            const auto& nn = nn_of[i];
            if (!nn.has_value()) continue;
            const auto [j, d] = *nn;
            double key = d;
            bool cached = false;
            if (auto it = cost_cache.find(pair_key(i, j));
                it != cost_cache.end()) {
                key = it->second;
                cached = true;
            }
            if (key < best_key) {
                best_key = key;
                best_a = i;
                best_b = j;
                best_dist = d;
                best_cached = cached;
            }
        }

        if (best_a == topo::knull_node) {
            // Every remaining pair is banned: forced minimax merge of the
            // globally nearest pair (keeps the algorithm total; the residual
            // violation is recorded).
            double bd = std::numeric_limits<double>::infinity();
            for (topo::node_id i : idx.active()) {
                for (topo::node_id j : idx.active()) {
                    if (j <= i) continue;
                    const double d = t.node(i).arc.distance(t.node(j).arc);
                    if (d < bd) {
                        bd = d;
                        best_a = i;
                        best_b = j;
                    }
                }
            }
            const merge_plan p = solver_.plan_forced(t, best_a, best_b);
            const topo::node_id c = solver_.commit(t, best_a, best_b, p);
            note_plan(p, bd, st);
            if (p.violation <= 0.0) ++st.forced_merges;  // count the fallback
            idx.erase(best_a);
            idx.erase(best_b);
            idx.insert(c);
            nn_of.erase(best_a);
            nn_of.erase(best_b);
            for (topo::node_id i : idx.active()) {
                if (i != c) recompute(i);
            }
            recompute(c);
            continue;
        }

        auto plan = solver_.plan(t, best_a, best_b);
        if (!plan.has_value()) {
            banned.insert(pair_key(best_a, best_b));
            ++st.rejected_pairs;
            recompute(best_a);
            recompute(best_b);
            continue;
        }
        if (opt_.true_cost_ordering && !best_cached &&
            plan->order_cost > best_key + kcost_slack) {
            // Lazy re-key: the true cost (snaking and any deferral bias
            // included) exceeds the distance bound — another pair may now
            // be cheaper.
            cost_cache[pair_key(best_a, best_b)] = plan->order_cost;
            continue;
        }

        const topo::node_id c = solver_.commit(t, best_a, best_b, *plan);
        note_plan(*plan, best_dist, st);
        idx.erase(best_a);
        idx.erase(best_b);
        nn_of.erase(best_a);
        nn_of.erase(best_b);
        idx.insert(c);
        // Refresh stale entries and fold the new root into existing ones.
        for (topo::node_id i : idx.active()) {
            if (i == c) continue;
            auto& nn = nn_of[i];
            if (nn.has_value() &&
                (nn->first == best_a || nn->first == best_b)) {
                recompute(i);
                continue;
            }
            const double dc = t.node(i).arc.distance(t.node(c).arc);
            if (!nn.has_value() || dc < nn->second)
                nn = std::make_pair(c, dc);
        }
        recompute(c);
    }
    return idx.active().front();
}

topo::node_id bottom_up_engine::reduce_multi(topo::clock_tree& t,
                                             std::vector<topo::node_id> roots,
                                             engine_stats& st) const {
    nn_index idx(&t);
    for (topo::node_id r : roots) idx.insert(r);
    std::unordered_set<std::uint64_t> banned;
    const auto banned_fn = [&](std::uint64_t k) { return banned.count(k) > 0; };

    while (idx.size() > 1) {
        ++st.rounds;
        // Fresh nearest neighbours each round.
        std::unordered_map<topo::node_id, std::pair<topo::node_id, double>> nn;
        for (topo::node_id i : idx.active()) {
            if (auto n = idx.nearest(i, banned_fn)) nn[i] = *n;
        }
        // Mutually nearest pairs, cheapest first (Edahiro's multi-merge).
        struct cand {
            topo::node_id a, b;
            double d;
        };
        std::vector<cand> cands;
        for (const auto& [i, n] : nn) {
            const auto [j, d] = n;
            if (j < i) continue;  // dedup (i, j) with i < j
            auto jt = nn.find(j);
            if (jt != nn.end() && jt->second.first == i)
                cands.push_back({i, j, d});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const cand& x, const cand& y) { return x.d < y.d; });

        bool merged_any = false;
        std::unordered_set<topo::node_id> used;
        for (const cand& cd : cands) {
            if (used.count(cd.a) || used.count(cd.b)) continue;
            auto plan = solver_.plan(t, cd.a, cd.b);
            if (!plan.has_value()) {
                banned.insert(pair_key(cd.a, cd.b));
                ++st.rejected_pairs;
                continue;
            }
            const topo::node_id c = solver_.commit(t, cd.a, cd.b, *plan);
            note_plan(*plan, cd.d, st);
            used.insert(cd.a);
            used.insert(cd.b);
            idx.erase(cd.a);
            idx.erase(cd.b);
            idx.insert(c);
            merged_any = true;
        }
        if (merged_any) continue;

        // No mutual pair merged this round: force progress on the globally
        // nearest (possibly banned) pair.
        topo::node_id ba = topo::knull_node, bb = topo::knull_node;
        double bd = std::numeric_limits<double>::infinity();
        for (topo::node_id i : idx.active()) {
            for (topo::node_id j : idx.active()) {
                if (j <= i) continue;
                const double d = t.node(i).arc.distance(t.node(j).arc);
                if (d < bd) {
                    bd = d;
                    ba = i;
                    bb = j;
                }
            }
        }
        const merge_plan p = solver_.plan_forced(t, ba, bb);
        const topo::node_id c = solver_.commit(t, ba, bb, p);
        note_plan(p, bd, st);
        idx.erase(ba);
        idx.erase(bb);
        idx.insert(c);
    }
    return idx.active().front();
}

}  // namespace astclk::core
