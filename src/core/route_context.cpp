#include "core/route_context.hpp"

#include "gen/grouping.hpp"

#include <sstream>

namespace astclk::core {

namespace {

/// Cache key covering every field of an instance_spec: two specs that
/// differ anywhere must not share a generated instance.
std::string spec_key(const gen::instance_spec& s) {
    std::ostringstream os;
    os.precision(17);
    os << s.name << '|' << s.num_sinks << '|' << s.die << '|' << s.cap_min
       << '|' << s.cap_max << '|' << s.cluster_fraction << '|'
       << s.num_clusters << '|' << s.cluster_radius << '|' << s.seed;
    return os.str();
}

}  // namespace

const topo::instance& routing_context::instance(
    const std::string& key, const std::function<topo::instance()>& build) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = instances_.find(key);
        if (it != instances_.end()) return *it->second;
    }
    // Build outside the lock (generation can be slow).  On a build race
    // the first writer wins and later builds are discarded — harmless,
    // since builds for one key are deterministic and identical.
    auto built = std::make_unique<topo::instance>(build());
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = instances_[key];
    if (!slot) slot = std::move(built);
    return *slot;
}

const topo::instance& routing_context::generated(
    const gen::instance_spec& spec) {
    return instance(spec_key(spec) + "|plain",
                    [&] { return gen::generate(spec); });
}

const topo::instance& routing_context::clustered(
    const gen::instance_spec& spec, int groups) {
    return instance(spec_key(spec) + "|box" + std::to_string(groups), [&] {
        auto inst = gen::generate(spec);
        gen::apply_clustered_groups(inst, groups);
        return inst;
    });
}

const topo::instance& routing_context::intermingled(
    const gen::instance_spec& spec, int groups, std::uint64_t seed) {
    return instance(spec_key(spec) + "|mix" + std::to_string(groups) + "@" +
                        std::to_string(seed),
                    [&] {
                        auto inst = gen::generate(spec);
                        gen::apply_intermingled_groups(inst, groups, seed);
                        return inst;
                    });
}

std::size_t routing_context::cached_instances() const {
    std::lock_guard<std::mutex> lk(mu_);
    return instances_.size();
}

routing_context::scratch_lease::~scratch_lease() {
    if (ctx_ != nullptr && s_ != nullptr) ctx_->release(std::move(s_));
}

routing_context::scratch_lease routing_context::scratch() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!pool_.empty()) {
            auto s = std::move(pool_.back());
            pool_.pop_back();
            return {this, std::move(s)};
        }
        ++allocated_;
    }
    return {this, std::make_unique<engine_scratch>()};
}

void routing_context::release(std::unique_ptr<engine_scratch> s) {
    std::lock_guard<std::mutex> lk(mu_);
    pool_.push_back(std::move(s));
}

std::size_t routing_context::pooled_scratch() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pool_.size();
}

std::size_t routing_context::allocated_scratch() const {
    std::lock_guard<std::mutex> lk(mu_);
    return allocated_;
}

}  // namespace astclk::core
