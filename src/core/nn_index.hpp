#pragma once

/// \file nn_index.hpp
/// Linear-scan nearest-neighbour backend over active subtree roots.
///
/// Greedy-DME / greedy-BST / AST-DME all repeatedly merge the pair of
/// active roots with minimum merging cost; the arc (Manhattan) distance is
/// an admissible lower bound on that cost (snaking only adds wire), so the
/// engine scans by distance and lazily re-keys with the true plan cost.
///
/// This backend answers "nearest active root to X, excluding banned
/// partners" with a tuned linear scan (two interval gaps per candidate).
/// It is the exact-by-construction reference the grid backend
/// (grid_index.hpp) is validated against, and remains selectable via
/// `engine_options::backend = nn_backend::linear`.
///
/// Both backends share the same interface contract:
///  * `insert` / `erase` maintain the active set (erase is O(1) via an
///    id -> slot map over the swap-and-pop `active_` vector);
///  * `nearest_if(id, banned)` returns the nearest active root by arc
///    distance with deterministic id tie-breaks (`other < best` on equal
///    distance), skipping `id` itself and banned partners;
///  * `for_each_within(rect, radius, fn)` enumerates a superset of the
///    active roots whose arc lies within `radius` of `rect` (the linear
///    backend simply enumerates everything — admissible, just unpruned).
///
/// The banned predicate is a template parameter so the hot loop inlines it;
/// no std::function indirection on the merge path.

#include "topo/tree.hpp"

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

namespace astclk::core {

/// Symmetric pair key for ban lists / cost caches.
[[nodiscard]] inline std::uint64_t pair_key(topo::node_id a, topo::node_id b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint32_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Orientation-sensitive pair key: (a, b) and (b, a) map to distinct keys.
/// The plan cache needs this — a merge_plan assigns `alpha` to the *first*
/// root of the solve, so the two orientations are different plans even
/// though cost and feasibility coincide.
[[nodiscard]] inline std::uint64_t ordered_pair_key(topo::node_id a,
                                                   topo::node_id b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
}

/// Predicate accepting every pair — the "no bans" case, fully inlined.
struct no_bans {
    [[nodiscard]] bool operator()(std::uint64_t) const { return false; }
};

/// Swap-and-pop set of active root ids with an id -> slot map (node ids
/// are dense arena indices, so a flat vector beats hashing; erase is O(1)).
///
/// Both NN backends embed this single implementation on purpose: the
/// engine's selection tie-break resolves equal-key candidates by active
/// slot, so the backends must evolve bit-identical slot orders under the
/// same insert/erase sequence.  Keeping the bookkeeping in one place makes
/// that guarantee structural rather than a convention to maintain twice.
class active_set {
  public:
    void insert(topo::node_id id);
    void erase(topo::node_id id);

    [[nodiscard]] const std::vector<topo::node_id>& items() const {
        return items_;
    }
    [[nodiscard]] std::size_t size() const { return items_.size(); }
    [[nodiscard]] std::int32_t slot_of(topo::node_id id) const {
        return pos_[static_cast<std::size_t>(id)];
    }

  private:
    std::vector<topo::node_id> items_;
    std::vector<std::int32_t> pos_;  ///< id -> slot, knull_slot if inactive
    static constexpr std::int32_t knull_slot = -1;
};

class nn_index {
  public:
    explicit nn_index(const topo::clock_tree* tree) : tree_(tree) {}

    nn_index(const topo::clock_tree* tree,
             const std::vector<topo::node_id>& roots)
        : tree_(tree) {
        for (topo::node_id r : roots) insert(r);
    }

    void insert(topo::node_id id) { set_.insert(id); }
    void erase(topo::node_id id) { set_.erase(id); }

    [[nodiscard]] const std::vector<topo::node_id>& active() const {
        return set_.items();
    }
    [[nodiscard]] std::size_t size() const { return set_.size(); }

    /// Slot of an active id in `active()` — the engine's selection
    /// tie-break (see active_set for why this is shared state).
    [[nodiscard]] std::int32_t slot_of(topo::node_id id) const {
        return set_.slot_of(id);
    }

    /// Nearest active root to `id` by arc distance, skipping `id` itself and
    /// any partner for which `banned(pair_key)` returns true.  Ties on equal
    /// distance break towards the smaller id.  nullopt when no candidate
    /// remains.
    template <class Banned>
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>> nearest_if(
        topo::node_id id, Banned banned) const {
        const geom::tilted_rect& arc = tree_->node(id).arc;
        topo::node_id best = topo::knull_node;
        double best_d = std::numeric_limits<double>::infinity();
        for (topo::node_id other : set_.items()) {
            if (other == id) continue;
            if (banned(pair_key(id, other))) continue;
            const double d = arc.distance(tree_->node(other).arc);
            if (d < best_d || (d == best_d && other < best)) {
                best_d = d;
                best = other;
            }
        }
        if (best == topo::knull_node) return std::nullopt;
        return std::make_pair(best, best_d);
    }

    /// Compatibility wrapper for callers holding a (possibly empty)
    /// std::function; the engine uses nearest_if directly.
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>> nearest(
        topo::node_id id,
        const std::function<bool(std::uint64_t)>& banned) const {
        if (!banned) return nearest_if(id, no_bans{});
        return nearest_if(id, [&](std::uint64_t k) { return banned(k); });
    }

    /// Invoke `fn(id)` for every active root whose arc could lie within
    /// `radius` of `rect`.  The linear backend enumerates every active root
    /// (a trivially admissible superset); the grid backend prunes by cells.
    template <class Fn>
    void for_each_within(const geom::tilted_rect&, double, Fn fn) const {
        for (topo::node_id other : set_.items()) fn(other);
    }

  private:
    const topo::clock_tree* tree_;
    active_set set_;
};

}  // namespace astclk::core
