#pragma once

/// \file nn_index.hpp
/// Nearest-neighbour selection over active subtree roots.
///
/// Greedy-DME / greedy-BST / AST-DME all repeatedly merge the pair of
/// active roots with minimum merging cost; the arc (Manhattan) distance is
/// an admissible lower bound on that cost (snaking only adds wire), so the
/// engine scans by distance and lazily re-keys with the true plan cost.
///
/// The index keeps the active set and answers "nearest active root to X,
/// excluding banned partners".  Sizes here are a few thousand, so a tuned
/// linear scan (two interval gaps per candidate) is both simple and fast
/// enough for the paper's largest instance (r5, 3101 sinks); the interface
/// would admit a grid drop-in if ever needed.

#include "topo/tree.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

namespace astclk::core {

/// Symmetric pair key for ban lists / cost caches.
[[nodiscard]] inline std::uint64_t pair_key(topo::node_id a, topo::node_id b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint32_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

class nn_index {
  public:
    explicit nn_index(const topo::clock_tree* tree) : tree_(tree) {}

    void insert(topo::node_id id);
    void erase(topo::node_id id);

    [[nodiscard]] const std::vector<topo::node_id>& active() const {
        return active_;
    }
    [[nodiscard]] std::size_t size() const { return active_.size(); }

    /// Nearest active root to `id` by arc distance, skipping `id` itself and
    /// any partner for which `banned(pair_key)` returns true.  nullopt when
    /// no candidate remains.
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>> nearest(
        topo::node_id id,
        const std::function<bool(std::uint64_t)>& banned) const;

  private:
    const topo::clock_tree* tree_;
    std::vector<topo::node_id> active_;
    std::unordered_set<topo::node_id> active_set_;
};

}  // namespace astclk::core
