#include "core/nn_index.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace astclk::core {

void nn_index::insert(topo::node_id id) {
    assert(active_set_.find(id) == active_set_.end());
    active_.push_back(id);
    active_set_.insert(id);
}

void nn_index::erase(topo::node_id id) {
    auto it = std::find(active_.begin(), active_.end(), id);
    assert(it != active_.end());
    *it = active_.back();
    active_.pop_back();
    active_set_.erase(id);
}

std::optional<std::pair<topo::node_id, double>> nn_index::nearest(
    topo::node_id id, const std::function<bool(std::uint64_t)>& banned) const {
    const geom::tilted_rect& arc = tree_->node(id).arc;
    topo::node_id best = topo::knull_node;
    double best_d = std::numeric_limits<double>::infinity();
    for (topo::node_id other : active_) {
        if (other == id) continue;
        if (banned && banned(pair_key(id, other))) continue;
        const double d = arc.distance(tree_->node(other).arc);
        if (d < best_d || (d == best_d && other < best)) {
            best_d = d;
            best = other;
        }
    }
    if (best == topo::knull_node) return std::nullopt;
    return std::make_pair(best, best_d);
}

}  // namespace astclk::core
