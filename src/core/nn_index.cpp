#include "core/nn_index.hpp"

#include <cassert>

namespace astclk::core {

void active_set::insert(topo::node_id id) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= pos_.size()) pos_.resize(i + 1, knull_slot);
    assert(pos_[i] == knull_slot);
    pos_[i] = static_cast<std::int32_t>(items_.size());
    items_.push_back(id);
}

void active_set::erase(topo::node_id id) {
    const auto i = static_cast<std::size_t>(id);
    assert(i < pos_.size() && pos_[i] != knull_slot);
    const auto slot = static_cast<std::size_t>(pos_[i]);
    const topo::node_id moved = items_.back();
    items_[slot] = moved;
    items_.pop_back();
    pos_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(slot);
    pos_[i] = knull_slot;
}

}  // namespace astclk::core
