#pragma once

/// \file strategy.hpp
/// The unified routing-request interface and strategy registry
/// (DESIGN.md §6).
///
/// The four routers — ZST-DME, EXT-BST, AST-DME, separate-stitch — are
/// registered *strategies* behind one call:
///
///     routing_request req;
///     req.instance = &inst;
///     req.strategy = strategy_id::ast_dme;
///     route_result r = route(req, ctx);
///
/// A `routing_request` bundles everything a route needs (instance
/// reference, skew spec, router options, strategy id); `route()` looks the
/// strategy up, runs it against a `routing_context` (shared delay model,
/// instance cache, engine scratch), and uniformly records wall-clock and
/// thread usage in the result — direct calls and batched service calls
/// report timing the same way.  The legacy free functions in router.hpp
/// are thin wrappers over this interface, so existing call sites stay
/// source-compatible.
///
/// The registry is open: new strategies can be added at runtime under
/// fresh ids (e.g. experimental routers in a bench), looked up by id or by
/// name.

#include "core/router.hpp"

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace astclk::core {

class routing_context;

/// Identifier of a registered routing strategy.  The four built-ins are
/// always registered; further ids are free for extensions.
enum class strategy_id : int {
    zst_dme = 0,          ///< zero-skew DME over all sinks (groups ignored)
    ext_bst = 1,          ///< bounded-skew tree, one global bound
    ast_dme = 2,          ///< the paper's associative-skew router
    separate_stitch = 3,  ///< per-group ZSTs stitched afterwards
};

/// One unit of routing work: everything a strategy needs to produce a
/// route_result.  Value type, cheap to copy; the instance is borrowed and
/// must outlive the call (batched callers typically lend instances owned
/// by the routing_context's cache).
struct routing_request {
    const topo::instance* instance = nullptr;
    /// Intra-group skew bounds for AST-DME.  EXT-BST reads `default_bound`
    /// as its single global bound; ZST-DME and separate-stitch route at
    /// zero skew and ignore it.
    skew_spec spec = skew_spec::zero();
    router_options options;
    strategy_id strategy = strategy_id::ast_dme;
    ast_mode mode = ast_mode::automatic;  ///< AST-DME conflict strategy
};

/// A strategy: consumes a request, may use the shared context (instance
/// cache, scratch pool), returns the routed tree.  Must not record timing
/// itself — `route()` does that uniformly.
using strategy_fn = route_result (*)(const routing_request&,
                                     routing_context&);

/// Process-wide strategy table.  Thread-safe; entries are never removed,
/// and re-adding an id replaces its implementation (latest wins).
class strategy_registry {
  public:
    static strategy_registry& global();

    /// Register (or replace) a strategy under `id`.  `name` is the
    /// canonical identifier, `alias` a short CLI spelling ("ast", "zst",
    /// ...); either resolves via id_of.
    void add(strategy_id id, std::string name, std::string alias,
             strategy_fn fn);

    /// The implementation registered under `id`; throws std::out_of_range
    /// for unknown ids.
    [[nodiscard]] strategy_fn find(strategy_id id) const;

    /// Resolve a name or alias; nullopt when unknown.
    [[nodiscard]] std::optional<strategy_id> id_of(
        const std::string& name_or_alias) const;

    /// Canonical name of a registered id ("?" when unknown).
    [[nodiscard]] std::string name_of(strategy_id id) const;

    /// Canonical names of every registered strategy, registration order.
    [[nodiscard]] std::vector<std::string> names() const;

  private:
    strategy_registry();  // registers the four built-in routers

    struct entry {
        strategy_id id;
        std::string name;
        std::string alias;
        strategy_fn fn;
    };
    mutable std::mutex mu_;
    std::vector<entry> entries_;
};

/// Route one request against a shared context.  Dispatches through the
/// registry, then records `cpu_seconds` (wall clock of the strategy body)
/// and `threads_used` (executor concurrency, 1 when sequential) — the one
/// place timing is measured, identical for direct and batched calls.
/// Cooperative cancellation: the request's cancel token
/// (`options.engine.cancel`) is polled once before dispatch — an
/// already-fired token (zero/expired deadline, pre-cancelled flag) returns
/// its status without entering the strategy — and a route_interrupt thrown
/// by an engine checkpoint is converted into a result with that status
/// (`cancelled` / `deadline_exceeded`); the partial tree is discarded.
/// Throws std::invalid_argument on a null instance, std::out_of_range on
/// an unregistered strategy id; other strategy exceptions propagate (the
/// streaming service converts them to `route_status::error`).
route_result route(const routing_request& req, routing_context& ctx);

/// Convenience overload with a transient private context (no sharing).
route_result route(const routing_request& req);

}  // namespace astclk::core
