#pragma once

/// \file audit.hpp
/// Runtime invariant auditor (DESIGN.md §12) — callable structural
/// checkers over the engine's live data structures, and the checkpoint
/// hooks that invoke them in `ASTCLK_AUDIT` builds.
///
/// The engine's headline guarantees — bit-identical trees across thread
/// counts, backends, speculate_k and shard counts; exact engine_stats
/// accounting across cancellation unwinds — are exactly the properties
/// that races and forgotten-counter bugs break *silently*: the suite
/// stays green until a scheduler wobble flips a tie-break.  These
/// checkers make the underlying invariants directly testable:
///
///  * every checker is a pure read over the structure it audits and
///    returns a diagnostic string — empty when the invariant holds
///    (`clock_tree::check_structure`'s contract), naming the first
///    violated fact otherwise;
///  * the checkers are ALWAYS compiled and exported (tests call them
///    directly, on healthy and deliberately corrupted state alike);
///  * `ASTCLK_AUDIT` builds additionally invoke them from the engine's
///    existing cancel/fault checkpoints (selection steps, multi-merge
///    round boundaries, shard completion, strategy tails) via the
///    `checkpoint` helper below, which throws `audit::violation` on the
///    first failure instead of letting a corrupted run limp on.
///
/// Thread-safety: each checker reads exactly the structures passed in and
/// must only run while no other thread mutates them — the audit-build
/// call sites sit on the single thread driving the structure (the
/// reducer's selection loop, a shard's own sub-reduce), never inside a
/// fan-out.

#include "core/dary_heap.hpp"
#include "core/engine.hpp"
#include "core/grid_index.hpp"
#include "core/merge_solver.hpp"
#include "topo/tree.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace astclk::core {

class routing_context;

namespace audit {

/// Thrown by `checkpoint` when a checker reports a violation in an
/// ASTCLK_AUDIT build.  Derives from std::logic_error: a failed audit is
/// a bug in the engine (or a memory stomp), never a recoverable input
/// condition — the route_service's isolation still converts it to
/// route_status::error, so one corrupted request cannot poison siblings.
class violation : public std::logic_error {
  public:
    explicit violation(const std::string& what) : std::logic_error(what) {}
};

/// Number of checkpoint audits run process-wide (monotonic; test hook for
/// asserting that ASTCLK_AUDIT builds actually exercise the call sites).
[[nodiscard]] std::uint64_t checkpoints_run() noexcept;

/// Raise `violation` on a non-empty diagnostic and count the checkpoint.
/// `site` names the call site ("selection", "round", "shard", ...).
void checkpoint(const char* site, const std::string& diagnostic);

// ------------------------------------------------------------- checkers

/// Structural soundness of a routed (or partially routed) tree: delegates
/// to clock_tree::check_structure (parent/child symmetry, single root,
/// every sink exactly once — the root must be set), then audits what that
/// check does not cover: non-negative electrical edge lengths and
/// downstream capacitances, and leaf/internal shape consistency (leaves
/// childless, internal nodes with both children).
[[nodiscard]] std::string verify_tree_structure(const topo::clock_tree& t,
                                                std::size_t num_sinks);

/// Grid backend vs live set (grid_index's core invariant): every active
/// root is registered in exactly the cells its recorded span covers, the
/// span matches the cell range of the node's current arc, every id found
/// in a cell is active and in range, the packed-arc mirror matches the
/// tree's arcs, and the slab occupancy mirror agrees with the
/// authoritative cell vectors (population always; inline ids as a set
/// when the cell is not spilled).
[[nodiscard]] std::string verify_grid_vs_live_set(const grid_index& g,
                                                  const topo::clock_tree& t);

/// D-ary heap order over a caller-owned vector (the engine's selection
/// and radius heaps): no element orders above its parent under `Cmp`
/// (dary_heap.hpp semantics — the comparator-maximum sits at front()).
template <class Cmp, std::size_t D = kheap_arity, class T>
[[nodiscard]] std::string verify_heap_invariant(const std::vector<T>& h) {
    const Cmp less{};
    for (std::size_t i = 1; i < h.size(); ++i) {
        const std::size_t parent = (i - 1) / D;
        if (less(h[parent], h[i]))
            return "heap invariant violated: element " + std::to_string(i) +
                   " orders above its parent " + std::to_string(parent) +
                   " (heap size " + std::to_string(h.size()) + ")";
    }
    return {};
}

/// Scratch-lease bookkeeping of a *quiesced* routing_context: every
/// engine_scratch ever allocated must be back in the pool once no request
/// is in flight (leases return on destruction, cancellation and deadline
/// unwinds included).  Calling this while requests still hold leases
/// reports a violation by design — quiesce first.
[[nodiscard]] std::string verify_scratch_lease_balance(
    const routing_context& ctx);

/// Internal consistency of an engine_stats block (single run or
/// accumulated): counters non-negative, the merge taxonomy sums
/// (merges == disjoint + shared, multi-shared within shared), the
/// speculation books close (hits never exceed dispatches; wasted is
/// either still open at 0 or exactly dispatches - hits), and a recorded
/// violation implies a forced merge.
[[nodiscard]] std::string verify_stats_books(const engine_stats& s);

/// Generation stamps of the plan cache against the engine's per-node
/// generation counters: no entry may carry a stamp from the *future*
/// (greater than the node's current generation), and every stamped node
/// must exist in the counter vector.  Stale entries (stamp below current
/// generation) are legal — they are misses by construction.
[[nodiscard]] std::string verify_plan_cache_generations(
    const plan_cache& pc, const std::vector<std::uint32_t>& gen);

}  // namespace audit
}  // namespace astclk::core
