#include "core/grid_index.hpp"

#include <cmath>

namespace astclk::core {

grid_index::grid_index(const topo::clock_tree* tree,
                       const std::vector<topo::node_id>& roots)
    : tree_(tree) {
    size_to(roots);
    for (topo::node_id r : roots) insert(r);
}

void grid_index::size_to(const std::vector<topo::node_id>& items) {
    // Bounds over the current arcs of `items`.  Future merging segments can
    // escape these bounds in the non-binding axis; range_of clamps them
    // into border cells, which keeps the ring lower bound admissible (see
    // the header).
    geom::interval bu = geom::interval::empty_set();
    geom::interval bv = geom::interval::empty_set();
    for (topo::node_id r : items) {
        const geom::tilted_rect& a = tree_->node(r).arc;
        bu = bu.hull(a.u());
        bv = bv.hull(a.v());
    }
    if (bu.empty()) bu = geom::interval::at(0.0);
    if (bv.empty()) bv = geom::interval::at(0.0);
    u_lo_ = bu.lo;
    v_lo_ = bv.lo;

    // ~1 expected root per cell: ceil(sqrt(n)) cells per axis over the
    // larger extent, square cells so the ring lower bound holds per-axis.
    // Tiny populations (sub-reduction shards, endgame rebuilds) are
    // clamped to kmin_cells_per_axis: sqrt-sizing would hand a 16-root
    // shard a near-degenerate 4x4 (or, after rounding, coarser) grid whose
    // every ring visit scans a large fraction of the population — linear
    // scanning with grid overhead on top.  A finer floor keeps ring
    // expansion pruning; occupancy below 1 is harmless (nearest_if is
    // exact for every cell size, so sizing never changes an answer).
    const double extent = std::max(bu.length(), bv.length());
    const int target = std::max(
        kmin_cells_per_axis,
        static_cast<int>(
            std::ceil(std::sqrt(static_cast<double>(items.size())))));
    if (extent <= 0.0) {
        cell_ = 1.0;
        nu_ = nv_ = 1;
    } else {
        cell_ = extent / target;
        nu_ = std::max(1, static_cast<int>(std::floor(bu.length() / cell_)) + 1);
        nv_ = std::max(1, static_cast<int>(std::floor(bv.length() / cell_)) + 1);
    }
    inv_cell_ = 1.0 / cell_;
    cells_.assign(static_cast<std::size_t>(nu_) * static_cast<std::size_t>(nv_),
                  {});
    slab_.assign(cells_.size(), {});
    sized_for_ = std::max<std::size_t>(std::size_t{1}, items.size());
}

grid_index::cell_range grid_index::range_of(const geom::tilted_rect& r) const {
    cell_range c;
    c.u0 = clamp_u(static_cast<int>(std::floor((r.u().lo - u_lo_) * inv_cell_)));
    c.u1 = clamp_u(static_cast<int>(std::floor((r.u().hi - u_lo_) * inv_cell_)));
    c.v0 = clamp_v(static_cast<int>(std::floor((r.v().lo - v_lo_) * inv_cell_)));
    c.v1 = clamp_v(static_cast<int>(std::floor((r.v().hi - v_lo_) * inv_cell_)));
    return c;
}

int grid_index::max_ring_from(const cell_range& q) const {
    return std::max(std::max(q.u0, nu_ - 1 - q.u1),
                    std::max(q.v0, nv_ - 1 - q.v1));
}

void grid_index::place(topo::node_id id) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= span_.size()) span_.resize(i + 1);
    if (i >= arcs_.size()) arcs_.resize(i + 1);
    arcs_[i] = packed_arc::of(tree_->node(id).arc);
    const cell_range c = range_of(tree_->node(id).arc);
    span_[i] = c;
    for (int cv = c.v0; cv <= c.v1; ++cv)
        for (int cu = c.u0; cu <= c.u1; ++cu) {
            const std::size_t at = cell_at(cu, cv);
            cells_[at].push_back(id);
            slab_cell& sc = slab_[at];
            if (sc.n < slab_cell::kinline) sc.ids[sc.n] = id;
            ++sc.n;  // past kinline the cell is spilled; count stays true
        }
}

void grid_index::insert(topo::node_id id) {
    set_.insert(id);
    place(id);
}

void grid_index::erase(topo::node_id id) {
    set_.erase(id);
    const auto i = static_cast<std::size_t>(id);
    const cell_range& c = span_[i];
    for (int cv = c.v0; cv <= c.v1; ++cv)
        for (int cu = c.u0; cu <= c.u1; ++cu) {
            const std::size_t at = cell_at(cu, cv);
            auto& cell = cells_[at];
            for (std::size_t k = 0; k < cell.size(); ++k) {
                if (cell[k] == id) {
                    cell[k] = cell.back();
                    cell.pop_back();
                    break;
                }
            }
            slab_cell& sc = slab_[at];
            if (sc.n <= slab_cell::kinline) {
                // Inline is authoritative: swap-pop the id out of it.
                for (std::uint32_t k = 0; k < sc.n; ++k)
                    if (sc.ids[k] == id) {
                        sc.ids[k] = sc.ids[sc.n - 1];
                        break;
                    }
                --sc.n;
            } else if (--sc.n <= slab_cell::kinline) {
                // The cell just un-spilled: refill inline from the
                // (already shrunk) authoritative vector.
                for (std::uint32_t k = 0; k < sc.n; ++k) sc.ids[k] = cell[k];
            }
        }
    // Occupancy-adaptive rebuild: once the survivors are below 1/4 of the
    // sizing population, re-derive bounds and cell size from their current
    // arcs so expected occupancy returns to ~1 per cell.
    if (set_.size() >= kmin_rebuild_population &&
        set_.size() * 4 < sized_for_)
        rebuild();
}

void grid_index::rebuild() {
    ++rebuilds_;
    size_to(set_.items());
    for (topo::node_id id : set_.items()) place(id);
}

}  // namespace astclk::core
