#include "core/offset_ledger.hpp"

#include <cassert>

namespace astclk::core {

offset_ledger::offset_ledger(topo::group_id num_groups)
    : parent_(static_cast<std::size_t>(num_groups)),
      pot_(static_cast<std::size_t>(num_groups), 0.0),
      rank_(static_cast<std::size_t>(num_groups), 0),
      components_(num_groups) {
    for (topo::group_id g = 0; g < num_groups; ++g)
        parent_[static_cast<std::size_t>(g)] = g;
}

topo::group_id offset_ledger::find(topo::group_id g, double& pot) const {
    // Iterative find with full path compression, accumulating potentials.
    topo::group_id root = g;
    double acc = 0.0;
    while (parent_[static_cast<std::size_t>(root)] != root) {
        acc += pot_[static_cast<std::size_t>(root)];
        root = parent_[static_cast<std::size_t>(root)];
    }
    // Second pass: point everything at the root with adjusted potentials.
    topo::group_id cur = g;
    double cur_pot = acc;
    while (parent_[static_cast<std::size_t>(cur)] != root) {
        const topo::group_id next = parent_[static_cast<std::size_t>(cur)];
        const double next_pot =
            cur_pot - pot_[static_cast<std::size_t>(cur)];
        parent_[static_cast<std::size_t>(cur)] = root;
        pot_[static_cast<std::size_t>(cur)] = cur_pot;
        cur = next;
        cur_pot = next_pot;
    }
    pot = acc;
    return root;
}

bool offset_ledger::same(topo::group_id g, topo::group_id h) const {
    double pg = 0.0, ph = 0.0;
    return find(g, pg) == find(h, ph);
}

double offset_ledger::offset(topo::group_id g, topo::group_id h) const {
    double pg = 0.0, ph = 0.0;
    const topo::group_id rg = find(g, pg);
    const topo::group_id rh = find(h, ph);
    assert(rg == rh && "offset() requires bound groups");
    (void)rg;
    (void)rh;
    return pg - ph;
}

void offset_ledger::bind(topo::group_id g, topo::group_id h, double off) {
    double pg = 0.0, ph = 0.0;
    const topo::group_id rg = find(g, pg);
    const topo::group_id rh = find(h, ph);
    assert(rg != rh && "bind() requires unbound groups");
    // Want phi(g) - phi(h) == off with phi measured from the common root.
    // Attach the lower-rank root beneath the higher-rank one.
    if (rank_[static_cast<std::size_t>(rg)] <
        rank_[static_cast<std::size_t>(rh)]) {
        // phi_new(rg) = phi(h) + off - pg ... relative to rh's root.
        parent_[static_cast<std::size_t>(rg)] = rh;
        pot_[static_cast<std::size_t>(rg)] = ph + off - pg;
    } else {
        parent_[static_cast<std::size_t>(rh)] = rg;
        pot_[static_cast<std::size_t>(rh)] = pg - off - ph;
        if (rank_[static_cast<std::size_t>(rg)] ==
            rank_[static_cast<std::size_t>(rh)])
            ++rank_[static_cast<std::size_t>(rg)];
    }
    --components_;
}

}  // namespace astclk::core
