#include "core/merge_solver.hpp"

#include "rc/solve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace astclk::core {

namespace {

constexpr double klen_eps = 1e-9;    // layout units; die is ~1e5 units
constexpr double kdelay_eps = 1e-21; // seconds; ~1e-9 ps, far below reporting

/// Feasible window for the delay difference D = e(beta, C_b) - e(alpha, C_a)
/// imposed by one shared group with intervals a (A side), b (B side):
/// merged spread <= bound  <=>  D in [a.hi - b.lo - bound, bound + a.lo - b.hi].
geom::interval group_window(const geom::interval& a, const geom::interval& b,
                            double bound) {
    return {a.hi - b.lo - bound, bound + a.lo - b.hi};
}

/// Mutable copy of both sides' electrical state during planning.
struct working_state {
    topo::group_delays da, db;
    double ca = 0.0, cb = 0.0;
    std::vector<interior_snake> snakes;

    /// Accumulated snake length already planned on (root, child).
    [[nodiscard]] double planned_gamma(topo::node_id root,
                                       topo::node_id child) const {
        double g = 0.0;
        for (const auto& s : snakes)
            if (s.side_root == root && s.child == child) g += s.gamma;
        return g;
    }
};

/// Phase 2 of a merge: given the consistent D window, choose the split
/// (alpha, beta) — on the shortest connection when possible, with root-edge
/// snaking otherwise — and assemble the plan.
///
/// `soft_target`, when present, is the globally consistent delay difference
/// the soft-ledger mode prefers: the split lands as close to it as the
/// no-snake range allows, so consistency drift happens only in lieu of
/// snake wire.
merge_plan place_split(const rc::delay_model& model, const topo::tree_node& na,
                       const topo::tree_node& nb, working_state ws,
                       const geom::interval& window, int shared_count,
                       double violation, std::optional<double> soft_target) {
    const double span = na.arc.distance(nb.arc);

    double alpha = 0.0, beta = 0.0;
    bool solved = false;
    if (span > klen_eps) {
        double a_min = -std::numeric_limits<double>::infinity();
        double a_max = std::numeric_limits<double>::infinity();
        if (std::isfinite(window.hi)) {
            a_min = rc::split_for_target(model, span, ws.ca, ws.cb, window.hi)
                        .value_or(0.0);
        }
        if (std::isfinite(window.lo)) {
            a_max = rc::split_for_target(model, span, ws.ca, ws.cb, window.lo)
                        .value_or(span);
        }
        if (std::max(a_min, 0.0) <= std::min(a_max, span) + klen_eps) {
            const double s = std::clamp(a_min, 0.0, span);
            const double e = std::clamp(a_max, s, span);
            if (soft_target.has_value()) {
                // Soft-ledger rule: hit the consistent offset when free,
                // otherwise stop at the nearest end of the no-snake range.
                const double at =
                    rc::split_for_target(model, span, ws.ca, ws.cb,
                                         *soft_target)
                        .value_or(0.5 * (s + e));
                alpha = std::clamp(at, s, e);
            } else {
                // Balance heuristic: minimise the merged subtree's overall
                // delay spread (unimodal in alpha; ternary search).  This
                // turns the SDR freedom of disjoint-group merges into fewer
                // future snakes.
                const geom::interval oa = ws.da.overall();
                const geom::interval ob = ws.db.overall();
                const auto spread = [&](double al) {
                    const double ea = model.edge_delay(al, ws.ca);
                    const double eb = model.edge_delay(span - al, ws.cb);
                    return std::max(oa.hi + ea, ob.hi + eb) -
                           std::min(oa.lo + ea, ob.lo + eb);
                };
                double ts = s, te = e;
                for (int i = 0; i < 80 && (te - ts) > klen_eps; ++i) {
                    const double m1 = ts + (te - ts) / 3.0;
                    const double m2 = te - (te - ts) / 3.0;
                    if (spread(m1) <= spread(m2))
                        te = m2;
                    else
                        ts = m1;
                }
                alpha = 0.5 * (ts + te);
            }
            beta = span - alpha;
            solved = true;
        }
    } else if (window.contains(0.0, kdelay_eps)) {
        alpha = beta = 0.0;
        solved = true;
    }

    if (!solved) {
        // Root-edge snaking: extend the side whose subtree is too fast.
        if (rc::delay_diff(model, span, ws.ca, ws.cb, span) >
            window.hi) {
            // Even alpha = span leaves D too high: lengthen the A edge.
            const double target = -window.hi;
            assert(target >= 0.0);
            alpha = rc::length_for_delay(model, target, ws.ca).value_or(span);
            alpha = std::max(alpha, span);
            beta = 0.0;
        } else {
            const double target = window.lo;
            assert(target >= 0.0);
            beta = rc::length_for_delay(model, target, ws.cb).value_or(span);
            beta = std::max(beta, span);
            alpha = 0.0;
        }
    }

    merge_plan p;
    p.alpha = alpha;
    p.beta = beta;
    p.snakes = std::move(ws.snakes);
    p.shared_groups = shared_count;
    p.violation = violation;
    p.cost = alpha + beta;
    for (const auto& s : p.snakes) p.cost += s.gamma;
    p.order_cost = p.cost;
    p.new_cap = ws.ca + ws.cb + model.wire_cap(alpha + beta);
    const double ea = model.edge_delay(alpha, ws.ca);
    const double eb = model.edge_delay(beta, ws.cb);
    p.delays = topo::group_delays::merged(ws.da, ea, ws.db, eb);
    p.arc = na.arc.expanded(alpha + klen_eps)
                .intersect(nb.arc.expanded(beta + klen_eps));
    assert(!p.arc.empty());
    return p;
}

}  // namespace

std::optional<merge_plan> merge_solver::plan(const topo::clock_tree& t,
                                             topo::node_id a,
                                             topo::node_id b) const {
    return solve(t, a, b, /*forced=*/false);
}

merge_plan merge_solver::plan_forced(const topo::clock_tree& t, topo::node_id a,
                                     topo::node_id b) const {
    auto p = solve(t, a, b, /*forced=*/true);
    assert(p.has_value());
    return *p;
}

std::optional<merge_plan> merge_solver::solve(const topo::clock_tree& t,
                                              topo::node_id a, topo::node_id b,
                                              bool forced) const {
    const topo::tree_node& na = t.node(a);
    const topo::tree_node& nb = t.node(b);

    working_state ws{na.delays, nb.delays, na.subtree_cap, nb.subtree_cap, {}};
    const std::vector<topo::group_id> shared = ws.da.shared_with(ws.db);

    // --- Exact ledger mode (zero intra-group skew): offsets between
    // co-resident groups are globally consistent by construction, so the
    // conflict machinery below is unnecessary: the window is either
    // unconstrained (first contact between two offset components — the
    // router's free choice, bound at commit) or a single point read off
    // the ledger.
    if (mode_ == consistency_mode::exact) {
        const topo::group_id rep_a = ws.da.entries().front().first;
        const topo::group_id rep_b = ws.db.entries().front().first;
        geom::interval window = geom::interval::all();
        bool binds = true;
        if (ledger_->same(rep_a, rep_b)) {
            binds = false;
            const double d_req = ws.da.find(rep_a)->lo -
                                 ws.db.find(rep_b)->lo -
                                 ledger_->offset(rep_a, rep_b);
            window = geom::interval::at(d_req);
#ifndef NDEBUG
            // Every shared group must demand the same difference — exactly
            // the consistency the ledger guarantees.
            for (topo::group_id g : shared) {
                const double dg = ws.da.find(g)->lo - ws.db.find(g)->lo;
                assert(std::fabs(dg - d_req) < 1e-15);
            }
#endif
        }
        merge_plan p = place_split(model_, na, nb, std::move(ws), window,
                                   static_cast<int>(shared.size()), 0.0,
                                   std::nullopt);
        if (binds) p.order_cost += bind_bias_;
        return p;
    }

    // --- Phase 1: make the per-group windows mutually consistent ----------
    //
    // With zero intra-group bounds every window is a point (the exact DME
    // target); several shared groups conflict when their points differ.
    // Interior snaking (Fig. 5 / Eq. 5.2) shifts one group's window until
    // the intersection is non-empty.
    geom::interval window = geom::interval::all();
    double residual = 0.0;

    const auto compute_window = [&]() {
        geom::interval w = geom::interval::all();
        for (topo::group_id g : shared) {
            const geom::interval* ia = ws.da.find(g);
            const geom::interval* ib = ws.db.find(g);
            w = w.intersect(group_window(*ia, *ib, spec_.bound(g)));
        }
        return w;
    };

    // Attempt an interior snake on `root`'s direct child containing
    // `target` but not `avoid`; returns true and updates ws on success.
    const auto try_interior_snake = [&](topo::node_id root,
                                        topo::group_delays& side_delays,
                                        double& side_cap, topo::group_id target,
                                        topo::group_id avoid,
                                        double delta) -> bool {
        const topo::tree_node& r = t.node(root);
        if (r.is_leaf()) return false;
        for (int which = 0; which < 2; ++which) {
            const topo::node_id child_id = (which == 0) ? r.left : r.right;
            const topo::node_id sib_id = (which == 0) ? r.right : r.left;
            const topo::tree_node& child = t.node(child_id);
            const topo::tree_node& sib = t.node(sib_id);
            if (child.delays.find(target) == nullptr) continue;
            if (child.delays.find(avoid) != nullptr) continue;  // ineffective
            // Legality: snaking the child edge must not break frozen
            // alignments, i.e. no group may straddle the child boundary.
            if (!child.delays.disjoint_from(sib.delays)) continue;
            const double base_edge =
                ((which == 0) ? r.edge_left : r.edge_right) +
                ws.planned_gamma(root, child_id);
            const auto gamma = rc::snake_for_extra_delay(
                model_, base_edge, child.subtree_cap, delta);
            if (!gamma.has_value()) continue;
            ws.snakes.push_back({root, child_id, *gamma, delta});
            for (topo::group_id g2 : child.delays.groups()) {
                const geom::interval* iv = side_delays.find(g2);
                assert(iv != nullptr);
                side_delays.set(g2, iv->shifted(delta));
            }
            side_cap += model_.wire_cap(*gamma);
            return true;
        }
        return false;
    };

    const int max_iters = 2 * static_cast<int>(shared.size()) + 2;
    for (int iter = 0; iter <= max_iters; ++iter) {
        window = compute_window();
        if (!window.empty(kdelay_eps)) {
            residual = 0.0;
            break;
        }
        // Identify the most conflicting pair of groups.
        topo::group_id g_lo = shared.front(), g_hi = shared.front();
        double max_lo = -std::numeric_limits<double>::infinity();
        double min_hi = std::numeric_limits<double>::infinity();
        for (topo::group_id g : shared) {
            const geom::interval w =
                group_window(*ws.da.find(g), *ws.db.find(g), spec_.bound(g));
            if (w.lo > max_lo) {
                max_lo = w.lo;
                g_lo = g;
            }
            if (w.hi < min_hi) {
                min_hi = w.hi;
                g_hi = g;
            }
        }
        residual = max_lo - min_hi;
        if (iter == max_iters) break;
        const double delta = residual;
        // Shift W_{g_lo} down by delaying group g_lo on the B side, or
        // W_{g_hi} up by delaying group g_hi on the A side.
        if (try_interior_snake(b, ws.db, ws.cb, g_lo, g_hi, delta)) continue;
        if (try_interior_snake(a, ws.da, ws.ca, g_hi, g_lo, delta)) continue;
        if (!forced) return std::nullopt;
        break;  // forced: meet at the minimax point below
    }

    double violation = 0.0;
    if (window.empty(kdelay_eps)) {
        if (!forced) return std::nullopt;
        // Minimax compromise: halve the worst violation across windows.
        double max_lo = -std::numeric_limits<double>::infinity();
        double min_hi = std::numeric_limits<double>::infinity();
        for (topo::group_id g : shared) {
            const geom::interval w =
                group_window(*ws.da.find(g), *ws.db.find(g), spec_.bound(g));
            max_lo = std::max(max_lo, w.lo);
            min_hi = std::min(min_hi, w.hi);
        }
        const double mid = 0.5 * (max_lo + min_hi);
        window = {mid, mid};
        violation = residual;
    }

    // Soft-ledger mode: prefer the globally consistent offset whenever the
    // no-snake range allows it; use the median over group pairs so a few
    // drifted groups cannot hijack the target.
    std::optional<double> soft_target;
    bool binds = false;
    if (mode_ == consistency_mode::soft) {
        const topo::group_id rep_a = ws.da.entries().front().first;
        const topo::group_id rep_b = ws.db.entries().front().first;
        if (ledger_->same(rep_a, rep_b)) {
            std::vector<double> cand;
            for (const auto& [g, iva] : ws.da.entries()) {
                for (const auto& [h, ivb] : ws.db.entries()) {
                    cand.push_back(iva.mid() - ivb.mid() -
                                   ledger_->offset(g, h));
                }
            }
            std::nth_element(cand.begin(), cand.begin() + cand.size() / 2,
                             cand.end());
            soft_target = cand[cand.size() / 2];
        } else {
            binds = true;
        }
    }

    merge_plan p = place_split(model_, na, nb, std::move(ws), window,
                               static_cast<int>(shared.size()), violation,
                               soft_target);
    if (binds) p.order_cost += bind_bias_;
    return p;
}

topo::node_id merge_solver::commit(topo::clock_tree& t, topo::node_id a,
                                   topo::node_id b, const merge_plan& p) const {
    // Bind newly co-resident offset components before mutating the tree.
    if (ledger_ != nullptr && mode_ != consistency_mode::windowed) {
        const topo::group_id rep_a = t.node(a).delays.entries().front().first;
        const topo::group_id rep_b = t.node(b).delays.entries().front().first;
        if (!ledger_->same(rep_a, rep_b)) {
            const double off = p.delays.find(rep_a)->lo -
                               p.delays.find(rep_b)->lo;
            ledger_->bind(rep_a, rep_b, off);
        }
    }
    for (const auto& s : p.snakes) {
        topo::tree_node& r = t.node(s.side_root);
        if (s.child == r.left)
            r.edge_left += s.gamma;
        else {
            assert(s.child == r.right);
            r.edge_right += s.gamma;
        }
        r.subtree_cap += model_.wire_cap(s.gamma);
        const topo::tree_node& child = t.node(s.child);
        for (topo::group_id g : child.delays.groups()) {
            const geom::interval* iv = r.delays.find(g);
            assert(iv != nullptr);
            r.delays.set(g, iv->shifted(s.delay_shift));
        }
    }
    return t.add_internal(a, b, p.arc, p.alpha, p.beta, p.new_cap, p.delays);
}

}  // namespace astclk::core
