#include "core/shard.hpp"

#include "core/router_detail.hpp"
#include "core/stitch.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace astclk::core {

namespace {

/// Sink tilted coordinates, precomputed once per partition: the
/// comparator and the slab hull both index this instead of re-deriving
/// to_tilted() per comparison (~log2(k) full passes otherwise).
using tilted_points = std::vector<geom::tilted_point>;

/// Bounding slab of the sinks in idx[lo, hi) as a tilted_rect (the hull of
/// their tilted points) — the geometry the bisection splits.
geom::tilted_rect slab_of(const tilted_points& tp,
                          const std::vector<std::int32_t>& idx,
                          std::size_t lo, std::size_t hi) {
    geom::tilted_rect slab = geom::tilted_rect::empty_set();
    for (std::size_t i = lo; i < hi; ++i) {
        const geom::tilted_point& p = tp[static_cast<std::size_t>(idx[i])];
        slab = slab.hull(geom::tilted_rect::at(p));
    }
    return slab;
}

/// Recursive bisection of idx[lo, hi) into k shards, emitted left to
/// right.  Splits the longer axis of the slab at the population-
/// proportional rank; nth_element with (coordinate, sink index) keeps the
/// split deterministic under duplicate coordinates.  k <= hi - lo holds on
/// every call (the caller clamps, and the proportional rank preserves it),
/// so no shard comes out empty.
void bisect(const tilted_points& tp, std::vector<std::int32_t>& idx,
            std::size_t lo, std::size_t hi, int k, shard_partition& out) {
    if (k <= 1) {
        std::vector<std::int32_t> shard(idx.begin() + static_cast<long>(lo),
                                        idx.begin() + static_cast<long>(hi));
        std::sort(shard.begin(), shard.end());
        out.push_back(std::move(shard));
        return;
    }
    const int kl = (k + 1) / 2;
    const int kr = k - kl;
    const geom::tilted_rect slab = slab_of(tp, idx, lo, hi);
    const bool by_u = slab.u().length() >= slab.v().length();
    const auto coord = [&](std::int32_t s) {
        const geom::tilted_point& p = tp[static_cast<std::size_t>(s)];
        return by_u ? p.u : p.v;
    };
    const std::size_t m = hi - lo;
    const std::size_t left =
        std::clamp(m * static_cast<std::size_t>(kl) /
                       static_cast<std::size_t>(k),
                   static_cast<std::size_t>(kl),
                   m - static_cast<std::size_t>(kr));
    std::nth_element(idx.begin() + static_cast<long>(lo),
                     idx.begin() + static_cast<long>(lo + left),
                     idx.begin() + static_cast<long>(hi),
                     [&](std::int32_t a, std::int32_t b) {
                         const double ca = coord(a), cb = coord(b);
                         if (ca != cb) return ca < cb;
                         return a < b;
                     });
    bisect(tp, idx, lo, lo + left, kl, out);
    bisect(tp, idx, lo + left, hi, kr, out);
}

}  // namespace

shard_partition partition_sinks(const topo::instance& inst, int shards) {
    const std::size_t n = inst.sinks.size();
    if (n == 0) return {};  // no sinks, no shards (never an empty shard)
    const int k = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(shards, 1)), n));
    std::vector<std::int32_t> idx(n);
    tilted_points tp(n);
    for (std::size_t i = 0; i < n; ++i) {
        idx[i] = static_cast<std::int32_t>(i);
        tp[i] = inst.sinks[i].loc.to_tilted();
    }
    shard_partition out;
    out.reserve(static_cast<std::size_t>(k));
    bisect(tp, idx, 0, n, k, out);
    return out;
}

int auto_shard_count(std::size_t population, int concurrency) {
    /// ~512 sinks per shard keeps each sub-reduction deep in the regime
    /// where the grid rings stay local and the heaps shallow (measured on
    /// the large family: the single-thread win peaks around 500-sink
    /// shards and erodes past ~2000); 192 is the floor below which
    /// per-shard fixed costs eat the gain, and below ~3 shards' worth of
    /// sinks the partition cannot pay for itself at all.
    constexpr std::size_t ktarget = 512;
    constexpr std::size_t kmin_population = 192;
    if (population < 3 * ktarget) return 1;
    std::size_t k = (population + ktarget / 2) / ktarget;
    const std::size_t cap = population / kmin_population;
    const auto conc =
        static_cast<std::size_t>(std::max(concurrency, 1));
    k = std::max(k, std::min(conc, cap));
    return static_cast<int>(std::min(k, cap));
}

int coarse_shard_count(std::size_t population, int concurrency) {
    /// The degradation ladder's rung-2 partition: ~128 sinks per shard —
    /// four times finer than auto_shard_count's sweet spot, trading stitch
    /// seams (solution fidelity) for much shallower sub-reductions when a
    /// deadline is chasing the run.  Always at least 2 shards (rung 2 must
    /// actually change the configuration), never more than the population.
    constexpr std::size_t ktarget = 128;
    std::size_t k = (population + ktarget / 2) / ktarget;
    const auto conc = static_cast<std::size_t>(std::max(concurrency, 1));
    k = std::max({k, conc, static_cast<std::size_t>(2)});
    return static_cast<int>(
        std::min(k, std::max<std::size_t>(population, 2)));
}

int effective_shard_count(const engine_options& opt,
                          const merge_solver& solver,
                          std::size_t population) {
    // Ledger-backed solvers share one offset state across every merge;
    // independent sub-reductions would each bind their own copy, so the
    // knob silently degrades to the monolithic front (same contract as
    // the plan cache and speculation).
    if (solver.ledger() != nullptr) return 1;
    int k = opt.shards;
    if (k == 1) return 1;
    if (k < 1)
        k = auto_shard_count(
            population,
            opt.executor != nullptr ? opt.executor->concurrency() : 1);
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(k, 1)),
        std::max<std::size_t>(population, 1)));
}

route_result sharded_route(const topo::instance& inst,
                           const merge_solver& solver,
                           const engine_options& opt, bool collapse_groups,
                           int shards, routing_context& ctx) {
    assert(shards >= 2);
    const shard_partition parts = partition_sinks(inst, shards);
    const std::size_t k = parts.size();
    if (k == 0)  // sink-less instance: nothing to reduce, nothing to stitch
        throw std::invalid_argument("sharded_route: instance has no sinks");

    struct shard_run {
        topo::clock_tree tree;
        topo::node_id root = topo::knull_node;
        engine_stats stats;
    };
    std::vector<shard_run> runs(k);

    // Per-shard engine configuration: the shard is the unit of
    // parallelism, so shard reduces run sequentially (no nested executor,
    // hence no speculation) and never re-shard.  The plan-kernel knob
    // (engine_options::kernel) rides along in the copy — each shard
    // sub-reduce is a full dispatch site for the SoA batch kernels, and
    // since lane math is per-plan independent the sharded trees stay
    // bit-identical to scalar-kernel runs for every shard count.  When
    // the shard loop fans out, the cancel probe is dropped from the shard
    // tokens — probes are test instrumentation counted on the driving
    // thread only — while the flag/deadline checks stay live at every
    // shard's checkpoints.
    engine_options sopt = opt;
    sopt.executor = nullptr;
    sopt.shards = 1;
    sopt.speculate_k = 0;
    // Inner shard tokens never carry the fault plan: selection/round
    // checkpoint indexes are per-run, so concurrent shards would race for
    // the same scheduled events.  Shard-level faults fire at the per-shard
    // gate below, keyed by the partition index — deterministic under any
    // worker schedule.
    sopt.cancel.set_faults(nullptr);
    const bool fanned =
        opt.executor != nullptr && opt.executor->concurrency() > 1 && k > 1;
    if (fanned) sopt.cancel.set_probe(nullptr);
    const bottom_up_engine shard_engine(solver, sopt);

    // Each shard records its own stop status instead of throwing out of
    // the fan-out: the fanned run_jobs path completes every index after an
    // exception while the sequential fallback aborts at the first one, and
    // salvage semantics (which shards completed) must not depend on that.
    std::vector<route_status> shard_stop(k, route_status::ok);
    run_indexed(opt.executor, k, [&](std::size_t i) {
        shard_run& run = runs[i];
        cancel_token gate = opt.cancel;
        gate.set_probe(nullptr);  // gate polls stay out of probe counts
        const route_status pre = gate.poll_at(
            fault_site::shard, static_cast<std::uint64_t>(i) + 1);
        if (pre != route_status::ok) {
            shard_stop[i] = pre;
            return;
        }
        try {
            auto lease = ctx.scratch();
            auto leaves =
                detail::make_leaves(inst, run.tree, parts[i], collapse_groups);
            run.root = shard_engine.reduce(run.tree, std::move(leaves),
                                           &run.stats, lease.get());
        } catch (const route_interrupt& e) {
            shard_stop[i] = e.status();
        }
    });

    // Combine per-shard stops by severity: an explicit cancel wins (it is
    // never salvaged), then the poisoned-data fault, then transient, then
    // the deadline; ties and other statuses keep the first one seen.
    const auto severity = [](route_status s) {
        switch (s) {
            case route_status::ok: return 0;
            case route_status::deadline_exceeded: return 2;
            case route_status::transient_fault: return 3;
            case route_status::data_fault: return 4;
            case route_status::cancelled: return 5;
            default: return 1;
        }
    };
    route_status stop = route_status::ok;
    for (const route_status s : shard_stop)
        if (severity(s) > severity(stop)) stop = s;

    // Exact aggregation: every shard wrote its own stats block — the
    // completed ones fully, an interrupted one up to its last checkpoint,
    // never-started ones not at all — so summing the blocks once counts
    // each shard's work exactly once, cancellation unwinds included.
    engine_stats total;
    for (const shard_run& run : runs) total.accumulate(run.stats);
    total.shards = static_cast<int>(k);
#ifdef ASTCLK_AUDIT
    // Per-shard books and their fold, audited on the driving thread after
    // the fan-out joined (workers are quiesced; each block is stable).
    for (const shard_run& run : runs)
        audit::checkpoint("shard/stats",
                          audit::verify_stats_books(run.stats));
    audit::checkpoint("shard/total", audit::verify_stats_books(total));
#endif

    // Partial-result salvage (DESIGN.md §10): instead of discarding the
    // completed shard sub-trees on an interrupt, keep them, rebuild the
    // unfinished shards with a cheap greedy configuration under a *grace*
    // token (explicit cancel still honored; the fired deadline and the
    // fault plan are dropped — salvage must be allowed to finish), and
    // stitch as usual.  Only non-retryable stops salvage: an explicit
    // cancel always discards (the caller asked for the work to stop, not
    // for a cheaper answer), and a transient fault propagates so the
    // service's retry policy can recover it at *full* fidelity — stepping
    // down is the last resort, not the first response.
    int salvaged = 0;
    int greedy = 0;
    engine_options stitch_opt = opt;
    if (stop != route_status::ok) {
        const bool salvageable = stop == route_status::deadline_exceeded ||
                                 stop == route_status::data_fault;
        if (!opt.salvage || !salvageable)
            throw route_interrupt(stop, total);
        const cancel_token grace(opt.cancel.flag(),
                                 cancel_token::no_deadline());
        engine_options gopt = opt;
        gopt.executor = nullptr;
        gopt.shards = 1;
        gopt.speculate_k = 0;
        gopt.true_cost_ordering = false;  // pure arc-distance: cheapest order
        gopt.cancel = grace;
        const bottom_up_engine rescue(solver, gopt);
        for (std::size_t i = 0; i < k; ++i) {
            shard_run& run = runs[i];
            if (run.root != topo::knull_node) {
                ++salvaged;
                continue;
            }
            // The interrupted partial tree is unusable (its live roots died
            // with the unwind) — rebuild the shard from fresh leaves.
            run.tree = topo::clock_tree{};
            engine_stats gst;
            auto lease = ctx.scratch();
            auto leaves =
                detail::make_leaves(inst, run.tree, parts[i], collapse_groups);
            run.root = rescue.reduce(run.tree, std::move(leaves), &gst,
                                     lease.get());
            total.accumulate(gst);
            ++greedy;
        }
        stitch_opt.cancel = grace;  // stitch under the grace token too
    }

    // Graft the shard trees into one arena in partition order (node ids —
    // and with them every downstream tie-break — depend only on the
    // partition, not on which worker reduced which shard), then stitch
    // the shard roots with the phase-2 associative machinery.  The stitch
    // keeps the caller's executor and the full cancel token (the grace
    // token when salvaging); an interrupt here carries `total`, which the
    // stitch was accumulating into.
    route_result res;
    topo::clock_tree t;
    std::vector<topo::node_id> roots;
    roots.reserve(k);
    std::size_t total_nodes = k - 1;  // the stitch adds k - 1 internal nodes
    for (const shard_run& run : runs) total_nodes += run.tree.size();
    t.reserve_nodes(total_nodes);
    for (const shard_run& run : runs)
        roots.push_back(t.absorb(run.tree) + run.root);
    topo::node_id root;
    {
        auto lease = ctx.scratch();
        root = stitch_roots(solver, stitch_opt, t, std::move(roots), &total,
                            lease.get());
    }
    res.stats = total;
    detail::finalize_result(inst, std::move(t), root, res);
    if (stop != route_status::ok) {
        res.status = route_status::degraded;
        res.status_message =
            std::string("salvaged ") + std::to_string(salvaged) + " of " +
            std::to_string(k) + " shard sub-trees after " + to_string(stop) +
            "; " + std::to_string(greedy) + " completed greedily";
        res.degradation.rung = degrade_rung::salvaged;
        res.degradation.reason =
            std::string("sharded reduce interrupted: ") + to_string(stop);
        res.degradation.salvaged_shards = salvaged;
        res.degradation.greedy_shards = greedy;
    }
    return res;
}

}  // namespace astclk::core
