#include "core/shard.hpp"

#include "core/router_detail.hpp"
#include "core/stitch.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace astclk::core {

namespace {

/// Sink tilted coordinates, precomputed once per partition: the
/// comparator and the slab hull both index this instead of re-deriving
/// to_tilted() per comparison (~log2(k) full passes otherwise).
using tilted_points = std::vector<geom::tilted_point>;

/// Bounding slab of the sinks in idx[lo, hi) as a tilted_rect (the hull of
/// their tilted points) — the geometry the bisection splits.
geom::tilted_rect slab_of(const tilted_points& tp,
                          const std::vector<std::int32_t>& idx,
                          std::size_t lo, std::size_t hi) {
    geom::tilted_rect slab = geom::tilted_rect::empty_set();
    for (std::size_t i = lo; i < hi; ++i) {
        const geom::tilted_point& p = tp[static_cast<std::size_t>(idx[i])];
        slab = slab.hull(geom::tilted_rect::at(p));
    }
    return slab;
}

/// Recursive bisection of idx[lo, hi) into k shards, emitted left to
/// right.  Splits the longer axis of the slab at the population-
/// proportional rank; nth_element with (coordinate, sink index) keeps the
/// split deterministic under duplicate coordinates.  k <= hi - lo holds on
/// every call (the caller clamps, and the proportional rank preserves it),
/// so no shard comes out empty.
void bisect(const tilted_points& tp, std::vector<std::int32_t>& idx,
            std::size_t lo, std::size_t hi, int k, shard_partition& out) {
    if (k <= 1) {
        std::vector<std::int32_t> shard(idx.begin() + static_cast<long>(lo),
                                        idx.begin() + static_cast<long>(hi));
        std::sort(shard.begin(), shard.end());
        out.push_back(std::move(shard));
        return;
    }
    const int kl = (k + 1) / 2;
    const int kr = k - kl;
    const geom::tilted_rect slab = slab_of(tp, idx, lo, hi);
    const bool by_u = slab.u().length() >= slab.v().length();
    const auto coord = [&](std::int32_t s) {
        const geom::tilted_point& p = tp[static_cast<std::size_t>(s)];
        return by_u ? p.u : p.v;
    };
    const std::size_t m = hi - lo;
    const std::size_t left =
        std::clamp(m * static_cast<std::size_t>(kl) /
                       static_cast<std::size_t>(k),
                   static_cast<std::size_t>(kl),
                   m - static_cast<std::size_t>(kr));
    std::nth_element(idx.begin() + static_cast<long>(lo),
                     idx.begin() + static_cast<long>(lo + left),
                     idx.begin() + static_cast<long>(hi),
                     [&](std::int32_t a, std::int32_t b) {
                         const double ca = coord(a), cb = coord(b);
                         if (ca != cb) return ca < cb;
                         return a < b;
                     });
    bisect(tp, idx, lo, lo + left, kl, out);
    bisect(tp, idx, lo + left, hi, kr, out);
}

}  // namespace

shard_partition partition_sinks(const topo::instance& inst, int shards) {
    const std::size_t n = inst.sinks.size();
    if (n == 0) return {};  // no sinks, no shards (never an empty shard)
    const int k = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(shards, 1)), n));
    std::vector<std::int32_t> idx(n);
    tilted_points tp(n);
    for (std::size_t i = 0; i < n; ++i) {
        idx[i] = static_cast<std::int32_t>(i);
        tp[i] = inst.sinks[i].loc.to_tilted();
    }
    shard_partition out;
    out.reserve(static_cast<std::size_t>(k));
    bisect(tp, idx, 0, n, k, out);
    return out;
}

int auto_shard_count(std::size_t population, int concurrency) {
    /// ~512 sinks per shard keeps each sub-reduction deep in the regime
    /// where the grid rings stay local and the heaps shallow (measured on
    /// the large family: the single-thread win peaks around 500-sink
    /// shards and erodes past ~2000); 192 is the floor below which
    /// per-shard fixed costs eat the gain, and below ~3 shards' worth of
    /// sinks the partition cannot pay for itself at all.
    constexpr std::size_t ktarget = 512;
    constexpr std::size_t kmin_population = 192;
    if (population < 3 * ktarget) return 1;
    std::size_t k = (population + ktarget / 2) / ktarget;
    const std::size_t cap = population / kmin_population;
    const auto conc =
        static_cast<std::size_t>(std::max(concurrency, 1));
    k = std::max(k, std::min(conc, cap));
    return static_cast<int>(std::min(k, cap));
}

int effective_shard_count(const engine_options& opt,
                          const merge_solver& solver,
                          std::size_t population) {
    // Ledger-backed solvers share one offset state across every merge;
    // independent sub-reductions would each bind their own copy, so the
    // knob silently degrades to the monolithic front (same contract as
    // the plan cache and speculation).
    if (solver.ledger() != nullptr) return 1;
    int k = opt.shards;
    if (k == 1) return 1;
    if (k < 1)
        k = auto_shard_count(
            population,
            opt.executor != nullptr ? opt.executor->concurrency() : 1);
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(k, 1)),
        std::max<std::size_t>(population, 1)));
}

route_result sharded_route(const topo::instance& inst,
                           const merge_solver& solver,
                           const engine_options& opt, bool collapse_groups,
                           int shards, routing_context& ctx) {
    assert(shards >= 2);
    const shard_partition parts = partition_sinks(inst, shards);
    const std::size_t k = parts.size();
    if (k == 0)  // sink-less instance: nothing to reduce, nothing to stitch
        throw std::invalid_argument("sharded_route: instance has no sinks");

    struct shard_run {
        topo::clock_tree tree;
        topo::node_id root = topo::knull_node;
        engine_stats stats;
    };
    std::vector<shard_run> runs(k);

    // Per-shard engine configuration: the shard is the unit of
    // parallelism, so shard reduces run sequentially (no nested executor,
    // hence no speculation) and never re-shard.  When the shard loop fans
    // out, the cancel probe is dropped from the shard tokens — probes are
    // test instrumentation counted on the driving thread only — while the
    // flag/deadline checks stay live at every shard's checkpoints.
    engine_options sopt = opt;
    sopt.executor = nullptr;
    sopt.shards = 1;
    sopt.speculate_k = 0;
    const bool fanned =
        opt.executor != nullptr && opt.executor->concurrency() > 1 && k > 1;
    if (fanned) sopt.cancel.set_probe(nullptr);
    const bottom_up_engine shard_engine(solver, sopt);

    route_status stop = route_status::ok;
    try {
        run_indexed(opt.executor, k, [&](std::size_t i) {
            shard_run& run = runs[i];
            auto lease = ctx.scratch();
            auto leaves =
                detail::make_leaves(inst, run.tree, parts[i], collapse_groups);
            run.root = shard_engine.reduce(run.tree, std::move(leaves),
                                           &run.stats, lease.get());
        });
    } catch (const route_interrupt& e) {
        stop = e.status();
    }

    // Exact aggregation: every shard wrote its own stats block — the
    // completed ones fully, an interrupted one up to its last checkpoint,
    // never-started ones not at all — so summing the blocks once counts
    // each shard's work exactly once, cancellation unwinds included.
    engine_stats total;
    for (const shard_run& run : runs) total.accumulate(run.stats);
    total.shards = static_cast<int>(k);
    if (stop != route_status::ok) throw route_interrupt(stop, total);

    // Graft the shard trees into one arena in partition order (node ids —
    // and with them every downstream tie-break — depend only on the
    // partition, not on which worker reduced which shard), then stitch
    // the shard roots with the phase-2 associative machinery.  The stitch
    // keeps the caller's executor and the full cancel token; an interrupt
    // here carries `total`, which the stitch was accumulating into.
    route_result res;
    topo::clock_tree t;
    std::vector<topo::node_id> roots;
    roots.reserve(k);
    std::size_t total_nodes = k - 1;  // the stitch adds k - 1 internal nodes
    for (const shard_run& run : runs) total_nodes += run.tree.size();
    t.reserve_nodes(total_nodes);
    for (const shard_run& run : runs)
        roots.push_back(t.absorb(run.tree) + run.root);
    topo::node_id root;
    {
        auto lease = ctx.scratch();
        root = stitch_roots(solver, opt, t, std::move(roots), &total,
                            lease.get());
    }
    res.stats = total;
    detail::finalize_result(inst, std::move(t), root, res);
    return res;
}

}  // namespace astclk::core
