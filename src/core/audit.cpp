#include "core/audit.hpp"

#include "core/route_context.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <sstream>
#include <unordered_set>

namespace astclk::core::audit {

namespace {

std::atomic<std::uint64_t> g_checkpoints{0};

}  // namespace

std::uint64_t checkpoints_run() noexcept {
    return g_checkpoints.load(std::memory_order_relaxed);
}

void checkpoint(const char* site, const std::string& diagnostic) {
    g_checkpoints.fetch_add(1, std::memory_order_relaxed);
    if (!diagnostic.empty())
        throw violation(std::string("audit[") + site + "]: " + diagnostic);
}

std::string verify_tree_structure(const topo::clock_tree& t,
                                  std::size_t num_sinks) {
    const std::string base = t.check_structure(num_sinks);
    if (!base.empty()) return base;
    std::ostringstream err;
    if (t.source_edge() < 0.0) {
        err << "negative source edge " << t.source_edge();
        return err.str();
    }
    for (std::size_t i = 0; i < t.size(); ++i) {
        const topo::tree_node& n = t.node(static_cast<topo::node_id>(i));
        if (n.is_leaf() &&
            (n.left != topo::knull_node || n.right != topo::knull_node)) {
            err << "leaf " << i << " has children";
            return err.str();
        }
        if (n.edge_left < 0.0 || n.edge_right < 0.0) {
            err << "node " << i << " has a negative electrical edge ("
                << n.edge_left << ", " << n.edge_right << ")";
            return err.str();
        }
        if (n.subtree_cap < 0.0) {
            err << "node " << i << " has negative downstream capacitance "
                << n.subtree_cap;
            return err.str();
        }
    }
    return {};
}

/// Friend-of-grid_index accessor shim: the auditor reads the private
/// registration state (spans, cell vectors, slab mirror, packed arcs)
/// without widening the class's public surface.
struct grid_inspector {
    static std::string check(const grid_index& g, const topo::clock_tree& t) {
        std::ostringstream err;
        std::unordered_set<topo::node_id> live(g.active().begin(),
                                               g.active().end());
        if (live.size() != g.active().size()) return "duplicate active id";

        // Active side: span matches the node's current arc, registration
        // covers exactly the span, the packed-arc mirror is current.
        for (const topo::node_id id : g.active()) {
            const auto sid = static_cast<std::size_t>(id);
            if (sid >= g.span_.size() || sid >= g.arcs_.size()) {
                err << "active id " << id << " has no registration record";
                return err.str();
            }
            const geom::tilted_rect& arc = t.node(id).arc;
            const grid_index::cell_range want = g.range_of(arc);
            const grid_index::cell_range& have = g.span_[sid];
            if (want.u0 != have.u0 || want.u1 != have.u1 ||
                want.v0 != have.v0 || want.v1 != have.v1) {
                err << "id " << id << " registered span [" << have.u0 << ","
                    << have.u1 << "]x[" << have.v0 << "," << have.v1
                    << "] does not cover its arc's range [" << want.u0 << ","
                    << want.u1 << "]x[" << want.v0 << "," << want.v1 << "]";
                return err.str();
            }
            const packed_arc mirror = g.arcs_[sid];
            const packed_arc fresh = packed_arc::of(arc);
            if (mirror.u_lo != fresh.u_lo || mirror.u_hi != fresh.u_hi ||
                mirror.v_lo != fresh.v_lo || mirror.v_hi != fresh.v_hi) {
                err << "id " << id << " packed-arc mirror is stale";
                return err.str();
            }
            for (int cv = have.v0; cv <= have.v1; ++cv) {
                for (int cu = have.u0; cu <= have.u1; ++cu) {
                    const auto& cell = g.cells_[g.cell_at(cu, cv)];
                    const auto hits = static_cast<int>(
                        std::count(cell.begin(), cell.end(), id));
                    if (hits != 1) {
                        err << "id " << id << " appears " << hits
                            << " times in covered cell (" << cu << "," << cv
                            << ")";
                        return err.str();
                    }
                }
            }
        }

        // Cell side: only live ids, each within its span; slab occupancy
        // mirror agrees with the authoritative vectors.
        for (std::size_t c = 0; c < g.cells_.size(); ++c) {
            const auto& cell = g.cells_[c];
            const int cu = static_cast<int>(c % static_cast<std::size_t>(g.nu_));
            const int cv = static_cast<int>(c / static_cast<std::size_t>(g.nu_));
            for (const topo::node_id id : cell) {
                if (live.count(id) == 0) {
                    err << "cell (" << cu << "," << cv
                        << ") holds non-active id " << id;
                    return err.str();
                }
                const grid_index::cell_range& sp =
                    g.span_[static_cast<std::size_t>(id)];
                if (cu < sp.u0 || cu > sp.u1 || cv < sp.v0 || cv > sp.v1) {
                    err << "id " << id << " found outside its span at cell ("
                        << cu << "," << cv << ")";
                    return err.str();
                }
            }
            const grid_index::slab_cell& sc = g.slab_[c];
            if (sc.n != cell.size()) {
                err << "slab population " << sc.n << " != cell population "
                    << cell.size() << " at cell (" << cu << "," << cv << ")";
                return err.str();
            }
            if (sc.n <= grid_index::slab_cell::kinline) {
                std::unordered_set<topo::node_id> inline_ids;
                for (std::uint32_t k = 0; k < sc.n; ++k)
                    inline_ids.insert(sc.ids[k]);
                if (inline_ids.size() != cell.size()) {
                    err << "slab inline ids duplicate at cell (" << cu << ","
                        << cv << ")";
                    return err.str();
                }
                for (const topo::node_id id : cell) {
                    if (inline_ids.count(id) == 0) {
                        err << "slab inline ids miss id " << id
                            << " at cell (" << cu << "," << cv << ")";
                        return err.str();
                    }
                }
            }
        }
        return {};
    }
};

std::string verify_grid_vs_live_set(const grid_index& g,
                                    const topo::clock_tree& t) {
    return grid_inspector::check(g, t);
}

std::string verify_scratch_lease_balance(const routing_context& ctx) {
    const std::size_t pooled = ctx.pooled_scratch();
    const std::size_t allocated = ctx.allocated_scratch();
    if (pooled == allocated) return {};
    std::ostringstream err;
    err << "scratch-lease imbalance: " << allocated
        << " scratch buffers allocated but only " << pooled
        << " back in the pool (" << (allocated - pooled)
        << " leaked or still leased)";
    return err.str();
}

std::string verify_stats_books(const engine_stats& s) {
    std::ostringstream err;
    const auto bad = [&err](const char* name, long long v) {
        err << "negative counter " << name << " = " << v;
        return err.str();
    };
    if (s.merges < 0) return bad("merges", s.merges);
    if (s.disjoint_merges < 0) return bad("disjoint_merges", s.disjoint_merges);
    if (s.shared_merges < 0) return bad("shared_merges", s.shared_merges);
    if (s.multi_shared_merges < 0)
        return bad("multi_shared_merges", s.multi_shared_merges);
    if (s.root_snakes < 0) return bad("root_snakes", s.root_snakes);
    if (s.interior_snakes < 0) return bad("interior_snakes", s.interior_snakes);
    if (s.rejected_pairs < 0) return bad("rejected_pairs", s.rejected_pairs);
    if (s.forced_merges < 0) return bad("forced_merges", s.forced_merges);
    if (s.rounds < 0) return bad("rounds", s.rounds);
    if (s.plan_cache_hits < 0) return bad("plan_cache_hits", s.plan_cache_hits);
    if (s.plan_cache_misses < 0)
        return bad("plan_cache_misses", s.plan_cache_misses);
    if (s.speculated_plans < 0)
        return bad("speculated_plans", s.speculated_plans);
    if (s.speculative_hits < 0)
        return bad("speculative_hits", s.speculative_hits);
    if (s.wasted_speculation < 0)
        return bad("wasted_speculation", s.wasted_speculation);
    if (s.batch_planned < 0) return bad("batch_planned", s.batch_planned);
    if (s.kernel_fallbacks < 0)
        return bad("kernel_fallbacks", s.kernel_fallbacks);
    if (s.nn_scratch_reuses < 0)
        return bad("nn_scratch_reuses", s.nn_scratch_reuses);
    if (s.shards < 0) return bad("shards", s.shards);
    if (s.merges != s.disjoint_merges + s.shared_merges) {
        err << "merge taxonomy does not sum: merges " << s.merges
            << " != disjoint " << s.disjoint_merges << " + shared "
            << s.shared_merges;
        return err.str();
    }
    if (s.multi_shared_merges > s.shared_merges) {
        err << "multi_shared_merges " << s.multi_shared_merges
            << " exceeds shared_merges " << s.shared_merges;
        return err.str();
    }
    if (s.speculative_hits > s.speculated_plans) {
        err << "speculative_hits " << s.speculative_hits
            << " exceeds speculated_plans " << s.speculated_plans;
        return err.str();
    }
    // wasted is written once by finalize_stats (and summed by accumulate);
    // mid-run it is still 0 — both states must close the books.
    if (s.wasted_speculation != 0 &&
        s.wasted_speculation != s.speculated_plans - s.speculative_hits) {
        err << "speculation books do not close: wasted "
            << s.wasted_speculation << " != dispatched " << s.speculated_plans
            << " - consumed " << s.speculative_hits;
        return err.str();
    }
    if (s.worst_violation < 0.0) {
        err << "negative worst_violation " << s.worst_violation;
        return err.str();
    }
    if (s.worst_violation > 0.0 && s.forced_merges == 0) {
        err << "worst_violation " << s.worst_violation
            << " recorded without any forced merge";
        return err.str();
    }
    if (s.snake_wire < -1e-6) {
        err << "negative snake_wire " << s.snake_wire;
        return err.str();
    }
    return {};
}

std::string verify_plan_cache_generations(
    const plan_cache& pc, const std::vector<std::uint32_t>& gen) {
    std::ostringstream err;
    std::string out;
    pc.for_each([&](std::uint64_t key, const plan_cache::entry& e) {
        if (!out.empty()) return;
        const auto a = static_cast<std::size_t>(key >> 32);
        const auto b = static_cast<std::size_t>(key & 0xffffffffu);
        if (a >= gen.size() || b >= gen.size()) {
            err << "plan-cache entry references unknown node (pair " << a
                << ", " << b << "; " << gen.size() << " tracked)";
            out = err.str();
            return;
        }
        if (e.gen_a > gen[a] || e.gen_b > gen[b]) {
            err << "plan-cache entry for pair (" << a << ", " << b
                << ") stamped from the future: (" << e.gen_a << ", "
                << e.gen_b << ") vs current (" << gen[a] << ", " << gen[b]
                << ")";
            out = err.str();
        }
    });
    return out;
}

}  // namespace astclk::core::audit
