#pragma once

/// \file grid_index.hpp
/// Uniform spatial grid nearest-neighbour backend over active subtree
/// roots — the sub-quadratic replacement for nn_index's linear scan.
///
/// Arcs are tilted_rects: axis-aligned boxes in tilted (u, v) space whose
/// pairwise distance is the L-infinity gap — so a uniform grid over (u, v)
/// prunes exactly the metric the merge engine orders by.  Each active root
/// is registered in every cell its arc's (u, v) box overlaps.
///
/// The grid is sized from the initial roots, but committed merging
/// segments can escape the children's hull in the non-binding axis
/// (A.expanded(alpha) ∩ B.expanded(beta) widens where the gap is not the
/// distance), so later arcs may lie partly outside the initial bounding
/// box.  Out-of-range coordinates are clamped into the border cells, and
/// that clamping is load-bearing *and* sound: the coordinate -> cell map
/// with clamping is monotone and 1-Lipschitz (|cell(x) - cell(q)| <=
/// |x - q| / cell + 1 still holds after clamping both sides), so a
/// candidate registered at Chebyshev cell-distance r from the query's
/// covered range is at true arc distance >= (r-1) * cell regardless of
/// clamping.  Do not remove the clamps on the strength of a hull
/// argument.
///
/// `nearest_if` runs a ring (spiral) expansion outward from the query
/// arc's covered cell range, with that (r-1) * cell admissible lower
/// bound stopping the search as soon as the next ring cannot beat (or
/// tie) the best candidate found.  Because arcs are registered in *every*
/// overlapped cell, a candidate is always discovered at the ring of its
/// closest cell.  Rings are scanned to `lb <= best` (not `<`) so
/// equal-distance candidates in farther rings still participate in the
/// deterministic `other < best` tie-break — the grid returns
/// bit-identical answers to nn_index.
///
/// Cell size is chosen for ~O(1) expected occupancy: the bounding extent
/// divided by ceil(sqrt(n)) cells per axis.
///
/// **Occupancy-adaptive rebuild**: the active set shrinks as the engine
/// merges (two roots out, one in per commit), so cells sized for the
/// initial population go mostly empty and ring expansions walk farther.
/// When the active set drops below 1/4 of the population the grid was last
/// sized for, `erase` rebuilds the grid over the survivors' current arcs
/// with correspondingly larger cells.  Rebuilds never change any answer:
/// `nearest_if` is exact for every cell size (the ring lower bound is
/// admissible regardless), `for_each_within` stays an admissible superset,
/// and the active_set — the engine's slot tie-break — is untouched.

#include "core/nn_index.hpp"
#include "core/plan_kernels.hpp"
#include "topo/tree.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace astclk::core {

namespace audit {
struct grid_inspector;
}  // namespace audit

class grid_index {
  public:
    /// Build over the given roots: bounds from their arcs, then insert all.
    grid_index(const topo::clock_tree* tree,
               const std::vector<topo::node_id>& roots);

    void insert(topo::node_id id);
    void erase(topo::node_id id);

    [[nodiscard]] const std::vector<topo::node_id>& active() const {
        return set_.items();
    }
    [[nodiscard]] std::size_t size() const { return set_.size(); }

    /// Slot of an active id in `active()`; identical contract to
    /// nn_index::slot_of (both backends share the active_set bookkeeping).
    [[nodiscard]] std::int32_t slot_of(topo::node_id id) const {
        return set_.slot_of(id);
    }

    /// How many occupancy-adaptive rebuilds have run (diagnostics/tests).
    [[nodiscard]] int rebuilds() const { return rebuilds_; }

    /// Current cell counts per axis (diagnostics/tests: the sizing clamp
    /// for tiny populations is asserted through these).
    [[nodiscard]] int cells_u() const { return nu_; }
    [[nodiscard]] int cells_v() const { return nv_; }

    /// Nearest active root to `id` by arc distance, skipping `id` itself
    /// and banned partners; identical contract (including id tie-breaks) to
    /// nn_index::nearest_if.
    template <class Banned>
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>> nearest_if(
        topo::node_id id, Banned banned) const {
        const geom::tilted_rect& arc = tree_->node(id).arc;
        const cell_range q = range_of(arc);
        topo::node_id best = topo::knull_node;
        double best_d = std::numeric_limits<double>::infinity();
        const auto consider = [&](topo::node_id other) {
            if (other == id) return;
            if (banned(pair_key(id, other))) return;
            const double d = arc.distance(tree_->node(other).arc);
            if (d < best_d || (d == best_d && other < best)) {
                best_d = d;
                best = other;
            }
        };
        const int max_ring = max_ring_from(q);
        for (int r = 0; r <= max_ring; ++r) {
            if (best != topo::knull_node &&
                static_cast<double>(r - 1) * cell_ > best_d)
                break;  // ring lower bound beats every remaining candidate
            visit_ring(q, r, consider);
        }
        if (best == topo::knull_node) return std::nullopt;
        return std::make_pair(best, best_d);
    }

    /// Batched variant of nearest_if (DESIGN.md §11): the ring walk reads
    /// the contiguous cell-slab mirror and hands each cell's candidate
    /// run to the fused SoA kernel `batch_arc_nearest`, which computes
    /// the gaps over the packed-arc mirror and folds the running best in
    /// the same pass — no per-candidate materialisation at all for
    /// inline cells; spilled cells (population past the slab's inline
    /// capacity) are first compacted into the caller's scratch so the
    /// kernel still consumes one dense id run.  Bit-identical to
    /// nearest_if:
    ///  * the walk visits exactly the scalar walk's ring sets (the slab
    ///    mirrors cell membership); within a ring the candidate *order*
    ///    may differ from the cell vectors', but the fold is a strict
    ///    lexicographic min over (distance, id) — visit-order independent
    ///    — and the post-ring best that drives the ring-bound early exit
    ///    is that same min, so termination matches too;
    ///  * the ban check runs only for candidates that would improve the
    ///    running best — equivalent to checking every candidate, since a
    ///    banned candidate never updates the best in either scheme (and
    ///    the predicate itself reads nothing bans could change);
    ///  * the kernel's branchless gap is bit-identical to
    ///    `interval::gap` (see plan_kernels.hpp).
    template <class Banned>
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>>
    nearest_if_batched(topo::node_id id, Banned banned,
                       nn_query_scratch& scratch) const {
        if (scratch.ids.capacity() != 0) ++scratch.reuses;
        const geom::tilted_rect& arc = tree_->node(id).arc;
        const packed_arc q = arcs_[static_cast<std::size_t>(id)];
        const cell_range qr = range_of(arc);
        topo::node_id best = topo::knull_node;
        double best_d = std::numeric_limits<double>::infinity();
        const int max_ring = max_ring_from(qr);
        for (int r = 0; r <= max_ring; ++r) {
            if (best != topo::knull_node &&
                static_cast<double>(r - 1) * cell_ > best_d)
                break;  // ring lower bound beats every remaining candidate
            visit_ring_cells(qr, r, [&](std::size_t c) {
                const slab_cell& sc = slab_[c];
                if (sc.n <= slab_cell::kinline) {
                    batch_arc_nearest(arcs_.data(), sc.ids, sc.n, q, id,
                                      banned, best, best_d);
                } else {
                    scratch.ids.clear();
                    for (topo::node_id o : cells_[c])
                        scratch.ids.push_back(o);
                    batch_arc_nearest(arcs_.data(), scratch.ids.data(),
                                      scratch.ids.size(), q, id, banned,
                                      best, best_d);
                }
            });
        }
        if (best == topo::knull_node) return std::nullopt;
        return std::make_pair(best, best_d);
    }

    /// Invoke `fn(id)` for every active root registered in a cell within
    /// `radius` of `rect`'s covered range — a superset of the roots whose
    /// arc lies within `radius` of `rect`.  Ids touching several cells are
    /// reported once per cell; callers must be idempotent.
    template <class Fn>
    void for_each_within(const geom::tilted_rect& rect, double radius,
                         Fn fn) const {
        const cell_range q = range_of(rect.expanded(std::max(radius, 0.0)));
        for (int cv = q.v0; cv <= q.v1; ++cv)
            for (int cu = q.u0; cu <= q.u1; ++cu)
                for (topo::node_id id : cells_[cell_at(cu, cv)]) fn(id);
    }

    /// Batched for_each_within: the same candidate multiset as the scalar
    /// walk (gathered from the cell-slab mirror, so per-cell order may
    /// differ — callers' folds must be visit-order independent as well as
    /// idempotent, which the engine's strict-`<` NN fold is), and
    /// `fn(id, d)` additionally receives the arc distance of `rect` to
    /// the candidate, computed by the SoA kernel (the gap is symmetric
    /// bitwise, so either orientation matches a scalar
    /// `candidate.distance(rect)`).  Duplicates are reported once per
    /// cell, distances included.
    template <class Fn>
    void for_each_within_batched(const geom::tilted_rect& rect, double radius,
                                 nn_query_scratch& scratch, Fn fn) const {
        if (scratch.ids.capacity() != 0) ++scratch.reuses;
        const cell_range q = range_of(rect.expanded(std::max(radius, 0.0)));
        scratch.ids.clear();
        for (int cv = q.v0; cv <= q.v1; ++cv)
            for (int cu = q.u0; cu <= q.u1; ++cu)
                gather_cell(cell_at(cu, cv), topo::knull_node, scratch.ids);
        batch_arc_for_each(arcs_.data(), scratch.ids.data(),
                           scratch.ids.size(), packed_arc::of(rect), fn);
    }

  private:
    /// The invariant auditor (core/audit.hpp) cross-checks the private
    /// registration state — span_, cells_, slab_, arcs_ — against the
    /// live set and the tree's arcs without widening the public surface.
    friend struct audit::grid_inspector;

    struct cell_range {
        int u0 = 0, u1 = 0, v0 = 0, v1 = 0;
    };

    /// Contiguous per-cell occupancy record for the batched gather
    /// (DESIGN.md §11): one 32-byte slot per cell — the population count
    /// and up to kinline inline ids.  A ring row reads these slots
    /// sequentially instead of chasing every cell vector's heap
    /// allocation, which is where a query at ~1 expected occupant per
    /// cell spends most of its time.  A cell whose population exceeds
    /// kinline (border-cell clamping can pile escaped arcs up) is
    /// *spilled*: `n` keeps the true count, the inline ids stop being
    /// authoritative, and the gather falls back to the cell vector; an
    /// erase that brings the cell back to kinline refills the inline ids
    /// from the vector.  Swap-pop erases permute the inline order, so
    /// slab gathers may report a cell's ids in a different order than
    /// the vectors — only folds that are order-independent (the batched
    /// queries' lexicographic-min and strict-`<` folds) may read it.
    struct slab_cell {
        static constexpr std::uint32_t kinline = 7;
        std::uint32_t n = 0;          ///< true population of the cell
        topo::node_id ids[kinline];   ///< valid iff n <= kinline
    };
    static_assert(sizeof(slab_cell) == 32, "two cells per cache line");

    /// Below this population the adaptive rebuild stops bothering: the
    /// whole grid is a handful of cells either way.
    static constexpr std::size_t kmin_rebuild_population = 16;

    /// Cell-count floor per axis.  sqrt-sizing a tiny population (a small
    /// sub-reduction shard, n < ~64) would build a near-degenerate grid —
    /// in the limit one cell, i.e. a linear scan paying grid overhead —
    /// so sizing clamps to at least this many cells per axis.  Purely a
    /// performance knob: answers are exact for every cell size.
    static constexpr int kmin_cells_per_axis = 8;

    /// Size origin/cell/cells_ for `items` (bounds from their current
    /// arcs); does not touch the active_set registration.
    void size_to(const std::vector<topo::node_id>& items);
    /// Register an id's arc in the covering cells (set_ handled by caller).
    void place(topo::node_id id);
    /// Re-size and re-place every active id over its current arc.
    void rebuild();

    [[nodiscard]] std::size_t cell_at(int cu, int cv) const {
        return static_cast<std::size_t>(cv) * static_cast<std::size_t>(nu_) +
               static_cast<std::size_t>(cu);
    }
    [[nodiscard]] int clamp_u(int c) const {
        return std::clamp(c, 0, nu_ - 1);
    }
    [[nodiscard]] int clamp_v(int c) const {
        return std::clamp(c, 0, nv_ - 1);
    }
    [[nodiscard]] cell_range range_of(const geom::tilted_rect& r) const;
    [[nodiscard]] int max_ring_from(const cell_range& q) const;

    /// Gather the ids registered in cell `c` into `out`, skipping `self`
    /// (pass knull_node to keep everything): inline from the slab record,
    /// or from the authoritative cell vector when the cell is spilled.
    void gather_cell(std::size_t c, topo::node_id self,
                     std::vector<topo::node_id>& out) const {
        const slab_cell& sc = slab_[c];
        if (sc.n <= slab_cell::kinline) {
            for (std::uint32_t k = 0; k < sc.n; ++k)
                if (sc.ids[k] != self) out.push_back(sc.ids[k]);
        } else {
            for (topo::node_id id : cells_[c])
                if (id != self) out.push_back(id);
        }
    }

    /// Apply `fn` to the index of every cell at Chebyshev cell distance
    /// exactly `r` from range `q` (ring 0 is the range itself).
    template <class Fn>
    void visit_ring_cells(const cell_range& q, int r, Fn fn) const {
        const int u0 = q.u0 - r, u1 = q.u1 + r;
        const int v0 = q.v0 - r, v1 = q.v1 + r;
        const auto visit_row = [&](int cv, int a, int b) {
            if (cv < 0 || cv >= nv_) return;
            a = clamp_u(a);
            b = clamp_u(b);
            for (int cu = a; cu <= b; ++cu) fn(cell_at(cu, cv));
        };
        if (r == 0) {
            for (int cv = v0; cv <= v1; ++cv) visit_row(cv, u0, u1);
            return;
        }
        visit_row(v0, u0, u1);  // bottom edge
        visit_row(v1, u0, u1);  // top edge
        for (int cv = v0 + 1; cv <= v1 - 1; ++cv) {
            if (cv < 0 || cv >= nv_) continue;
            if (u0 >= 0) fn(cell_at(u0, cv));
            if (u1 < nu_) fn(cell_at(u1, cv));
        }
    }

    /// Apply `fn` to every candidate in the cells at Chebyshev cell
    /// distance exactly `r` from range `q` (ring 0 is the range itself).
    /// Reads the authoritative cell vectors — the scalar (seed) path.
    template <class Fn>
    void visit_ring(const cell_range& q, int r, Fn fn) const {
        visit_ring_cells(q, r, [&](std::size_t c) {
            for (topo::node_id id : cells_[c]) fn(id);
        });
    }

    const topo::clock_tree* tree_;
    active_set set_;
    std::vector<cell_range> span_;  ///< id -> registered cell range
    /// Cache-dense id -> arc-endpoint mirror for the batched distance
    /// kernel (written by place(); entries of erased ids go stale but are
    /// never gathered — only registered ids reach the kernel).
    std::vector<packed_arc> arcs_;
    std::vector<std::vector<topo::node_id>> cells_;
    std::vector<slab_cell> slab_;  ///< cell -> contiguous occupancy mirror
    double u_lo_ = 0.0, v_lo_ = 0.0;  ///< grid origin in tilted space
    double cell_ = 1.0;               ///< cell side, tilted units
    double inv_cell_ = 1.0;
    int nu_ = 1, nv_ = 1;
    std::size_t sized_for_ = 1;  ///< population the cells were sized for
    int rebuilds_ = 0;           ///< occupancy-adaptive rebuild count
};

}  // namespace astclk::core
