#pragma once

/// \file grid_index.hpp
/// Uniform spatial grid nearest-neighbour backend over active subtree
/// roots — the sub-quadratic replacement for nn_index's linear scan.
///
/// Arcs are tilted_rects: axis-aligned boxes in tilted (u, v) space whose
/// pairwise distance is the L-infinity gap — so a uniform grid over (u, v)
/// prunes exactly the metric the merge engine orders by.  Each active root
/// is registered in every cell its arc's (u, v) box overlaps.
///
/// The grid is sized from the initial roots, but committed merging
/// segments can escape the children's hull in the non-binding axis
/// (A.expanded(alpha) ∩ B.expanded(beta) widens where the gap is not the
/// distance), so later arcs may lie partly outside the initial bounding
/// box.  Out-of-range coordinates are clamped into the border cells, and
/// that clamping is load-bearing *and* sound: the coordinate -> cell map
/// with clamping is monotone and 1-Lipschitz (|cell(x) - cell(q)| <=
/// |x - q| / cell + 1 still holds after clamping both sides), so a
/// candidate registered at Chebyshev cell-distance r from the query's
/// covered range is at true arc distance >= (r-1) * cell regardless of
/// clamping.  Do not remove the clamps on the strength of a hull
/// argument.
///
/// `nearest_if` runs a ring (spiral) expansion outward from the query
/// arc's covered cell range, with that (r-1) * cell admissible lower
/// bound stopping the search as soon as the next ring cannot beat (or
/// tie) the best candidate found.  Because arcs are registered in *every*
/// overlapped cell, a candidate is always discovered at the ring of its
/// closest cell.  Rings are scanned to `lb <= best` (not `<`) so
/// equal-distance candidates in farther rings still participate in the
/// deterministic `other < best` tie-break — the grid returns
/// bit-identical answers to nn_index.
///
/// Cell size is chosen for ~O(1) expected occupancy: the bounding extent
/// divided by ceil(sqrt(n)) cells per axis.
///
/// **Occupancy-adaptive rebuild**: the active set shrinks as the engine
/// merges (two roots out, one in per commit), so cells sized for the
/// initial population go mostly empty and ring expansions walk farther.
/// When the active set drops below 1/4 of the population the grid was last
/// sized for, `erase` rebuilds the grid over the survivors' current arcs
/// with correspondingly larger cells.  Rebuilds never change any answer:
/// `nearest_if` is exact for every cell size (the ring lower bound is
/// admissible regardless), `for_each_within` stays an admissible superset,
/// and the active_set — the engine's slot tie-break — is untouched.

#include "core/nn_index.hpp"
#include "topo/tree.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace astclk::core {

class grid_index {
  public:
    /// Build over the given roots: bounds from their arcs, then insert all.
    grid_index(const topo::clock_tree* tree,
               const std::vector<topo::node_id>& roots);

    void insert(topo::node_id id);
    void erase(topo::node_id id);

    [[nodiscard]] const std::vector<topo::node_id>& active() const {
        return set_.items();
    }
    [[nodiscard]] std::size_t size() const { return set_.size(); }

    /// Slot of an active id in `active()`; identical contract to
    /// nn_index::slot_of (both backends share the active_set bookkeeping).
    [[nodiscard]] std::int32_t slot_of(topo::node_id id) const {
        return set_.slot_of(id);
    }

    /// How many occupancy-adaptive rebuilds have run (diagnostics/tests).
    [[nodiscard]] int rebuilds() const { return rebuilds_; }

    /// Current cell counts per axis (diagnostics/tests: the sizing clamp
    /// for tiny populations is asserted through these).
    [[nodiscard]] int cells_u() const { return nu_; }
    [[nodiscard]] int cells_v() const { return nv_; }

    /// Nearest active root to `id` by arc distance, skipping `id` itself
    /// and banned partners; identical contract (including id tie-breaks) to
    /// nn_index::nearest_if.
    template <class Banned>
    [[nodiscard]] std::optional<std::pair<topo::node_id, double>> nearest_if(
        topo::node_id id, Banned banned) const {
        const geom::tilted_rect& arc = tree_->node(id).arc;
        const cell_range q = range_of(arc);
        topo::node_id best = topo::knull_node;
        double best_d = std::numeric_limits<double>::infinity();
        const auto consider = [&](topo::node_id other) {
            if (other == id) return;
            if (banned(pair_key(id, other))) return;
            const double d = arc.distance(tree_->node(other).arc);
            if (d < best_d || (d == best_d && other < best)) {
                best_d = d;
                best = other;
            }
        };
        const int max_ring = max_ring_from(q);
        for (int r = 0; r <= max_ring; ++r) {
            if (best != topo::knull_node &&
                static_cast<double>(r - 1) * cell_ > best_d)
                break;  // ring lower bound beats every remaining candidate
            visit_ring(q, r, consider);
        }
        if (best == topo::knull_node) return std::nullopt;
        return std::make_pair(best, best_d);
    }

    /// Invoke `fn(id)` for every active root registered in a cell within
    /// `radius` of `rect`'s covered range — a superset of the roots whose
    /// arc lies within `radius` of `rect`.  Ids touching several cells are
    /// reported once per cell; callers must be idempotent.
    template <class Fn>
    void for_each_within(const geom::tilted_rect& rect, double radius,
                         Fn fn) const {
        const cell_range q = range_of(rect.expanded(std::max(radius, 0.0)));
        for (int cv = q.v0; cv <= q.v1; ++cv)
            for (int cu = q.u0; cu <= q.u1; ++cu)
                for (topo::node_id id : cells_[cell_at(cu, cv)]) fn(id);
    }

  private:
    struct cell_range {
        int u0 = 0, u1 = 0, v0 = 0, v1 = 0;
    };

    /// Below this population the adaptive rebuild stops bothering: the
    /// whole grid is a handful of cells either way.
    static constexpr std::size_t kmin_rebuild_population = 16;

    /// Cell-count floor per axis.  sqrt-sizing a tiny population (a small
    /// sub-reduction shard, n < ~64) would build a near-degenerate grid —
    /// in the limit one cell, i.e. a linear scan paying grid overhead —
    /// so sizing clamps to at least this many cells per axis.  Purely a
    /// performance knob: answers are exact for every cell size.
    static constexpr int kmin_cells_per_axis = 8;

    /// Size origin/cell/cells_ for `items` (bounds from their current
    /// arcs); does not touch the active_set registration.
    void size_to(const std::vector<topo::node_id>& items);
    /// Register an id's arc in the covering cells (set_ handled by caller).
    void place(topo::node_id id);
    /// Re-size and re-place every active id over its current arc.
    void rebuild();

    [[nodiscard]] std::size_t cell_at(int cu, int cv) const {
        return static_cast<std::size_t>(cv) * static_cast<std::size_t>(nu_) +
               static_cast<std::size_t>(cu);
    }
    [[nodiscard]] int clamp_u(int c) const {
        return std::clamp(c, 0, nu_ - 1);
    }
    [[nodiscard]] int clamp_v(int c) const {
        return std::clamp(c, 0, nv_ - 1);
    }
    [[nodiscard]] cell_range range_of(const geom::tilted_rect& r) const;
    [[nodiscard]] int max_ring_from(const cell_range& q) const;

    /// Apply `fn` to every candidate in the cells at Chebyshev cell
    /// distance exactly `r` from range `q` (ring 0 is the range itself).
    template <class Fn>
    void visit_ring(const cell_range& q, int r, Fn fn) const {
        const int u0 = q.u0 - r, u1 = q.u1 + r;
        const int v0 = q.v0 - r, v1 = q.v1 + r;
        const auto visit_row = [&](int cv, int a, int b) {
            if (cv < 0 || cv >= nv_) return;
            a = clamp_u(a);
            b = clamp_u(b);
            for (int cu = a; cu <= b; ++cu)
                for (topo::node_id id : cells_[cell_at(cu, cv)]) fn(id);
        };
        if (r == 0) {
            for (int cv = v0; cv <= v1; ++cv) visit_row(cv, u0, u1);
            return;
        }
        visit_row(v0, u0, u1);  // bottom edge
        visit_row(v1, u0, u1);  // top edge
        for (int cv = v0 + 1; cv <= v1 - 1; ++cv) {
            if (cv < 0 || cv >= nv_) continue;
            if (u0 >= 0)
                for (topo::node_id id : cells_[cell_at(u0, cv)]) fn(id);
            if (u1 < nu_)
                for (topo::node_id id : cells_[cell_at(u1, cv)]) fn(id);
        }
    }

    const topo::clock_tree* tree_;
    active_set set_;
    std::vector<cell_range> span_;  ///< id -> registered cell range
    std::vector<std::vector<topo::node_id>> cells_;
    double u_lo_ = 0.0, v_lo_ = 0.0;  ///< grid origin in tilted space
    double cell_ = 1.0;               ///< cell side, tilted units
    double inv_cell_ = 1.0;
    int nu_ = 1, nv_ = 1;
    std::size_t sized_for_ = 1;  ///< population the cells were sized for
    int rebuilds_ = 0;           ///< occupancy-adaptive rebuild count
};

}  // namespace astclk::core
