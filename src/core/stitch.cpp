#include "core/stitch.hpp"

namespace astclk::core {

topo::node_id stitch_roots(const merge_solver& solver,
                           const engine_options& opt, topo::clock_tree& t,
                           std::vector<topo::node_id> roots,
                           engine_stats* stats, engine_scratch* scratch) {
    engine_options sopt = opt;
    sopt.shards = 1;  // a stitch is one front regardless of the shard knob
    const bottom_up_engine engine(solver, sopt);
    return engine.reduce(t, std::move(roots), stats, scratch);
}

}  // namespace astclk::core
