#pragma once

/// \file route_service.hpp
/// Batched, multi-threaded front-end over the strategy registry
/// (DESIGN.md §5) — the serving spine for many concurrent route requests.
///
/// A route_service owns
///  * a routing_context (shared delay model, instance cache, scratch pool),
///  * a thread_pool implementing task_executor.
///
/// `route_batch` fans the requests of a batch across the pool; each
/// request additionally carries the pool down into the merge engine, whose
/// multi-merge rounds fan their nearest-neighbour queries and plan() calls
/// out over the same threads (engine.hpp).  Both levels obey the
/// write-your-own-slot rule, so batched, threaded runs return results
/// bit-identical to direct single-threaded router calls — thread counts
/// change wall-clock, never trees.
///
/// Failure isolation: each batch entry catches its own exceptions; one
/// malformed request reports an error string while the rest of the batch
/// completes normally.

#include "core/executor.hpp"
#include "core/route_context.hpp"
#include "core/strategy.hpp"

#include <memory>
#include <string>
#include <vector>

namespace astclk::core {

/// Work-sharing pool of worker threads behind the task_executor contract.
/// `thread_pool(n)` spawns n-1 workers: the thread calling parallel_for
/// always participates (and claims everything itself when the workers are
/// busy), which is what makes nested parallel_for calls — batch level over
/// engine level — deadlock-free.
class thread_pool final : public task_executor {
  public:
    /// `threads` <= 1 means no workers (parallel_for runs inline).
    explicit thread_pool(int threads);
    ~thread_pool() override;

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn) override;
    [[nodiscard]] int concurrency() const noexcept override;

  private:
    struct impl;
    std::unique_ptr<impl> p_;
};

struct service_options {
    /// Worker-thread budget; 0 picks std::thread::hardware_concurrency().
    int threads = 0;
    /// Default delay model of the owned routing_context.
    rc::delay_model model = rc::delay_model::elmore();
    /// Hand the pool to the engine so multi-merge rounds fan out; requests
    /// that already carry an executor keep theirs.
    bool parallel_rounds = true;
};

/// One batch slot: the routed result, or the error that request raised.
struct batch_entry {
    route_result result;  ///< valid when `error` is empty
    std::string error;    ///< exception message of a failed request
    [[nodiscard]] bool ok() const { return error.empty(); }
};

class route_service {
  public:
    explicit route_service(service_options opt = {});
    ~route_service();

    route_service(const route_service&) = delete;
    route_service& operator=(const route_service&) = delete;

    [[nodiscard]] routing_context& context() { return ctx_; }
    [[nodiscard]] task_executor& executor();
    /// Threads that may execute work simultaneously (workers + caller).
    [[nodiscard]] int threads() const;

    /// Route one request on the service's context (timing recorded by the
    /// strategy dispatch; threads_used reflects the pool).  Propagates
    /// exceptions — isolation is a batch-level concern.
    route_result route(routing_request req);

    /// Route a batch concurrently; results[i] always corresponds to
    /// requests[i], and every entry is either a result or that request's
    /// error message.
    std::vector<batch_entry> route_batch(
        const std::vector<routing_request>& requests);

  private:
    route_result route_one(routing_request req);

    service_options opt_;
    routing_context ctx_;
    std::unique_ptr<thread_pool> pool_;
};

}  // namespace astclk::core
