#pragma once

/// \file route_service.hpp
/// Streaming, multi-threaded front-end over the strategy registry
/// (DESIGN.md §7-§8) — the serving spine for many concurrent route
/// requests.
///
/// A route_service owns
///  * a routing_context (shared delay model, instance cache, scratch pool),
///  * a thread_pool implementing task_executor plus a prioritised task
///    queue of submitted requests.
///
/// The primary API is asynchronous: `submit(request, submit_options)`
/// enqueues one request and returns a `route_handle` immediately; results
/// stream back as they complete (poll `try_get`, block in `wait`, or
/// receive a completion callback).  `submit_options` carries a per-request
/// deadline and a priority — higher-priority submissions are claimed first
/// by idle workers — and `route_handle::cancel()` requests cooperative
/// cancellation: queued requests complete as `cancelled` immediately,
/// running ones stop at the engine's next merge-round checkpoint, so a
/// runaway difficult instance can no longer hold a batch hostage.
/// `route_batch` remains as a thin submit-all + wait-all wrapper.
///
/// Each request additionally carries the pool down into the merge engine,
/// whose multi-merge rounds fan their nearest-neighbour queries and plan()
/// calls out over the same threads (engine.hpp), and — for requests with
/// `engine.shards != 1` — into the sharded reduction (shard.hpp), whose
/// sub-reductions run as one shard sub-batch on the same pool under the
/// submitting request's deadline and priority: the handle's cancel token
/// is polled at every shard's checkpoints, so one deadline bounds the
/// whole fan-out.  Every fan-out obeys the write-your-own-slot rule, so
/// served, threaded runs return results bit-identical to direct
/// single-threaded router calls — thread counts change wall-clock, never
/// trees.  One caveat: `engine.shards == 0` (auto) chooses the shard
/// *count* from the executor concurrency, so the partition itself — and
/// with it the tree — can differ between pools of different widths; the
/// resolved count is recorded in `route_result::resolved_shards` (and the
/// serving attempt in `route_result::attempts`), so any served run can be
/// reproduced exactly by pinning `engine.shards` to the recorded value
/// (any fixed count is bit-identical across thread counts).
///
/// Resilience (DESIGN.md §10): `submit_options::retry` re-enqueues
/// requests that end in a retryable status (default: `transient_fault`)
/// with bounded exponential backoff at their original priority, and
/// `submit_options::degrade` arms the graceful-degradation ladder — when
/// the deadline watermark passes or retries are exhausted, the request is
/// rerun stepped down (no speculation → coarser shards → greedy-BST
/// fallback), and a deadline firing mid-sharded-reduce salvages the
/// completed shard sub-trees (shard.hpp).  Degraded results carry a valid
/// tree tagged `route_status::degraded`, re-verified by the independent
/// evaluator before publication, with the rung and reason in
/// `route_result::degradation`.
///
/// Failure isolation: a worker catches its request's exceptions and
/// reports them as `route_status::error` in the result (std::bad_alloc
/// maps to the retryable `transient_fault`); one malformed request cannot
/// poison its siblings.

#include "core/executor.hpp"
#include "core/route_context.hpp"
#include "core/strategy.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace astclk::core {

/// Worker pool behind the task_executor contract, with a second, queued
/// side: prioritised one-shot tasks (the streaming submissions).
/// `thread_pool(n)` spawns n dedicated workers.  parallel_for fan-outs are
/// work-shared — the thread calling parallel_for always participates (and
/// claims everything itself when the workers are busy), which is what
/// makes nested parallel_for calls — a worker's engine-level fan-out —
/// deadlock-free; idle workers prefer helping a pending parallel_for over
/// starting a new task, so fine-grained engine rounds never wait behind
/// the submission backlog.  Destruction drains the task queue: every task
/// submitted before teardown still runs.
class thread_pool final : public task_executor {
  public:
    /// Spawns max(1, threads) worker threads.
    explicit thread_pool(int threads);
    ~thread_pool() override;

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn) override;
    /// The worker count (what a served request's engine fan-out can use).
    [[nodiscard]] int concurrency() const noexcept override;

    struct impl;

    /// Receipt for one submitted task: revoke() removes the task from the
    /// queue if no worker claimed it yet (true when removed), freeing its
    /// closure immediately instead of leaving a tombstone for a worker to
    /// pop and discard.  Safe to call after the pool died (no-op).
    class ticket {
      public:
        ticket() = default;
        bool revoke();

      private:
        friend class thread_pool;
        std::weak_ptr<impl> pool_;
        std::pair<int, std::uint64_t> key_{};
    };

    /// Enqueue one independent task.  Higher `priority` is claimed first;
    /// submissions of equal priority run in FIFO order.  Tasks own their
    /// error reporting: an exception escaping the task is swallowed by
    /// the worker (unlike parallel_for, which rethrows to its caller).
    ticket submit(int priority, std::function<void()> task);

  private:
    std::shared_ptr<impl> p_;
};

struct service_options {
    /// Worker-thread budget; 0 picks std::thread::hardware_concurrency().
    int threads = 0;
    /// Default delay model of the owned routing_context.
    rc::delay_model model = rc::delay_model::elmore();
    /// Hand the pool to the engine so multi-merge rounds fan out; requests
    /// that already carry an executor keep theirs.
    bool parallel_rounds = true;
};

/// Retry discipline for one submission: how many attempts a request gets
/// and how long to back off between them.  An attempt whose status the
/// predicate accepts is re-enqueued at the original priority after
/// min(cap, base << (attempt - 1)); retries never start after the
/// submission deadline, and the attempt that produced the final result is
/// reported in `route_result::attempts`.
struct retry_policy {
    /// Total attempts including the first; 1 disables retries.
    int max_attempts = 1;
    /// First backoff; attempt k waits min(cap, base << (k - 1)).
    std::chrono::milliseconds backoff_base{1};
    std::chrono::milliseconds backoff_cap{64};
    /// Which terminal statuses are worth another attempt.  Null means the
    /// default: `transient_fault` only (cancelled/deadline never retry).
    std::function<bool(route_status)> retryable;
};

/// Graceful-degradation ladder for one submission (DESIGN.md §10).  When
/// enabled, a request that exhausts its retries on a fault — or whose
/// deadline watermark passes while attempts remain — is rerun stepped
/// down one rung at a time: 1 = speculation off, 2 = coarser auto-shards
/// (coarse_shard_count), 3 = greedy-BST fallback under the spec's
/// tightest bound.  Independently, `salvage` arms partial-result recovery
/// of sharded reduces (engine_options::salvage).  Every degraded tree is
/// re-verified by the independent evaluator before publication unless
/// `verify` is off.
struct degrade_policy {
    bool enabled = false;
    /// Fraction of the submit→deadline budget after which a (re)attempt
    /// starts stepped down (rung >= 1; past the midpoint of the remainder
    /// it jumps straight to the greedy fallback).
    double deadline_watermark = 0.5;
    bool salvage = true;
    bool verify = true;
};

/// Per-submission knobs of the streaming API.
struct submit_options {
    /// Absolute completion deadline (steady clock); `no_deadline()` means
    /// none.  An already-expired deadline reports `deadline_exceeded`
    /// without entering the engine; one that fires mid-route stops the
    /// reduce at the next merge-round checkpoint.
    std::chrono::steady_clock::time_point deadline =
        cancel_token::no_deadline();
    /// Idle workers claim higher-priority submissions first (FIFO within
    /// one level).  Already-running requests are never preempted.
    int priority = 0;
    /// Optional completion callback, invoked on the completing thread — a
    /// worker, or the cancel() caller when a still-queued request is
    /// cancelled — after the result is stored but before waiters wake; it
    /// receives the result by reference and must not call try_get/wait
    /// itself.  Exceptions it throws are swallowed.
    std::function<void(const route_result&)> on_complete;
    /// Retry discipline (default: single attempt, no retries).
    retry_policy retry;
    /// Graceful-degradation ladder (default: disabled — faults and
    /// deadlines report their status with no fallback rerun).
    degrade_policy degrade;
};

/// Handle to one submitted request.  Copyable (all copies address the same
/// submission); the result is retrieved once — by the first successful
/// try_get() or wait() — and the handle stays valid after the service that
/// issued it is destroyed (destruction drains the queue first).
class route_handle {
  public:
    route_handle() = default;  ///< empty; valid() is false

    [[nodiscard]] bool valid() const noexcept { return st_ != nullptr; }
    /// True once the result is available (try_get would succeed, wait
    /// would not block).
    [[nodiscard]] bool done() const;
    /// Request cooperative cancellation.  A still-queued request completes
    /// as `cancelled` immediately (inside this call); a running one stops
    /// at the engine's next merge-round checkpoint.  Returns true when the
    /// request had not completed yet (the cancellation can still take
    /// effect), false when the result was already in.
    bool cancel();
    /// Non-blocking: the result if it is ready and not yet retrieved
    /// (moved out — one-shot), nullopt otherwise.
    std::optional<route_result> try_get();
    /// Block until the result is ready and return it (moved out — one
    /// shot; a second retrieval throws std::logic_error, as does calling
    /// this on an empty handle).
    route_result wait();

  private:
    friend class route_service;
    struct state;
    explicit route_handle(std::shared_ptr<state> st) : st_(std::move(st)) {}
    std::shared_ptr<state> st_;
};

class route_service {
  public:
    explicit route_service(service_options opt = {});
    /// Drains every submitted request (queued ones included) before
    /// returning; handles outlive the service.  Cancel explicitly for a
    /// fast shutdown.
    ~route_service();

    route_service(const route_service&) = delete;
    route_service& operator=(const route_service&) = delete;

    [[nodiscard]] routing_context& context() { return ctx_; }
    [[nodiscard]] task_executor& executor();
    /// Threads that may execute route work simultaneously (the workers).
    [[nodiscard]] int threads() const;

    /// Submit one request for asynchronous routing; returns immediately.
    /// The request is routed on a worker with the service's context and a
    /// cancel token wired to the handle; any token already on the
    /// request's own engine options keeps working — its flag and deadline
    /// are chained behind the handle's, its probe is forwarded — so
    /// whichever of handle, caller flag, `opt.deadline` or request
    /// deadline fires first stops the run.
    route_handle submit(routing_request req, submit_options opt = {});

    /// Route one request synchronously on the calling thread (timing
    /// recorded by the strategy dispatch; threads_used reflects the pool).
    /// Propagates exceptions — status conversion is a submission-level
    /// concern.  Note the engine fan-out of this path runs on the calling
    /// thread plus the workers, so it may briefly engage threads()+1
    /// threads; submitted requests run on a worker and stay within
    /// threads().
    route_result route(routing_request req);

    /// Thin batch wrapper: submit-all + wait-all.  results[i] always
    /// corresponds to requests[i]; a failed request reports through its
    /// result's status/status_message while the rest complete normally.
    std::vector<route_result> route_batch(
        const std::vector<routing_request>& requests);

  private:
    route_result route_one(routing_request req);
    void serve(const std::shared_ptr<route_handle::state>& st, int attempt);

    service_options opt_;
    routing_context ctx_;
    std::unique_ptr<thread_pool> pool_;
};

}  // namespace astclk::core
