#pragma once

/// \file offset_ledger.hpp
/// Global inter-group offset bookkeeping for zero intra-group skew AST.
///
/// The AST formulation (Ch. II) notes that solving the problem implicitly
/// fixes the inter-group skews S_ij ("offsets").  In a bottom-up merge the
/// offset between groups g and h is *frozen* the first time sinks of both
/// live in one subtree: all wire added above that subtree delays them
/// equally.  Because a group's sinks are spread over many subtrees, two
/// subtrees can freeze the same pair of groups at *different* offsets — and
/// when those subtrees eventually meet, the zero-skew constraints of g and
/// h become unsatisfiable (the paper's Fig. 5 conflict, which wire sneaking
/// can only repair in shallow cases).
///
/// The ledger prevents the conflict outright: a weighted union-find over
/// group ids stores, per connected component, a potential phi(g) such that
/// every committed co-residence satisfies t_g - t_h = phi(g) - phi(h).
/// The first co-residence of two components is a *free* merge (the router
/// picks the offset, e.g. by delay balancing) and binds them; every later
/// merge touching bound components is constrained to the recorded offsets,
/// which keeps all zero-skew requirements consistent forever.

#include "topo/instance.hpp"

#include <cstdint>
#include <vector>

namespace astclk::core {

class offset_ledger {
  public:
    /// Ledger over group ids [0, num_groups); all groups start unbound.
    explicit offset_ledger(topo::group_id num_groups);

    /// Number of groups tracked.
    [[nodiscard]] topo::group_id size() const {
        return static_cast<topo::group_id>(parent_.size());
    }

    /// True when g and h are already offset-bound (same component).
    [[nodiscard]] bool same(topo::group_id g, topo::group_id h) const;

    /// phi(g) - phi(h); requires same(g, h).
    [[nodiscard]] double offset(topo::group_id g, topo::group_id h) const;

    /// Record t_g - t_h == off.  Requires !same(g, h).
    void bind(topo::group_id g, topo::group_id h, double off);

    /// Number of remaining components (k at start, 1 when fully bound).
    [[nodiscard]] int components() const { return components_; }

  private:
    /// Root of g's component; `pot` receives phi(g) relative to the root.
    [[nodiscard]] topo::group_id find(topo::group_id g, double& pot) const;

    // Mutable for path compression in const lookups.
    mutable std::vector<topo::group_id> parent_;
    mutable std::vector<double> pot_;  // potential relative to parent
    std::vector<int> rank_;
    int components_ = 0;
};

}  // namespace astclk::core
