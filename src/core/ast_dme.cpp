#include "core/router.hpp"
#include "core/router_detail.hpp"

#include <algorithm>

namespace astclk::core {

namespace {

/// One full bottom-up + top-down route under the given consistency mode.
route_result run_once(const topo::instance& inst, const skew_spec& spec,
                      const router_options& opt, consistency_mode mode,
                      routing_context& ctx) {
    offset_ledger ledger(inst.num_groups);
    merge_solver solver(opt.model, spec,
                        mode == consistency_mode::windowed ? nullptr : &ledger,
                        mode);
    solver.set_bind_deferral_bias(opt.bind_deferral_bias);
    // reduce_route resolves the shard knob: the windowed (ledger-free)
    // solver may take the sharded path, the ledger modes always reduce
    // monolithically (effective_shard_count).
    return detail::reduce_route(inst, solver, opt.engine,
                                /*collapse_groups=*/false, ctx);
}

/// True when every bound of the spec is exactly zero (the exact ledger's
/// domain).
bool all_zero(const skew_spec& spec) {
    return spec.default_bound == 0.0 &&
           std::all_of(spec.overrides.begin(), spec.overrides.end(),
                       [](const auto& o) { return o.second == 0.0; });
}

}  // namespace

namespace detail {

route_result strategy_ast_dme(const routing_request& req,
                              routing_context& ctx) {
    const topo::instance& inst = *req.instance;
    const skew_spec& spec = req.spec;
    const router_options& opt = req.options;
    switch (req.mode) {
        case ast_mode::windowed:
            return run_once(inst, spec, opt, consistency_mode::windowed, ctx);
        case ast_mode::soft_ledger:
            return run_once(inst, spec, opt, consistency_mode::soft, ctx);
        case ast_mode::exact_ledger:
            if (!all_zero(spec))  // exact mode needs degenerate intervals
                return run_once(inst, spec, opt, consistency_mode::soft, ctx);
            return run_once(inst, spec, opt, consistency_mode::exact, ctx);
        case ast_mode::automatic:
            break;
    }

    // Automatic: exact ledger for all-zero specs (guaranteed constraints,
    // stable wirelength — see EXPERIMENTS.md for the windowed/soft
    // instability study), soft ledger for bounded specs (the exact ledger
    // needs degenerate delay intervals).
    if (all_zero(spec))
        return run_once(inst, spec, opt, consistency_mode::exact, ctx);
    return run_once(inst, spec, opt, consistency_mode::soft, ctx);
}

}  // namespace detail

route_result route_ast_dme(const topo::instance& inst, const skew_spec& spec,
                           const router_options& opt, ast_mode mode) {
    routing_request req;
    req.instance = &inst;
    req.spec = spec;
    req.options = opt;
    req.strategy = strategy_id::ast_dme;
    req.mode = mode;
    return route(req);
}

}  // namespace astclk::core
