#pragma once

/// \file route_context.hpp
/// Shared per-run state for the routing service (DESIGN.md §6): the
/// expensive pieces every route needs but no route should rebuild —
///
///  * the configured delay model (the context's default; requests can
///    still override via router_options.model),
///  * generated instances (src/gen synthesis is deterministic but not
///    free; batches routing the same benchmark under many specs share one
///    copy via the keyed cache),
///  * engine scratch buffers (selection heaps, NN records, the plan
///    cache and speculation job slots — reused across requests instead of
///    reallocated per reduce run).
///
/// A routing_context is safe to share across the service's worker threads:
/// the instance cache and the scratch pool are mutex-guarded, cached
/// instances have stable addresses (borrowed by routing_requests), and
/// each concurrent engine run holds its own scratch lease.

#include "core/engine.hpp"
#include "gen/instance_gen.hpp"
#include "rc/delay_model.hpp"
#include "topo/instance.hpp"

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace astclk::core {

class routing_context {
  public:
    routing_context() = default;
    explicit routing_context(rc::delay_model model) : model_(model) {}

    routing_context(const routing_context&) = delete;
    routing_context& operator=(const routing_context&) = delete;

    /// The context's default delay model (requests may override).
    [[nodiscard]] const rc::delay_model& model() const { return model_; }

    // ------------------------------------------------- instance cache
    /// The instance cached under `key`, building it with `build` on the
    /// first request.  The returned reference is stable for the context's
    /// lifetime — requests may borrow it.
    const topo::instance& instance(
        const std::string& key,
        const std::function<topo::instance()>& build);

    /// Generated paper-style instance (gen::generate), cached by spec.
    const topo::instance& generated(const gen::instance_spec& spec);

    /// Generated instance with clustered groups applied, cached.
    const topo::instance& clustered(const gen::instance_spec& spec,
                                    int groups);

    /// Generated instance with intermingled groups applied, cached.
    const topo::instance& intermingled(const gen::instance_spec& spec,
                                       int groups, std::uint64_t seed);

    /// Number of distinct instances currently cached.
    [[nodiscard]] std::size_t cached_instances() const;

    // --------------------------------------------------- scratch pool
    /// RAII lease of an engine_scratch from the context's pool; returns
    /// it on destruction.  One lease serves one engine run at a time.
    class scratch_lease {
      public:
        scratch_lease(routing_context* ctx,
                      std::unique_ptr<engine_scratch> s)
            : ctx_(ctx), s_(std::move(s)) {}
        ~scratch_lease();
        scratch_lease(scratch_lease&& o) noexcept
            : ctx_(o.ctx_), s_(std::move(o.s_)) {
            o.ctx_ = nullptr;
        }
        scratch_lease& operator=(scratch_lease&&) = delete;
        scratch_lease(const scratch_lease&) = delete;
        scratch_lease& operator=(const scratch_lease&) = delete;

        [[nodiscard]] engine_scratch* get() { return s_.get(); }
        [[nodiscard]] engine_scratch& operator*() { return *s_; }

      private:
        routing_context* ctx_;
        std::unique_ptr<engine_scratch> s_;
    };

    /// Borrow a scratch (allocating one when the pool is empty).
    [[nodiscard]] scratch_lease scratch();

    /// Scratch buffers currently resting in the pool, i.e. not leased by a
    /// running request.  Leases return on destruction — cancellation and
    /// deadline unwinds included — so after every request of a quiesced
    /// service finished (however it ended) this equals the number of
    /// scratches ever allocated.
    [[nodiscard]] std::size_t pooled_scratch() const;

    /// Scratch buffers ever allocated by this context (monotonic).  On a
    /// quiesced context `allocated_scratch() == pooled_scratch()` — the
    /// lease-balance invariant audit::verify_scratch_lease_balance checks.
    [[nodiscard]] std::size_t allocated_scratch() const;

  private:
    friend class scratch_lease;
    void release(std::unique_ptr<engine_scratch> s);

    mutable std::mutex mu_;
    rc::delay_model model_ = rc::delay_model::elmore();
    std::unordered_map<std::string, std::unique_ptr<topo::instance>>
        instances_;
    std::vector<std::unique_ptr<engine_scratch>> pool_;
    std::size_t allocated_ = 0;  ///< scratches ever created (under mu_)
};

}  // namespace astclk::core
