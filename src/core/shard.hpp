#pragma once

/// \file shard.hpp
/// Sharded die-region reduction (DESIGN.md §4): partition → parallel
/// sub-reduce → associative stitch.
///
/// The monolithic engine reduces the whole die in one front, so its NN
/// index, selection heap and scratch arenas all scale with total n.  For
/// instances an order of magnitude past r5 the lever is region
/// decomposition: split the sink set into k spatial shards (recursive
/// bisection in tilted space — the metric the merge engine orders by),
/// sub-reduce every shard as an independent engine run (its own private
/// tree arena, its own pooled `engine_scratch`, a `grid_index` sized to
/// the shard population), and join the shard roots with the phase-2
/// associative stitch (stitch.hpp).  Shards fan out over the caller's
/// `task_executor`, and single-threaded the path still wins: per-shard
/// grids keep ring expansions local and per-shard heaps shallow, so
/// wall-clock tracks the *largest shard*, not total n.
///
/// Determinism: the partition depends only on sink coordinates (ties on
/// the sink index), every shard reduce is a sequential engine run over a
/// private arena, shard trees are grafted into the final arena in
/// partition order, and the stitch is the ordinary deterministic engine —
/// so a fixed shard count yields bit-identical trees across thread counts
/// and NN backends.  The default `engine_options::shards == 1` bypasses
/// this path entirely and is bit-identical to previous releases.

#include "core/route_context.hpp"
#include "core/router.hpp"

#include <cstdint>
#include <vector>

namespace astclk::core {

/// A spatial partition of an instance's sink set: sink indices per shard,
/// in recursive-bisection (left-to-right) emission order, each shard's
/// indices sorted ascending.  Every sink appears in exactly one shard and
/// no shard is empty (a sink-less instance partitions into zero shards).
using shard_partition = std::vector<std::vector<std::int32_t>>;

/// Partition the instance's sinks into min(shards, #sinks) spatial shards
/// by recursive bisection in tilted (u, v) space: each step hulls the
/// current slab (geom::tilted_rect over the sink points), splits along the
/// longer tilted axis at the population-proportional rank, and recurses.
/// Deterministic: coordinate order with sink-index tie-breaks.
[[nodiscard]] shard_partition partition_sinks(const topo::instance& inst,
                                              int shards);

/// The automatic shard count (`engine_options::shards == 0`): aims for
/// ~512 sinks per shard, never shards below 192 sinks per shard, and
/// raises the count to the executor concurrency (capped by that floor) so
/// a wide pool is saturated even when the size heuristic alone would
/// produce fewer shards.  Returns 1 (monolithic) for small populations.
[[nodiscard]] int auto_shard_count(std::size_t population, int concurrency);

/// The degradation ladder's rung-2 shard count (route_service degrade
/// ladder, DESIGN.md §10): ~128 sinks per shard — four times finer than
/// `auto_shard_count`, trading stitch seams for much shallower (faster)
/// sub-reductions.  Always >= 2 so rung 2 genuinely reconfigures the run;
/// clamped to the population like every other shard count.
[[nodiscard]] int coarse_shard_count(std::size_t population, int concurrency);

/// Shard count a reduce over `population` roots will actually use:
/// resolves the `opt.shards` knob (1 = monolithic, 0 = auto, K = forced,
/// clamped to the population) and returns 1 for ledger-backed solvers —
/// globally consistent offset state cannot be split across independent
/// sub-reductions.
[[nodiscard]] int effective_shard_count(const engine_options& opt,
                                        const merge_solver& solver,
                                        std::size_t population);

/// The sharded route driver: partition the sinks into `shards` spatial
/// shards, sub-reduce each in a private tree with a context-pooled
/// scratch (fanned over `opt.executor` when present — the shard is the
/// unit of parallelism, so per-shard engines run sequentially), graft the
/// shard trees into one arena in partition order, stitch the shard roots
/// (stitch_roots — executor and cancel token apply), embed and fill in
/// the result.  Per-shard `engine_stats` are folded into one block with
/// `engine_stats::accumulate` (exact sums — each shard writes its own
/// block) and `stats.shards` records the shard count.  Cancellation: each
/// shard polls the caller's cancel token at the usual engine checkpoints
/// (the probe is driven only when the shard loop runs on the calling
/// thread); a mid-shard interrupt unwinds with the counters of every
/// shard — completed, partial and never-started alike — summed exactly
/// once.  Each shard job opens with a gate poll at the `shard` fault site
/// keyed by its partition index (deterministic under any worker
/// schedule); inner shard tokens never carry the fault plan.  With
/// `opt.salvage` set, a non-retryable interrupt (deadline_exceeded or
/// data_fault) keeps the completed shard sub-trees, greedily completes
/// the unfinished shards under a grace token (cancel flag honored,
/// deadline and faults dropped), stitches, and returns the tree tagged
/// route_status::degraded with a `salvaged` degradation_report; an
/// explicit cancel always discards, and a transient fault propagates so
/// the service's retry policy can recover it at full fidelity.
/// Requires a ledger-free solver, `shards >= 2`
/// (effective_shard_count enforces both) and a non-empty sink set
/// (std::invalid_argument otherwise).
[[nodiscard]] route_result sharded_route(const topo::instance& inst,
                                         const merge_solver& solver,
                                         const engine_options& opt,
                                         bool collapse_groups, int shards,
                                         routing_context& ctx);

}  // namespace astclk::core
