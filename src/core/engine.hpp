#pragma once

/// \file engine.hpp
/// The bottom-up merging engine shared by every router (Fig. 6 skeleton):
///
///     1. initialise the active set with the given roots
///     2. while more than one root remains:
///          pick the cheapest pair, solve its merge, commit it
///     3. return the last root
///
/// Pair selection follows the paper's minimum-merging-cost scheme with two
/// optional enhancements from Ch. V-F:
///   * lazy true-cost re-keying — pairs popped by the distance lower bound
///     are re-inserted with their full plan cost (snake wire included) when
///     it exceeds the next candidate's key;
///   * Edahiro-style multi-merge rounds — all *mutually* nearest pairs are
///     merged per round, cutting nearest-neighbour recomputations.
///
/// The hot path is sub-quadratic by construction:
///   * nearest-neighbour queries go through a uniform spatial grid over the
///     arc boxes (grid_index; ring expansion with the arc-distance lower
///     bound), with the exact linear scan (nn_index) selectable as a
///     verification backend via `engine_options::backend`;
///   * the cheapest pair is popped from a global lazy-deletion min-heap
///     keyed by the distance lower bound (re-keyed with cached true plan
///     cost); per-node generation counters invalidate stale entries instead
///     of rescanning the active set; both the selection and radius heaps
///     are 4-ary implicit heaps over reusable scratch vectors
///     (dary_heap.hpp) — same pop order as the former binary heaps, half
///     the sift depth;
///   * after each commit only the affected neighbourhoods are touched:
///     roots whose nearest neighbour was one of the merged pair (tracked by
///     reverse-NN lists) are recomputed, and the new root is folded into
///     roots within the current nearest-neighbour influence radius — no
///     global recompute, in the forced-merge path included.
///
/// The nearest-pair reduction additionally supports a *speculative
/// pipeline* (DESIGN.md §3): each selection step drains the top-k live
/// heap candidates, fans their plan() calls out over the executor before
/// the pop, and memoises the results in a generation-stamped plan cache
/// (merge_solver.hpp) so the subsequent pops commit from cached plans.
/// Results are bit-identical to the sequential engine by construction —
/// speculation only ever pre-computes plans the inline path would compute
/// itself, and a stale stamp falls back to an inline solve.
///
/// Pairs whose merge is infeasible (irreconcilable multi-group conflicts,
/// Ch. V-E) are banned and re-proposed only if nothing else remains, in
/// which case a forced minimax merge keeps the algorithm total.

#include "core/executor.hpp"
#include "core/grid_index.hpp"
#include "core/merge_solver.hpp"
#include "core/nn_index.hpp"
#include "core/plan_kernels.hpp"
#include "topo/tree.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace astclk::core {

/// Pair-selection strategy (Ch. V-A and V-F).
enum class merge_order {
    nearest_pair,     ///< one minimum-key pair per step (greedy-DME style)
    multi_merge,      ///< all mutually nearest pairs per round (V-F.1)
};

/// Nearest-neighbour backend.  Both return bit-identical answers (same
/// deterministic id tie-breaks); `linear` is the exact-by-construction
/// reference kept for verification and ablation.
enum class nn_backend {
    grid,    ///< uniform spatial grid, ring expansion (sub-quadratic)
    linear,  ///< tuned linear scan (the seed implementation)
};

struct engine_options {
    merge_order order = merge_order::nearest_pair;
    /// Re-key popped pairs with their true plan cost before committing;
    /// disabling reverts to pure arc-distance ordering (ablation knob).
    bool true_cost_ordering = true;
    nn_backend backend = nn_backend::grid;
    /// Merge-plan solve kernel (DESIGN.md §11).  `batch` routes plan()
    /// solves through the SoA batch kernels of plan_kernels.hpp — window
    /// check, split search and arc-box merge of up to kplan_lanes
    /// independent pairs from one instruction stream, with lanes needing
    /// the rare general path (empty first window, ledger modes) falling
    /// back to the scalar solver — and switches the grid backend's NN
    /// queries to the batched gather/distance kernels over reusable
    /// scratch.  Trees and every pre-existing statistic are bit-identical
    /// to `scalar` across backends, thread counts, speculate_k and shard
    /// counts; only wall-clock and the kernel counters below
    /// (batch_planned, kernel_fallbacks, nn_scratch_reuses) move.
    /// Ledger-backed solvers run scalar regardless (their plans read
    /// offsets that commits bind, so no lane qualifies anyway).
    plan_kernel kernel = plan_kernel::batch;
    /// Optional worker pool for multi-merge rounds (non-owning; null runs
    /// sequentially).  Each round's nearest-neighbour queries fan out, and
    /// so do the plan() calls when the solver carries no offset ledger
    /// (ledger modes serialise planning because plans read offsets that
    /// earlier commits of the same round bind).  The commit step is always
    /// sequential, so trees are bit-identical to single-threaded runs.
    task_executor* executor = nullptr;
    /// Speculative top-k planning for the nearest-pair order: each
    /// selection step peeks the k cheapest live heap candidates and fans
    /// their plan() calls out over `executor` before the pop, keyed by
    /// (pair, gen[a], gen[b]) in the plan cache; pops then commit from the
    /// memoised plans, falling back to an inline solve on a stale stamp.
    /// 0 disables speculation.  Only active with an executor of
    /// concurrency > 1, a ledger-free solver (ledger-backed plans read
    /// offsets that commits bind) and `plan_cache` on; trees and the
    /// merge/rejection/forced statistics are bit-identical either way —
    /// the knob moves wall-clock plus the cache/speculation counters
    /// below, nothing else.
    int speculate_k = 0;
    /// Cross-step plan cache: memoise solved plans stamped with both
    /// roots' selection generations, so re-keyed survivors commit from the
    /// memo instead of being re-solved (and speculative results have a
    /// place to land).  Entries are dropped at their pair's commit or ban,
    /// so the memo tracks in-flight work, not total merges.  Disabled
    /// internally for ledger-backed solvers.  Trees and merge statistics
    /// are bit-identical on or off; hit/miss counters land in
    /// engine_stats.
    bool plan_cache = true;
    /// Sharded reduction (DESIGN.md §4): split the initial roots into
    /// spatial shards, sub-reduce each independently (fanned over
    /// `executor` when present), then stitch the shard roots with the
    /// phase-2 associative machinery.  1 (the default) keeps the
    /// monolithic single-front reduce bit-identical to previous releases;
    /// K >= 2 forces exactly K shards; 0 picks an automatic count from the
    /// population and the executor concurrency (auto_shard_count,
    /// shard.hpp).  Only the strategy-level drivers honour this knob —
    /// `bottom_up_engine::reduce` itself always runs one front — and it is
    /// ignored (monolithic) for ledger-backed solvers, whose offset state
    /// cannot be split across independent sub-reductions.
    int shards = 1;
    /// Cooperative cancellation (deadline and/or cancel flag): polled at
    /// merge-round granularity — once per nearest-pair selection step and
    /// once per multi-merge round — so a fired token interrupts the reduce
    /// within one round (a route_interrupt carrying the status unwinds to
    /// the strategy dispatch).  The default token never fires; an unarmed
    /// run does no clock reads.  Checkpoints are *named* fault sites
    /// (executor.hpp fault_site): a fault_plan attached to the token can
    /// fire typed faults at deterministic checkpoint indexes.
    cancel_token cancel;
    /// Partial-result salvage (DESIGN.md §10): when a deadline or fault
    /// interrupts the sharded reduction mid-fan-out, recover the completed
    /// shard sub-trees, complete the unfinished shards with a cheap greedy
    /// configuration, and stitch — returning a valid tree tagged
    /// route_status::degraded instead of discarding all work.  Only the
    /// sharded driver honors it; an explicit cancel() always discards.
    bool salvage = false;
};

struct engine_stats {
    int merges = 0;
    int disjoint_merges = 0;      ///< case 2: no shared group
    int shared_merges = 0;        ///< cases 1 and 3: >= 1 shared group
    int multi_shared_merges = 0;  ///< case 4: >= 2 shared groups
    int root_snakes = 0;          ///< merges embedded with root-edge snaking
    int interior_snakes = 0;      ///< Eq. 5.2-style interior repairs
    double snake_wire = 0.0;      ///< total wire spent beyond arc distances
    int rejected_pairs = 0;       ///< plans refused as infeasible
    int forced_merges = 0;        ///< minimax fallbacks (should stay 0)
    double worst_violation = 0.0; ///< residual skew excess of forced merges
    int rounds = 0;               ///< multi-merge rounds (if enabled)
    // Plan-cache / speculation accounting (nearest-pair order only; all
    // zero when the cache is off or the solver carries a ledger).
    int plan_cache_hits = 0;      ///< selections served from the memo
    int plan_cache_misses = 0;    ///< selections that solved inline
    int speculated_plans = 0;     ///< plans dispatched ahead of selection
    int speculative_hits = 0;     ///< speculated plans later consumed
    int wasted_speculation = 0;   ///< speculated plans never consumed
    // Batch-kernel accounting (engine_options::kernel == batch only; all
    // zero under the scalar kernel).  Excluded from the bit-identity
    // contract — they describe *how* plans were solved, not what was
    // solved.
    int batch_planned = 0;     ///< plans solved by the SoA fast path
    int kernel_fallbacks = 0;  ///< lanes bounced to the scalar solver
    /// Batched NN queries that found warm gather capacity in the
    /// engine_scratch buffers (grid backend; the per-query allocation
    /// they replaced was the old ring-expansion cost).
    long long nn_scratch_reuses = 0;
    /// Sub-reductions of the sharded path (0 = monolithic reduce).  Set by
    /// the shard driver, which folds every shard's counters into one stats
    /// block with `accumulate` — each shard writes its own block, so the
    /// sums are exact even when a cancellation unwinds mid-shard.
    int shards = 0;

    /// Fold another stats block into this one (per-shard bookkeeping of
    /// the sharded reduction; every additive counter sums, the violation
    /// maximum maximises).  `shards` sums too: sub-shard counts nest.
    void accumulate(const engine_stats& o) {
        merges += o.merges;
        disjoint_merges += o.disjoint_merges;
        shared_merges += o.shared_merges;
        multi_shared_merges += o.multi_shared_merges;
        root_snakes += o.root_snakes;
        interior_snakes += o.interior_snakes;
        snake_wire += o.snake_wire;
        rejected_pairs += o.rejected_pairs;
        forced_merges += o.forced_merges;
        worst_violation = std::max(worst_violation, o.worst_violation);
        rounds += o.rounds;
        plan_cache_hits += o.plan_cache_hits;
        plan_cache_misses += o.plan_cache_misses;
        speculated_plans += o.speculated_plans;
        speculative_hits += o.speculative_hits;
        wasted_speculation += o.wasted_speculation;
        batch_planned += o.batch_planned;
        kernel_fallbacks += o.kernel_fallbacks;
        nn_scratch_reuses += o.nn_scratch_reuses;
        shards += o.shards;
    }
};

/// Size lock for the accumulate() fold (the C++ half of the tools/lint.py
/// stats-fold rule): adding an engine_stats field changes sizeof and trips
/// this assert, which stays tripped until the new field is folded into
/// accumulate() above — lint.py cross-checks the field list against the
/// fold — and the expected size here is updated.  Counters must never be
/// able to dodge the shard/service accounting silently.
static_assert(sizeof(engine_stats) == 96,
              "engine_stats changed: fold the new field in accumulate(), "
              "add it to the tools/lint.py field list check, then update "
              "this size lock");

/// Thrown by an engine checkpoint that observes a fired cancel token; the
/// strategy dispatch (strategy.cpp route()) converts it into a
/// route_result with the carried status.  The partial tree dies with the
/// unwind, but the stats accumulated so far ride along — a cancelled
/// request still reports how much work it burned.  Deriving from
/// std::runtime_error keeps legacy engine users safe if it ever escapes
/// uncaught.
class route_interrupt : public std::runtime_error {
  public:
    route_interrupt(route_status s, const engine_stats& st)
        : std::runtime_error(status_message_for(s)), status_(s), stats_(st) {}
    [[nodiscard]] route_status status() const noexcept { return status_; }
    [[nodiscard]] const engine_stats& stats() const noexcept {
        return stats_;
    }

  private:
    route_status status_;
    engine_stats stats_;
};

/// Reusable buffers for the engine's selection state (NN records, reverse
/// lists, heaps).  One reduce run fully reinitialises whatever it borrows,
/// so reuse never changes results — it only skips the per-run allocations.
/// Not thread-safe: one scratch serves one engine run at a time (the
/// routing_context hands out one per concurrent request).
class engine_scratch {
  public:
    engine_scratch();
    ~engine_scratch();
    engine_scratch(engine_scratch&&) noexcept;
    engine_scratch& operator=(engine_scratch&&) noexcept;

    struct impl;
    [[nodiscard]] impl& state() { return *p_; }

  private:
    std::unique_ptr<impl> p_;
};

/// Merges a set of existing roots down to a single root.
class bottom_up_engine {
  public:
    bottom_up_engine(merge_solver solver, engine_options opt = {})
        : solver_(std::move(solver)), opt_(opt) {}

    [[nodiscard]] const merge_solver& solver() const { return solver_; }

    /// Repeatedly merge until one root remains; returns it.  `roots` must
    /// be non-empty and refer to live roots of `t`.  `scratch`, when given,
    /// lends its buffers to the run (identical results, fewer allocations).
    topo::node_id reduce(topo::clock_tree& t, std::vector<topo::node_id> roots,
                         engine_stats* stats = nullptr,
                         engine_scratch* scratch = nullptr) const;

  private:
    merge_solver solver_;
    engine_options opt_;
};

}  // namespace astclk::core
