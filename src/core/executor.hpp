#pragma once

/// \file executor.hpp
/// Minimal task-execution interface shared by the merge engine and the
/// routing service (DESIGN.md §5).
///
/// The engine's multi-merge rounds and the service's batched requests both
/// need "run these n independent jobs, possibly concurrently, and wait".
/// `task_executor` is that contract and nothing more, so the engine stays
/// free of threading machinery: a null executor (the default everywhere)
/// means strictly sequential execution, and the service's thread pool
/// plugs in without the engine knowing it exists.
///
/// Requirements on implementations:
///  * `parallel_for(n, fn)` invokes `fn(i)` exactly once for every
///    i in [0, n) and returns only after all invocations finished;
///  * nested calls from inside a running job must not deadlock (the
///    service's pool has the calling thread claim jobs itself);
///  * if any `fn(i)` throws, one of the thrown exceptions is rethrown to
///    the caller after the remaining jobs finished or were skipped.
///
/// Determinism note: callers must make results independent of execution
/// order (each job writes its own slot).  Everything in this codebase that
/// fans out — NN queries and plan() calls per multi-merge round, requests
/// per batch — obeys that rule, which is why threaded runs are
/// bit-identical to sequential ones.

#include <cstddef>
#include <functional>

namespace astclk::core {

class task_executor {
  public:
    virtual ~task_executor() = default;

    /// Run `fn(0) .. fn(n-1)`, possibly concurrently; blocks until every
    /// invocation completed.
    virtual void parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) = 0;

    /// Number of threads that may execute jobs simultaneously (>= 1; the
    /// calling thread counts).
    [[nodiscard]] virtual int concurrency() const noexcept = 0;
};

/// Sequential fallback: `exec == nullptr` runs the loop inline.
inline void run_indexed(task_executor* exec, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
    if (exec == nullptr || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    exec->parallel_for(n, fn);
}

}  // namespace astclk::core
