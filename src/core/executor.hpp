#pragma once

/// \file executor.hpp
/// Minimal task-execution and cooperative-cancellation contracts shared by
/// the merge engine and the routing service (DESIGN.md §7-§8).
///
/// The engine's multi-merge rounds and the service's batched requests both
/// need "run these n independent jobs, possibly concurrently, and wait".
/// `task_executor` is that contract and nothing more, so the engine stays
/// free of threading machinery: a null executor (the default everywhere)
/// means strictly sequential execution, and the service's thread pool
/// plugs in without the engine knowing it exists.
///
/// Requirements on implementations:
///  * `parallel_for(n, fn)` invokes `fn(i)` exactly once for every
///    i in [0, n) and returns only after all invocations finished;
///  * nested calls from inside a running job must not deadlock (the
///    service's pool has the calling thread claim jobs itself);
///  * if any `fn(i)` throws, one of the thrown exceptions is rethrown to
///    the caller after the remaining jobs finished or were skipped.
///
/// Determinism note: callers must make results independent of execution
/// order (each job writes its own slot).  Everything in this codebase that
/// fans out — NN queries and plan() calls per multi-merge round, the
/// nearest-pair engine's speculative top-k plan() batches, requests per
/// batch — obeys that rule, which is why threaded runs are bit-identical
/// to sequential ones.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace astclk::core {

/// Terminal disposition of a route request (DESIGN.md §8).  Replaces bare
/// error-string signaling: callers branch on the kind, `status_message`
/// (route_result) carries the human detail.
enum class route_status {
    ok,                 ///< routed normally; the result tree is valid
    cancelled,          ///< cooperative cancellation observed at a checkpoint
    deadline_exceeded,  ///< the per-request deadline fired (possibly before
                        ///< any engine work)
    transient_fault,    ///< transient solver/allocation failure (injected or
                        ///< observed); retryable — a rerun may succeed
    data_fault,         ///< poisoned shard/data observed at a checkpoint;
                        ///< deterministic, so retrying cannot help
    degraded,           ///< routed under a degraded configuration
                        ///< (DESIGN.md §10); the tree IS valid and verified
    error,              ///< the strategy threw; see status_message
};

[[nodiscard]] constexpr const char* to_string(route_status s) noexcept {
    switch (s) {
        case route_status::ok: return "ok";
        case route_status::cancelled: return "cancelled";
        case route_status::deadline_exceeded: return "deadline_exceeded";
        case route_status::transient_fault: return "transient_fault";
        case route_status::data_fault: return "data_fault";
        case route_status::degraded: return "degraded";
        case route_status::error: return "error";
    }
    return "?";
}

/// The canonical human wording of a status for
/// route_result::status_message, used everywhere a token fires (the
/// dispatch pre-check, engine interrupts, queued-cancel completion).
/// `ok` maps to the empty string (ok results carry no message); `error`
/// messages normally come from the exception text instead, and `degraded`
/// results carry a message describing the rung (route_service / shard
/// salvage fill it in).
[[nodiscard]] constexpr const char* status_message_for(
    route_status s) noexcept {
    switch (s) {
        case route_status::ok: return "";
        case route_status::cancelled: return "cancelled";
        case route_status::deadline_exceeded: return "deadline exceeded";
        case route_status::transient_fault: return "transient fault";
        case route_status::data_fault: return "data fault (poisoned shard)";
        case route_status::degraded: return "degraded";
        case route_status::error: return "error";
    }
    return "?";
}

// ------------------------------------------------------- fault injection

/// Named checkpoint classes the engine already polls (DESIGN.md §10's
/// checkpoint → fault-site map).  Every checkpoint of a site carries a
/// deterministic 1-based index, so a scheduled fault fires at the same
/// point of the computation on every run.
enum class fault_site : int {
    dispatch = 0,   ///< route() pre-check; indexed by the plan's own
                    ///< occurrence counter (attempt number under retries)
    selection = 1,  ///< nearest-pair selection step; index = step number
    round = 2,      ///< multi-merge round boundary; index = round number
    shard = 3,      ///< per-shard gate of the sharded reduce; index =
                    ///< shard number in partition order (schedule-free)
};

/// Typed faults the schedule can fire.  The first two surface as
/// route_status::transient_fault (retryable), a poisoned shard as
/// route_status::data_fault (deterministic, not retryable), and a worker
/// stall burns the rest of the token's deadline budget at the checkpoint
/// (so the run terminates as deadline_exceeded — or salvages — exactly
/// there).
enum class fault_kind : int {
    none = 0,
    transient_solver,  ///< transient merge-solver failure
    alloc_failure,     ///< transient allocation failure
    worker_stall,      ///< stall until the token's deadline has passed
    poisoned_shard,    ///< poisoned shard / corrupted partial data
};

[[nodiscard]] const char* to_string(fault_site s) noexcept;
[[nodiscard]] const char* to_string(fault_kind k) noexcept;

/// Deterministic fault-injection schedule: a set of (site, index, kind)
/// events, each fired exactly once when a checkpoint of `site` reaches
/// `index`.  Counter-indexed, never time-based — the same schedule against
/// the same request yields the same fault sequence and hence bit-identical
/// outcomes.  `seeded()` derives a schedule from a seed (same seed → same
/// events).  Non-owning wiring mirrors cancel_probe: attach with
/// cancel_token::set_faults; the plan must outlive every poll and should
/// serve a single request at a time (sharing one plan across concurrent
/// requests makes the dispatch occurrence counter schedule-dependent).
/// Consumption is mutex-guarded: shard gates fire from pool workers.
class fault_plan {
  public:
    struct event {
        fault_site site = fault_site::dispatch;
        std::uint64_t index = 1;  ///< 1-based checkpoint index at `site`
        fault_kind kind = fault_kind::none;
        bool consumed = false;
    };

    fault_plan() = default;
    fault_plan(const fault_plan&) = delete;
    fault_plan& operator=(const fault_plan&) = delete;

    /// Derive `count` events from `seed`: sites, kinds and indexes (in
    /// [1, horizon]) come from a splitmix64 stream, so identical seeds
    /// build identical schedules.  Events whose site a given configuration
    /// never polls (e.g. shard gates of a monolithic run) simply never
    /// fire.
    static fault_plan seeded(std::uint64_t seed, int count = 2,
                             std::uint64_t horizon = 64);

    /// Schedule one event.  Not thread-safe against concurrent fire();
    /// build the plan before handing it to a run.
    void schedule(fault_site site, std::uint64_t index, fault_kind kind);

    [[nodiscard]] bool armed() const;
    [[nodiscard]] int fired() const;           ///< events consumed so far
    [[nodiscard]] std::vector<event> events() const;  ///< snapshot (tests)

    /// Checkpoint test: consume and return the event scheduled for
    /// (site, index), or fault_kind::none.  `index == 0` uses the plan's
    /// internal per-site occurrence counter (the dispatch pre-check,
    /// whose natural index — the attempt number — lives in the service,
    /// not the dispatch).
    [[nodiscard]] fault_kind fire(fault_site site, std::uint64_t index);

  private:
    explicit fault_plan(std::vector<event> ev) : events_(std::move(ev)) {}

    mutable std::mutex mu_;
    std::vector<event> events_;
    std::uint64_t occurrences_[4] = {0, 0, 0, 0};  ///< per-site poll counts
    int fired_ = 0;
};

/// Test instrumentation for cancellation checkpoints: every cancel_token
/// poll bumps `polls` and invokes `on_poll` (when set) with the new count.
/// Polls happen sequentially on the thread driving the reduce (the route()
/// pre-check plus one per engine round), so no atomics are needed; tests
/// use the hook to trip a cancel flag at an exact checkpoint and assert the
/// engine stops within one round of it.
struct cancel_probe {
    std::uint64_t polls = 0;
    std::function<void(std::uint64_t)> on_poll;
};

/// Cooperative cancellation token: an optional cancel flag (non-owning;
/// typically a route_handle's) plus an optional absolute deadline.  The
/// engine polls it at merge-round granularity — the nearest-pair selection
/// loop and multi-merge round boundaries — so a fired token stops a reduce
/// within one round.  A default-constructed token never fires and costs a
/// few predictable-branch compares per round.
class cancel_token {
  public:
    using clock = std::chrono::steady_clock;
    [[nodiscard]] static constexpr clock::time_point no_deadline() noexcept {
        return clock::time_point::max();
    }

    cancel_token() = default;
    cancel_token(const std::atomic<bool>* flag, clock::time_point deadline)
        : flag_(flag), deadline_(deadline) {}

    /// True when polling can ever report anything but ok (lets hot loops
    /// hoist the "unarmed" fast path).
    [[nodiscard]] bool armed() const noexcept {
        return flag_ != nullptr || deadline_ != no_deadline() ||
               probe_ != nullptr || faults_ != nullptr ||
               (chain_ != nullptr && chain_->armed());
    }
    [[nodiscard]] clock::time_point deadline() const noexcept {
        return deadline_;
    }
    /// The cancel flag this token watches (non-owning; may be null).  The
    /// shard salvage path uses it to build a deadline-free grace token
    /// that still honors an explicit cancel().
    [[nodiscard]] const std::atomic<bool>* flag() const noexcept {
        return flag_;
    }
    void set_probe(cancel_probe* p) noexcept { probe_ = p; }
    [[nodiscard]] cancel_probe* probe() const noexcept { return probe_; }
    /// Attach a fault-injection schedule (non-owning; null disarms).  Like
    /// probes, faults of a chained token are NOT fired through the chain —
    /// forward the plan with set_faults so each checkpoint consults it
    /// exactly once.
    void set_faults(fault_plan* f) noexcept { faults_ = f; }
    [[nodiscard]] fault_plan* faults() const noexcept { return faults_; }
    /// Chain a second token whose flags/deadlines are also honored,
    /// transitively through any chain of its own (its probes are NOT
    /// driven — forward one with set_probe to count each checkpoint
    /// once).  The service chains a submitted request's own token behind
    /// the handle-wired one, so a caller-provided cancel flag keeps
    /// working through the async path.  Non-owning: every chained token
    /// must outlive every poll, and chains must be acyclic.
    void set_chain(const cancel_token* t) noexcept { chain_ = t; }

    /// One checkpoint: cancelled beats deadline_exceeded when both fired.
    /// The deadline clock is only read when a deadline is set.  Does not
    /// consult the fault plan — use poll_at from sites with a
    /// deterministic index.
    [[nodiscard]] route_status poll() const {
        if (probe_ != nullptr) {
            ++probe_->polls;
            if (probe_->on_poll) probe_->on_poll(probe_->polls);
        }
        return state();
    }

    /// One *named* checkpoint: drives the probe and the flag/deadline
    /// checks exactly like poll(), then fires any fault scheduled for
    /// (site, index).  Cancellation and an already-fired deadline beat an
    /// injected fault (the event stays unconsumed); a worker_stall sleeps
    /// through the remaining deadline budget and reports the resulting
    /// state.  Defined in fault.cpp (the stall needs <thread>).
    [[nodiscard]] route_status poll_at(fault_site site,
                                       std::uint64_t index) const;

  private:
    /// Flag/deadline checks down the whole chain — no probes.
    [[nodiscard]] route_status state() const {
        if (flag_ != nullptr && flag_->load(std::memory_order_relaxed))
            return route_status::cancelled;
        if (deadline_ != no_deadline() && clock::now() >= deadline_)
            return route_status::deadline_exceeded;
        if (chain_ != nullptr) return chain_->state();
        return route_status::ok;
    }

    const std::atomic<bool>* flag_ = nullptr;
    clock::time_point deadline_ = no_deadline();
    cancel_probe* probe_ = nullptr;
    fault_plan* faults_ = nullptr;
    const cancel_token* chain_ = nullptr;
};

class task_executor {
  public:
    virtual ~task_executor() = default;

    /// Run `fn(0) .. fn(n-1)`, possibly concurrently; blocks until every
    /// invocation completed.
    virtual void parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) = 0;

    /// Number of threads that may execute jobs simultaneously (>= 1; the
    /// calling thread counts).
    [[nodiscard]] virtual int concurrency() const noexcept = 0;
};

/// Sequential fallback: `exec == nullptr` runs the loop inline.
inline void run_indexed(task_executor* exec, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
    if (exec == nullptr || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    exec->parallel_for(n, fn);
}

}  // namespace astclk::core
