#pragma once

/// \file executor.hpp
/// Minimal task-execution and cooperative-cancellation contracts shared by
/// the merge engine and the routing service (DESIGN.md §7-§8).
///
/// The engine's multi-merge rounds and the service's batched requests both
/// need "run these n independent jobs, possibly concurrently, and wait".
/// `task_executor` is that contract and nothing more, so the engine stays
/// free of threading machinery: a null executor (the default everywhere)
/// means strictly sequential execution, and the service's thread pool
/// plugs in without the engine knowing it exists.
///
/// Requirements on implementations:
///  * `parallel_for(n, fn)` invokes `fn(i)` exactly once for every
///    i in [0, n) and returns only after all invocations finished;
///  * nested calls from inside a running job must not deadlock (the
///    service's pool has the calling thread claim jobs itself);
///  * if any `fn(i)` throws, one of the thrown exceptions is rethrown to
///    the caller after the remaining jobs finished or were skipped.
///
/// Determinism note: callers must make results independent of execution
/// order (each job writes its own slot).  Everything in this codebase that
/// fans out — NN queries and plan() calls per multi-merge round, the
/// nearest-pair engine's speculative top-k plan() batches, requests per
/// batch — obeys that rule, which is why threaded runs are bit-identical
/// to sequential ones.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>

namespace astclk::core {

/// Terminal disposition of a route request (DESIGN.md §8).  Replaces bare
/// error-string signaling: callers branch on the kind, `status_message`
/// (route_result) carries the human detail.
enum class route_status {
    ok,                 ///< routed normally; the result tree is valid
    cancelled,          ///< cooperative cancellation observed at a checkpoint
    deadline_exceeded,  ///< the per-request deadline fired (possibly before
                        ///< any engine work)
    error,              ///< the strategy threw; see status_message
};

[[nodiscard]] constexpr const char* to_string(route_status s) noexcept {
    switch (s) {
        case route_status::ok: return "ok";
        case route_status::cancelled: return "cancelled";
        case route_status::deadline_exceeded: return "deadline_exceeded";
        case route_status::error: return "error";
    }
    return "?";
}

/// The canonical human wording of a status for
/// route_result::status_message, used everywhere a token fires (the
/// dispatch pre-check, engine interrupts, queued-cancel completion).
/// `ok` maps to the empty string (ok results carry no message); `error`
/// messages normally come from the exception text instead.
[[nodiscard]] constexpr const char* status_message_for(
    route_status s) noexcept {
    switch (s) {
        case route_status::ok: return "";
        case route_status::cancelled: return "cancelled";
        case route_status::deadline_exceeded: return "deadline exceeded";
        case route_status::error: return "error";
    }
    return "?";
}

/// Test instrumentation for cancellation checkpoints: every cancel_token
/// poll bumps `polls` and invokes `on_poll` (when set) with the new count.
/// Polls happen sequentially on the thread driving the reduce (the route()
/// pre-check plus one per engine round), so no atomics are needed; tests
/// use the hook to trip a cancel flag at an exact checkpoint and assert the
/// engine stops within one round of it.
struct cancel_probe {
    std::uint64_t polls = 0;
    std::function<void(std::uint64_t)> on_poll;
};

/// Cooperative cancellation token: an optional cancel flag (non-owning;
/// typically a route_handle's) plus an optional absolute deadline.  The
/// engine polls it at merge-round granularity — the nearest-pair selection
/// loop and multi-merge round boundaries — so a fired token stops a reduce
/// within one round.  A default-constructed token never fires and costs a
/// few predictable-branch compares per round.
class cancel_token {
  public:
    using clock = std::chrono::steady_clock;
    [[nodiscard]] static constexpr clock::time_point no_deadline() noexcept {
        return clock::time_point::max();
    }

    cancel_token() = default;
    cancel_token(const std::atomic<bool>* flag, clock::time_point deadline)
        : flag_(flag), deadline_(deadline) {}

    /// True when polling can ever report anything but ok (lets hot loops
    /// hoist the "unarmed" fast path).
    [[nodiscard]] bool armed() const noexcept {
        return flag_ != nullptr || deadline_ != no_deadline() ||
               probe_ != nullptr || (chain_ != nullptr && chain_->armed());
    }
    [[nodiscard]] clock::time_point deadline() const noexcept {
        return deadline_;
    }
    void set_probe(cancel_probe* p) noexcept { probe_ = p; }
    [[nodiscard]] cancel_probe* probe() const noexcept { return probe_; }
    /// Chain a second token whose flags/deadlines are also honored,
    /// transitively through any chain of its own (its probes are NOT
    /// driven — forward one with set_probe to count each checkpoint
    /// once).  The service chains a submitted request's own token behind
    /// the handle-wired one, so a caller-provided cancel flag keeps
    /// working through the async path.  Non-owning: every chained token
    /// must outlive every poll, and chains must be acyclic.
    void set_chain(const cancel_token* t) noexcept { chain_ = t; }

    /// One checkpoint: cancelled beats deadline_exceeded when both fired.
    /// The deadline clock is only read when a deadline is set.
    [[nodiscard]] route_status poll() const {
        if (probe_ != nullptr) {
            ++probe_->polls;
            if (probe_->on_poll) probe_->on_poll(probe_->polls);
        }
        return state();
    }

  private:
    /// Flag/deadline checks down the whole chain — no probes.
    [[nodiscard]] route_status state() const {
        if (flag_ != nullptr && flag_->load(std::memory_order_relaxed))
            return route_status::cancelled;
        if (deadline_ != no_deadline() && clock::now() >= deadline_)
            return route_status::deadline_exceeded;
        if (chain_ != nullptr) return chain_->state();
        return route_status::ok;
    }

    const std::atomic<bool>* flag_ = nullptr;
    clock::time_point deadline_ = no_deadline();
    cancel_probe* probe_ = nullptr;
    const cancel_token* chain_ = nullptr;
};

class task_executor {
  public:
    virtual ~task_executor() = default;

    /// Run `fn(0) .. fn(n-1)`, possibly concurrently; blocks until every
    /// invocation completed.
    virtual void parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) = 0;

    /// Number of threads that may execute jobs simultaneously (>= 1; the
    /// calling thread counts).
    [[nodiscard]] virtual int concurrency() const noexcept = 0;
};

/// Sequential fallback: `exec == nullptr` runs the loop inline.
inline void run_indexed(task_executor* exec, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
    if (exec == nullptr || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    exec->parallel_for(n, fn);
}

}  // namespace astclk::core
