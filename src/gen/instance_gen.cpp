#include "gen/instance_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace astclk::gen {

std::array<instance_spec, 5> paper_suite() {
    std::array<instance_spec, 5> s;
    s[0] = {"r1", 267, 100000.0, 5e-15, 50e-15, 0.5, 6, 9000.0, 11};
    s[1] = {"r2", 598, 100000.0, 5e-15, 50e-15, 0.5, 9, 9000.0, 12};
    s[2] = {"r3", 862, 100000.0, 5e-15, 50e-15, 0.5, 11, 8500.0, 13};
    s[3] = {"r4", 1903, 100000.0, 5e-15, 50e-15, 0.5, 16, 8000.0, 14};
    s[4] = {"r5", 3101, 100000.0, 5e-15, 50e-15, 0.5, 20, 7500.0, 15};
    return s;
}

instance_spec paper_spec(const std::string& name) {
    for (const auto& s : paper_suite())
        if (s.name == name) return s;
    throw std::invalid_argument("unknown paper benchmark: " + name);
}

std::array<instance_spec, 3> large_suite() {
    std::array<instance_spec, 3> s;
    s[0] = {"l1", 10000, 100000.0, 5e-15, 50e-15, 0.7, 16, 3500.0, 21};
    s[1] = {"l2", 20000, 100000.0, 5e-15, 50e-15, 0.7, 20, 3200.0, 22};
    s[2] = {"l3", 50000, 100000.0, 5e-15, 50e-15, 0.7, 24, 3000.0, 23};
    return s;
}

instance_spec large_spec(const std::string& name) {
    for (const auto& s : large_suite())
        if (s.name == name) return s;
    throw std::invalid_argument("unknown large benchmark: " + name);
}

topo::instance generate(const instance_spec& spec) {
    topo::instance inst;
    inst.name = spec.name;
    inst.die_width = spec.die;
    inst.die_height = spec.die;
    inst.source = {0.5 * spec.die, 0.5 * spec.die};
    inst.num_groups = 1;
    inst.sinks.reserve(static_cast<std::size_t>(spec.num_sinks));

    rng r(spec.seed);
    // Cluster centres, kept away from the die edge by one radius.
    std::vector<geom::point> centres;
    centres.reserve(static_cast<std::size_t>(spec.num_clusters));
    const double margin = std::min(spec.cluster_radius, 0.25 * spec.die);
    for (int c = 0; c < spec.num_clusters; ++c) {
        centres.push_back({r.uniform(margin, spec.die - margin),
                           r.uniform(margin, spec.die - margin)});
    }

    const int clustered = static_cast<int>(
        spec.cluster_fraction * static_cast<double>(spec.num_sinks));
    for (int i = 0; i < spec.num_sinks; ++i) {
        geom::point loc;
        if (i < clustered && !centres.empty()) {
            const auto& c = centres[r.below(centres.size())];
            loc = {c.x + r.uniform(-spec.cluster_radius, spec.cluster_radius),
                   c.y + r.uniform(-spec.cluster_radius, spec.cluster_radius)};
            loc.x = std::clamp(loc.x, 0.0, spec.die);
            loc.y = std::clamp(loc.y, 0.0, spec.die);
        } else {
            loc = {r.uniform(0.0, spec.die), r.uniform(0.0, spec.die)};
        }
        topo::sink s;
        s.loc = loc;
        s.cap = r.uniform(spec.cap_min, spec.cap_max);
        s.group = 0;
        inst.sinks.push_back(s);
    }
    return inst;
}

}  // namespace astclk::gen
