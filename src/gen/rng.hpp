#pragma once

/// \file rng.hpp
/// Deterministic random number generation for benchmark synthesis.
///
/// A self-contained xoshiro256** implementation (seeded via splitmix64) so
/// instances are bit-reproducible across platforms and standard-library
/// versions — std::mt19937 distributions are not portable across vendors.

#include <cstdint>

namespace astclk::gen {

class rng {
  public:
    explicit rng(std::uint64_t seed) {
        // splitmix64 seeding, the reference recommendation for xoshiro.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /// Next raw 64-bit value (xoshiro256**).
    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t below(std::uint64_t n) {
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant for benchmark synthesis but we keep it tiny: 2^-64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
    }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4];
};

}  // namespace astclk::gen
