#pragma once

/// \file patterns.hpp
/// Hand-shaped pathological instances used by the figure benches and the
/// adversarial tests:
///
///  * **alternating comb** — two groups interleaved along a line (Fig. 2's
///    worst case for separate construction);
///  * **two clusters** — a dense cluster per group at opposite die corners
///    plus stragglers (the *clustered* regime in miniature);
///  * **ring** — sinks on a circle with round-robin groups (uniform
///    intermingling with rotational symmetry);
///  * **depth ramp** — a heavy cluster next to isolated far sinks of the
///    same group, engineered to force wire snaking.

#include "topo/instance.hpp"

namespace astclk::gen {

/// `teeth` sinks spaced `pitch` apart on a horizontal line, alternating
/// between `k` groups round-robin.
[[nodiscard]] topo::instance alternating_comb(int teeth, int k = 2,
                                              double pitch = 10.0,
                                              double sink_cap = 10e-15);

/// Two groups of `per_cluster` sinks in tight clusters at opposite corners
/// of a `die`-sized layout, plus one straggler of each group near the
/// opposite cluster (so the groups are *not* geometrically separable).
[[nodiscard]] topo::instance two_clusters(int per_cluster, double die = 1000.0,
                                          double radius = 50.0,
                                          double sink_cap = 10e-15);

/// `n` sinks evenly on a circle of radius `r`, groups assigned round-robin
/// over `k`.
[[nodiscard]] topo::instance ring(int n, int k, double r = 500.0,
                                  double sink_cap = 10e-15);

/// A line of `chain` same-group sinks spanning `span` units (deep subtree,
/// large internal delay) with one extra same-group sink placed `offset`
/// units past the end — merging it forces root-edge snaking.
[[nodiscard]] topo::instance depth_ramp(int chain, double span = 2000.0,
                                        double offset = 10.0,
                                        double sink_cap = 10e-15);

}  // namespace astclk::gen
