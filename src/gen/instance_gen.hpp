#pragma once

/// \file instance_gen.hpp
/// Synthetic clock-routing instances standing in for the r1-r5 benchmarks.
///
/// The original r1-r5 instances (Tsay; used by the BST paper and by this
/// paper's experiments) are not redistributable, so we synthesise instances
/// with the same sink counts (267 / 598 / 862 / 1903 / 3101), a
/// 100 000 x 100 000-unit die (10 mm at 0.1 um/unit), sink loads of
/// 5-50 fF and a mixture of uniform background sinks and local clusters —
/// the spatial character that makes greedy merging non-trivial.  All
/// randomness is seeded, so every table in EXPERIMENTS.md is reproducible
/// bit-for-bit.

#include "gen/rng.hpp"
#include "topo/instance.hpp"

#include <array>
#include <string>

namespace astclk::gen {

/// Parameters of a synthetic instance.
struct instance_spec {
    std::string name;
    int num_sinks = 0;
    double die = 100000.0;        ///< square die side, units
    double cap_min = 5e-15;       ///< sink load range, farads
    double cap_max = 50e-15;
    double cluster_fraction = 0.5;  ///< share of sinks placed in clusters
    int num_clusters = 8;
    double cluster_radius = 8000.0;  ///< cluster half-extent, units
    std::uint64_t seed = 1;
};

/// The five paper benchmarks (sink counts from Tables I/II).
[[nodiscard]] std::array<instance_spec, 5> paper_suite();

/// Look up a paper benchmark by name ("r1".."r5"); throws on unknown names.
[[nodiscard]] instance_spec paper_spec(const std::string& name);

/// The large-instance family ("l1".."l3", 10k/20k/50k sinks): an order of
/// magnitude past r5, with the denser clustering of real register banks
/// (70% of sinks in tight 3000–3500-unit clusters).  The regime the
/// sharded reduction targets — a monolithic uniform grid sized for the
/// whole die drowns in the dense cells, while per-shard grids stay local.
[[nodiscard]] std::array<instance_spec, 3> large_suite();

/// Look up a large benchmark by name ("l1".."l3"); throws on unknown names.
[[nodiscard]] instance_spec large_spec(const std::string& name);

/// Generate sinks (all in group 0; apply a grouping afterwards) with the
/// source at the die centre.
[[nodiscard]] topo::instance generate(const instance_spec& spec);

}  // namespace astclk::gen
