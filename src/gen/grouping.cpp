#include "gen/grouping.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace astclk::gen {

namespace {

/// Most balanced cols x rows factorisation with cols * rows == k.
std::pair<int, int> balanced_grid(int k) {
    int best_c = k, best_r = 1;
    for (int c = 1; c * c <= k; ++c) {
        if (k % c == 0) {
            best_r = c;
            best_c = k / c;
        }
    }
    return {best_c, best_r};
}

}  // namespace

void apply_clustered_groups(topo::instance& inst, int k) {
    assert(k >= 1);
    const auto [cols, rows] = balanced_grid(k);
    const double bw = inst.die_width / cols;
    const double bh = inst.die_height / rows;
    std::vector<int> box_of(inst.sinks.size());
    for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
        const auto& s = inst.sinks[i];
        int cx = static_cast<int>(s.loc.x / bw);
        int cy = static_cast<int>(s.loc.y / bh);
        cx = std::clamp(cx, 0, cols - 1);
        cy = std::clamp(cy, 0, rows - 1);
        box_of[i] = cy * cols + cx;
    }
    // Compact away empty boxes so group ids are dense.
    std::vector<int> remap(static_cast<std::size_t>(k), -1);
    int next = 0;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i) {
        auto& slot = remap[static_cast<std::size_t>(box_of[i])];
        if (slot < 0) slot = next++;
        inst.sinks[i].group = slot;
    }
    inst.num_groups = next;
}

void apply_intermingled_groups(topo::instance& inst, int k,
                               std::uint64_t seed) {
    assert(k >= 1);
    assert(inst.sinks.size() >= static_cast<std::size_t>(k));
    rng r(seed);
    // One guaranteed member per group, drawn without replacement.
    std::vector<std::size_t> order(inst.sinks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[r.below(i)]);
    for (int g = 0; g < k; ++g)
        inst.sinks[order[static_cast<std::size_t>(g)]].group = g;
    for (std::size_t i = static_cast<std::size_t>(k); i < order.size(); ++i)
        inst.sinks[order[i]].group = static_cast<topo::group_id>(
            r.below(static_cast<std::uint64_t>(k)));
    inst.num_groups = k;
}

}  // namespace astclk::gen
