#pragma once

/// \file grouping.hpp
/// Sink-group partitioners for the two experimental regimes of Ch. VI.
///
/// * **Clustered** (Table I): the die is divided into k rectangular boxes;
///   sinks in the same box share a group.  Groups are geometrically
///   separated, so cross-group merges are rare and the AST advantage is
///   modest — exactly the paper's expectation.
/// * **Intermingled** (Table II): sinks are assigned to k groups uniformly
///   at random, maximally interleaving the groups — the "difficult
///   instances" of the title, where separate construction wastes wire and
///   AST-DME shines.

#include "gen/rng.hpp"
#include "topo/instance.hpp"

namespace astclk::gen {

/// Divide the die into a grid of `k` boxes (columns x rows chosen as the
/// most balanced factorisation, e.g. 4 -> 2x2, 6 -> 3x2, 10 -> 5x2) and
/// group sinks by containing box.  Empty boxes are compacted away so every
/// group id in [0, num_groups) is populated.
void apply_clustered_groups(topo::instance& inst, int k);

/// Assign each sink independently and uniformly to one of `k` groups
/// (deterministic under `seed`); guarantees every group non-empty by
/// seeding one sink per group first.
void apply_intermingled_groups(topo::instance& inst, int k,
                               std::uint64_t seed);

}  // namespace astclk::gen
