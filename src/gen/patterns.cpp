#include "gen/patterns.hpp"

#include <cmath>

namespace astclk::gen {

topo::instance alternating_comb(int teeth, int k, double pitch,
                                double sink_cap) {
    topo::instance inst;
    inst.name = "comb" + std::to_string(teeth) + "x" + std::to_string(k);
    inst.num_groups = k;
    inst.die_width = pitch * teeth;
    inst.die_height = 2.0 * pitch;
    inst.source = {inst.die_width / 2, pitch};
    for (int i = 0; i < teeth; ++i)
        inst.sinks.push_back({{pitch * i + 1.0, pitch},
                              sink_cap,
                              static_cast<topo::group_id>(i % k)});
    return inst;
}

topo::instance two_clusters(int per_cluster, double die, double radius,
                            double sink_cap) {
    topo::instance inst;
    inst.name = "two_clusters";
    inst.num_groups = 2;
    inst.die_width = inst.die_height = die;
    inst.source = {die / 2, die / 2};
    const geom::point c0{radius * 2, radius * 2};
    const geom::point c1{die - radius * 2, die - radius * 2};
    for (int i = 0; i < per_cluster; ++i) {
        // Deterministic spiral placement inside each cluster.
        const double a = 0.61803398875 * 2 * 3.14159265358979 * i;
        const double rr = radius * std::sqrt((i + 0.5) / per_cluster);
        inst.sinks.push_back(
            {{c0.x + rr * std::cos(a), c0.y + rr * std::sin(a)}, sink_cap, 0});
        inst.sinks.push_back(
            {{c1.x + rr * std::cos(a), c1.y + rr * std::sin(a)}, sink_cap, 1});
    }
    // Stragglers: one sink of each group deep inside the other's cluster.
    inst.sinks.push_back({{c1.x - radius, c1.y}, sink_cap, 0});
    inst.sinks.push_back({{c0.x + radius, c0.y}, sink_cap, 1});
    return inst;
}

topo::instance ring(int n, int k, double r, double sink_cap) {
    topo::instance inst;
    inst.name = "ring" + std::to_string(n);
    inst.num_groups = k;
    inst.die_width = inst.die_height = 2.2 * r;
    inst.source = {1.1 * r, 1.1 * r};
    for (int i = 0; i < n; ++i) {
        const double a = 2 * 3.14159265358979 * i / n;
        inst.sinks.push_back({{1.1 * r + r * std::cos(a),
                               1.1 * r + r * std::sin(a)},
                              sink_cap,
                              static_cast<topo::group_id>(i % k)});
    }
    return inst;
}

topo::instance depth_ramp(int chain, double span, double offset,
                          double sink_cap) {
    topo::instance inst;
    inst.name = "depth_ramp";
    inst.num_groups = 1;
    inst.die_width = span + offset + 10.0;
    inst.die_height = 20.0;
    inst.source = {0.0, 10.0};
    for (int i = 0; i < chain; ++i)
        inst.sinks.push_back(
            {{span * i / std::max(1, chain - 1), 10.0}, sink_cap, 0});
    inst.sinks.push_back({{span + offset, 10.0}, sink_cap, 0});
    return inst;
}

}  // namespace astclk::gen
