#include "gen/rng.hpp"

// rng is header-only; this translation unit anchors the library.

namespace astclk::gen {}
