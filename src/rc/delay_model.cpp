#include "rc/delay_model.hpp"

// delay_model is header-only; this translation unit anchors the library.

namespace astclk::rc {}
