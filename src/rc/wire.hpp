#pragma once

/// \file wire.hpp
/// Interconnect technology parameters.
///
/// Lengths are in abstract layout units (the synthetic r1-r5 instances use
/// 0.1 um units on a 100 000 x 100 000 die), resistance in ohms per unit and
/// capacitance in farads per unit; delays come out in seconds.

#include <iosfwd>

namespace astclk::rc {

/// Per-unit-length wire parasitics.
struct wire_params {
    double res_per_unit = 0.0;  ///< ohm / unit
    double cap_per_unit = 0.0;  ///< farad / unit

    friend bool operator==(const wire_params&, const wire_params&) = default;
};

/// Technology preset modelled on the parameters commonly used with the
/// r1-r5 clock benchmarks: 0.003 ohm and 0.02 fF per unit.
[[nodiscard]] constexpr wire_params classic_clock_tech() {
    return {0.003, 0.02e-15};
}

/// Seconds -> picoseconds, the unit the paper reports skew in.
[[nodiscard]] constexpr double to_ps(double seconds) { return seconds * 1e12; }

std::ostream& operator<<(std::ostream& os, const wire_params& w);

}  // namespace astclk::rc
