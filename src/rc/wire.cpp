#include "rc/wire.hpp"

#include <ostream>

namespace astclk::rc {

std::ostream& operator<<(std::ostream& os, const wire_params& w) {
    return os << "{r=" << w.res_per_unit << " ohm/u, c=" << w.cap_per_unit
              << " F/u}";
}

}  // namespace astclk::rc
