#pragma once

/// \file delay_model.hpp
/// Edge-delay models for clock routing.
///
/// The paper (Ch. III) uses the **Elmore** model with pi-model wire
/// segments: a wire of length x driving downstream capacitance C adds
///     e(x, C) = r*x * (c*x/2 + C)
/// to the delay of every sink below it — crucially the *same* amount for
/// every such sink, which is what freezes intra-subtree skews and makes
/// bottom-up merging sound.
///
/// The **path-length** (linear) model of the prior associative-skew work
/// [Chen-Kahng-Qu-Zelikovsky, ICCAD'99] is also provided: e(x, C) = x.
/// The paper argues it cannot control real skew; we keep it both to
/// reproduce the didactic Fig. 1 numbers and to demonstrate that claim
/// experimentally.

#include "rc/wire.hpp"

namespace astclk::rc {

enum class model_kind {
    elmore,       ///< pi-model Elmore delay (the paper's model)
    path_length,  ///< geometric path length (prior work's model)
};

/// A concrete delay model: kind + technology.  Value type, cheap to copy.
struct delay_model {
    model_kind kind = model_kind::elmore;
    wire_params wire = classic_clock_tech();

    /// Delay added by a wire of length `len` whose far end drives total
    /// capacitance `downstream_cap`.
    [[nodiscard]] double edge_delay(double len, double downstream_cap) const {
        if (kind == model_kind::path_length) return len;
        return wire.res_per_unit * len *
               (0.5 * wire.cap_per_unit * len + downstream_cap);
    }

    /// Capacitance contributed by a wire of length `len` (0 for the
    /// path-length model, which is purely geometric).
    [[nodiscard]] double wire_cap(double len) const {
        if (kind == model_kind::path_length) return 0.0;
        return wire.cap_per_unit * len;
    }

    /// Convenience factory for the paper's Elmore setting.
    static delay_model elmore(wire_params w = classic_clock_tech()) {
        return {model_kind::elmore, w};
    }

    /// Convenience factory for the prior work's linear setting.
    static delay_model path_length() {
        return {model_kind::path_length, {}};
    }
};

}  // namespace astclk::rc
