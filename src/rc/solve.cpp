#include "rc/solve.hpp"

#include <cassert>
#include <cmath>

namespace astclk::rc {

std::optional<double> length_for_delay(const delay_model& m, double target,
                                       double downstream_cap) {
    assert(target >= 0.0);
    if (target == 0.0) return 0.0;
    if (m.kind == model_kind::path_length) return target;
    const double r = m.wire.res_per_unit;
    const double c = m.wire.cap_per_unit;
    if (r <= 0.0) return std::nullopt;
    if (c <= 0.0) {
        // Pure-resistance degenerate case: e(l) = r*C*l.
        if (downstream_cap <= 0.0) return std::nullopt;
        return target / (r * downstream_cap);
    }
    // (rc/2) l^2 + r C l - target = 0, positive root.
    const double a = 0.5 * r * c;
    const double b = r * downstream_cap;
    const double disc = b * b + 4.0 * a * target;
    return (-b + std::sqrt(disc)) / (2.0 * a);
}

std::optional<double> snake_for_extra_delay(const delay_model& m, double len,
                                            double downstream_cap,
                                            double extra_delay) {
    assert(len >= 0.0 && extra_delay >= 0.0);
    if (extra_delay == 0.0) return 0.0;
    if (m.kind == model_kind::path_length) return extra_delay;
    // e(len + g, C) - e(len, C) = (rc/2)(2 len g + g^2) + r C g.
    const double r = m.wire.res_per_unit;
    const double c = m.wire.cap_per_unit;
    if (r <= 0.0) return std::nullopt;
    const double a = 0.5 * r * c;
    const double b = r * c * len + r * downstream_cap;
    if (a <= 0.0) {
        if (b <= 0.0) return std::nullopt;
        return extra_delay / b;
    }
    const double disc = b * b + 4.0 * a * extra_delay;
    return (-b + std::sqrt(disc)) / (2.0 * a);
}

double delay_diff(const delay_model& m, double span, double cap_a,
                  double cap_b, double alpha) {
    return m.edge_delay(span - alpha, cap_b) - m.edge_delay(alpha, cap_a);
}

std::optional<double> split_for_target(const delay_model& m, double span,
                                       double cap_a, double cap_b,
                                       double target) {
    if (m.kind == model_kind::path_length) {
        // (span - alpha) - alpha = target.
        return 0.5 * (span - target);
    }
    const double r = m.wire.res_per_unit;
    const double c = m.wire.cap_per_unit;
    // D(alpha) = (rc/2)(span^2 - 2 span alpha) + r c_b span
    //            - alpha r (c_a + c_b)            [quadratics cancel]
    const double denom = r * c * span + r * (cap_a + cap_b);
    if (denom <= 0.0) return std::nullopt;
    const double num = 0.5 * r * c * span * span + r * cap_b * span - target;
    return num / denom;
}

}  // namespace astclk::rc
