#pragma once

/// \file solve.hpp
/// Closed-form solvers for the merge equations of DME-style routing.
///
/// All of the paper's layout-embedding mathematics (Ch. V, Eqs. 5.1-5.3)
/// reduces to two primitives:
///
///  1. **Split.** Place the merge point at distance alpha from child A and
///     beta = L - alpha from child B so that the delay difference
///         D(alpha) = e(beta, C_B) - e(alpha, C_A)
///     hits a target.  Under Elmore the quadratic terms cancel and D is
///     *linear* in alpha, so the solve is exact.
///
///  2. **Snake.** When the target is outside the reachable range, keep one
///     side at zero and lengthen the other beyond L (wire snaking):
///     a single positive-root quadratic.
///
/// The same primitives, applied to an interior edge of an already-built
/// subtree, implement the paper's Eq. (5.2) gamma-snaking for partially
/// shared groups.

#include "rc/delay_model.hpp"

#include <optional>

namespace astclk::rc {

/// Smallest non-negative wire length whose edge delay into `downstream_cap`
/// equals `target` (>= 0).  Elmore: positive root of
/// (rc/2) l^2 + r C l - target = 0; path-length: target itself.
/// Returns nullopt when the model cannot reach the target (r == 0).
[[nodiscard]] std::optional<double> length_for_delay(const delay_model& m,
                                                     double target,
                                                     double downstream_cap);

/// Extra length gamma >= 0 such that extending an edge of current length
/// `len` driving `downstream_cap` adds exactly `extra_delay` >= 0:
///     e(len + gamma, C) - e(len, C) = extra_delay.
[[nodiscard]] std::optional<double> snake_for_extra_delay(const delay_model& m,
                                                          double len,
                                                          double downstream_cap,
                                                          double extra_delay);

/// Delay difference D(alpha) = e(L - alpha, C_b) - e(alpha, C_a) for a merge
/// of span L.  Decreasing in alpha.
[[nodiscard]] double delay_diff(const delay_model& m, double span, double cap_a,
                                double cap_b, double alpha);

/// Exact alpha with delay_diff(alpha) == target, unclamped (may fall outside
/// [0, span], signalling that snaking is needed).  Under Elmore D is linear
/// in alpha; under path-length it is linear too.  Returns nullopt for a
/// degenerate system (span == 0 with both caps 0 under Elmore, etc.) —
/// callers treat span == 0 specially anyway.
[[nodiscard]] std::optional<double> split_for_target(const delay_model& m,
                                                     double span, double cap_a,
                                                     double cap_b,
                                                     double target);

}  // namespace astclk::rc
