#include "topo/tree.hpp"

#include <cassert>
#include <sstream>

namespace astclk::topo {

node_id clock_tree::add_leaf(const instance& inst, std::int32_t sink_index) {
    assert(sink_index >= 0 &&
           static_cast<std::size_t>(sink_index) < inst.sinks.size());
    const sink& s = inst.sinks[static_cast<std::size_t>(sink_index)];
    tree_node n;
    n.id = static_cast<node_id>(nodes_.size());
    n.sink_index = sink_index;
    n.arc = geom::tilted_rect::at(s.loc);
    n.subtree_cap = s.cap;
    n.delays = group_delays::single(s.group);
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

node_id clock_tree::add_internal(node_id left, node_id right,
                                 geom::tilted_rect arc, double edge_left,
                                 double edge_right, double subtree_cap,
                                 group_delays delays) {
    assert(left >= 0 && right >= 0);
    tree_node n;
    n.id = static_cast<node_id>(nodes_.size());
    n.left = left;
    n.right = right;
    n.arc = arc;
    n.edge_left = edge_left;
    n.edge_right = edge_right;
    n.subtree_cap = subtree_cap;
    n.delays = std::move(delays);
    nodes_.push_back(std::move(n));
    const node_id id = nodes_.back().id;
    nodes_[static_cast<std::size_t>(left)].parent = id;
    nodes_[static_cast<std::size_t>(right)].parent = id;
    return id;
}

node_id clock_tree::absorb(const clock_tree& donor) {
    const auto shift = static_cast<node_id>(nodes_.size());
    for (const tree_node& dn : donor.nodes_) {
        tree_node n = dn;
        n.id += shift;
        if (n.left != knull_node) n.left += shift;
        if (n.right != knull_node) n.right += shift;
        if (n.parent != knull_node) n.parent += shift;
        nodes_.push_back(std::move(n));
    }
    return shift;
}

double clock_tree::total_wirelength() const {
    double wl = source_edge_;
    for (const auto& n : nodes_) {
        if (!n.is_leaf()) wl += n.edge_left + n.edge_right;
    }
    return wl;
}

std::vector<std::int32_t> clock_tree::sinks_under(node_id id) const {
    std::vector<std::int32_t> out;
    std::vector<node_id> stack{id};
    while (!stack.empty()) {
        const node_id cur = stack.back();
        stack.pop_back();
        const tree_node& n = node(cur);
        if (n.is_leaf())
            out.push_back(n.sink_index);
        else {
            stack.push_back(n.left);
            stack.push_back(n.right);
        }
    }
    return out;
}

std::vector<node_id> clock_tree::postorder() const {
    std::vector<node_id> out;
    if (root_ == knull_node) return out;
    // Iterative post-order: push (node, visited) pairs.
    std::vector<std::pair<node_id, bool>> stack{{root_, false}};
    while (!stack.empty()) {
        auto [cur, visited] = stack.back();
        stack.pop_back();
        const tree_node& n = node(cur);
        if (visited || n.is_leaf()) {
            out.push_back(cur);
            continue;
        }
        stack.push_back({cur, true});
        stack.push_back({n.right, false});
        stack.push_back({n.left, false});
    }
    return out;
}

std::string clock_tree::check_structure(std::size_t num_sinks) const {
    std::ostringstream err;
    if (root_ == knull_node) return "no root";
    std::vector<int> seen(num_sinks, 0);
    std::size_t visited = 0;
    std::vector<node_id> stack{root_};
    while (!stack.empty()) {
        const node_id cur = stack.back();
        stack.pop_back();
        ++visited;
        const tree_node& n = node(cur);
        if (n.is_leaf()) {
            if (static_cast<std::size_t>(n.sink_index) >= num_sinks) {
                err << "leaf " << cur << " has bad sink index";
                return err.str();
            }
            ++seen[static_cast<std::size_t>(n.sink_index)];
        } else {
            if (n.left < 0 || n.right < 0) {
                err << "internal node " << cur << " missing child";
                return err.str();
            }
            if (node(n.left).parent != cur || node(n.right).parent != cur) {
                err << "parent/child mismatch at node " << cur;
                return err.str();
            }
            stack.push_back(n.left);
            stack.push_back(n.right);
        }
    }
    for (std::size_t i = 0; i < num_sinks; ++i) {
        if (seen[i] != 1) {
            err << "sink " << i << " appears " << seen[i] << " times";
            return err.str();
        }
    }
    if (visited != 2 * num_sinks - 1) {
        err << "expected " << 2 * num_sinks - 1 << " reachable nodes, found "
            << visited;
        return err.str();
    }
    return {};
}

}  // namespace astclk::topo
