#pragma once

/// \file instance.hpp
/// The associative-skew clock routing problem instance (Ch. II).
///
/// Sinks live in the Manhattan plane, each with a load capacitance and a
/// group id in [0, num_groups).  Zero (or bounded) skew is required *within*
/// each group; nothing is required *between* groups.  Conventional problems
/// are the special case num_groups == 1.

#include "geom/point.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace astclk::topo {

using group_id = std::int32_t;

/// One clock sink (flip-flop clock pin).
struct sink {
    geom::point loc;
    double cap = 0.0;      ///< load capacitance, farads
    group_id group = 0;    ///< association group

    friend bool operator==(const sink&, const sink&) = default;
};

/// A full routing instance.
struct instance {
    std::string name;
    std::vector<sink> sinks;
    geom::point source;      ///< clock source location
    double die_width = 0.0;  ///< layout extent, units (x in [0, die_width])
    double die_height = 0.0;
    group_id num_groups = 1;

    [[nodiscard]] std::size_t size() const { return sinks.size(); }

    /// Sinks of one group, as indices.
    [[nodiscard]] std::vector<std::int32_t> group_members(group_id g) const {
        std::vector<std::int32_t> out;
        for (std::size_t i = 0; i < sinks.size(); ++i)
            if (sinks[i].group == g) out.push_back(static_cast<std::int32_t>(i));
        return out;
    }

    /// Validates group ids, capacitances and coordinates; returns a
    /// human-readable problem description or the empty string when valid.
    [[nodiscard]] std::string validate() const;
};

}  // namespace astclk::topo
