#pragma once

/// \file group_map.hpp
/// Per-group delay bookkeeping for subtree roots.
///
/// Every active subtree root carries, for each *original* sink group with
/// members below it, the exact interval of Elmore delays from the root's
/// merging arc to those sinks.  Because wire added above a root delays all
/// sinks below it equally, these intervals are exact forever ("frozen
/// skew"), and shifting a whole subtree is a scalar add.
///
/// Zero-skew groups keep degenerate intervals bit-exactly: lo and hi always
/// undergo the same arithmetic.

#include "geom/interval.hpp"
#include "topo/instance.hpp"

#include <iosfwd>
#include <utility>
#include <vector>

namespace astclk::topo {

/// Sorted association list group_id -> delay interval.  Group counts per
/// subtree are small (<= k, typically <= 10), so a flat sorted vector beats
/// any tree/hash container.
class group_delays {
  public:
    using entry = std::pair<group_id, geom::interval>;

    group_delays() = default;

    /// Single-group map (the state of a leaf: delay 0 to its own group).
    static group_delays single(group_id g, geom::interval iv = geom::interval::at(0.0)) {
        group_delays m;
        m.entries_.emplace_back(g, iv);
        return m;
    }

    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    [[nodiscard]] const std::vector<entry>& entries() const { return entries_; }

    /// Interval for group g, or nullptr when absent.
    [[nodiscard]] const geom::interval* find(group_id g) const;

    /// Insert or overwrite the interval of group g.
    void set(group_id g, geom::interval iv);

    /// Add d to every interval (wire added above the subtree root).
    void shift_all(double d);

    /// Union (hull) per group of two shifted maps — the delay map of a
    /// subtree merged from children a (shifted by da) and b (shifted by db).
    [[nodiscard]] static group_delays merged(const group_delays& a, double da,
                                             const group_delays& b, double db);

    /// Group ids present in both maps (the "shared groups" of a merge).
    [[nodiscard]] std::vector<group_id> shared_with(const group_delays& o) const;

    /// True when no group id is present in both maps.
    [[nodiscard]] bool disjoint_from(const group_delays& o) const;

    /// All group ids, ascending.
    [[nodiscard]] std::vector<group_id> groups() const;

    /// Largest intra-group spread (hi - lo) over all groups.
    [[nodiscard]] double max_spread() const;

    /// Hull of all intervals (min lo, max hi) — the subtree's overall delay
    /// range, used by balance heuristics.  Empty map -> empty interval.
    [[nodiscard]] geom::interval overall() const;

    friend bool operator==(const group_delays&, const group_delays&) = default;

  private:
    std::vector<entry> entries_;  // sorted by group id, unique
};

std::ostream& operator<<(std::ostream& os, const group_delays& m);

}  // namespace astclk::topo
