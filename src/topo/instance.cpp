#include "topo/instance.hpp"

#include <sstream>

namespace astclk::topo {

std::string instance::validate() const {
    std::ostringstream err;
    if (sinks.empty()) return "instance has no sinks";
    if (num_groups <= 0) return "num_groups must be positive";
    std::vector<int> members(static_cast<std::size_t>(num_groups), 0);
    for (std::size_t i = 0; i < sinks.size(); ++i) {
        const sink& s = sinks[i];
        if (s.group < 0 || s.group >= num_groups) {
            err << "sink " << i << " has group " << s.group << " outside [0, "
                << num_groups << ')';
            return err.str();
        }
        if (s.cap < 0.0) {
            err << "sink " << i << " has negative capacitance";
            return err.str();
        }
        ++members[static_cast<std::size_t>(s.group)];
    }
    for (group_id g = 0; g < num_groups; ++g) {
        if (members[static_cast<std::size_t>(g)] == 0) {
            err << "group " << g << " has no sinks";
            return err.str();
        }
    }
    return {};
}

}  // namespace astclk::topo
