#pragma once

/// \file tree.hpp
/// Clock-tree arena shared by all routers.
///
/// Nodes live in a flat vector; children are indices.  Each node stores the
/// bottom-up results (merging arc, electrical edge lengths to children,
/// downstream capacitance, per-group delay map) and, after the top-down
/// pass, its embedded location.
///
/// Electrical edge lengths may exceed the geometric distance between the
/// embedded endpoints — the difference is wire snaking, which the embedder
/// accounts for explicitly.

#include "geom/point.hpp"
#include "geom/tilted_rect.hpp"
#include "topo/group_map.hpp"
#include "topo/instance.hpp"

#include <cstdint>
#include <vector>

namespace astclk::topo {

using node_id = std::int32_t;
inline constexpr node_id knull_node = -1;

struct tree_node {
    node_id id = knull_node;
    node_id left = knull_node;
    node_id right = knull_node;
    node_id parent = knull_node;
    std::int32_t sink_index = -1;  ///< leaf: index into instance::sinks

    geom::tilted_rect arc;     ///< merging segment (iso-delay locus)
    double edge_left = 0.0;    ///< electrical length to left child
    double edge_right = 0.0;   ///< electrical length to right child
    double subtree_cap = 0.0;  ///< downstream cap incl. sink loads and wire
    group_delays delays;       ///< delay intervals from arc, per group

    geom::point placed;        ///< top-down embedding result
    bool is_placed = false;

    [[nodiscard]] bool is_leaf() const { return sink_index >= 0; }
};

/// Owning arena for one routed clock tree.
class clock_tree {
  public:
    clock_tree() = default;

    /// Create a leaf for sink `s` of the instance.
    node_id add_leaf(const instance& inst, std::int32_t sink_index);

    /// Create an internal node over two existing roots.  Children gain a
    /// parent; edge lengths are *electrical* (may embed with snaking).
    node_id add_internal(node_id left, node_id right, geom::tilted_rect arc,
                         double edge_left, double edge_right,
                         double subtree_cap, group_delays delays);

    /// Append every node of `donor` in id order, shifting all node
    /// references (id, children, parent) by this tree's current size;
    /// returns that shift.  Donor node `i` becomes node `shift + i`, so a
    /// donor root maps deterministically — the sharded reduction uses this
    /// to combine independently built per-shard trees into one arena
    /// before stitching their roots.  The donor's root/source-edge
    /// bookkeeping is not carried over (grafted subtrees are roots among
    /// others until a later merge adopts them).  Deliberately does not
    /// reserve: per-call exact reservations would defeat the vector's
    /// geometric growth across an absorb chain (quadratic node copies);
    /// callers that know the final size should `reserve_nodes` once.
    node_id absorb(const clock_tree& donor);

    /// Reserve arena capacity for `n` nodes (absorb chains, bulk builds).
    void reserve_nodes(std::size_t n) { nodes_.reserve(n); }

    [[nodiscard]] const tree_node& node(node_id id) const { return nodes_[static_cast<std::size_t>(id)]; }
    [[nodiscard]] tree_node& node(node_id id) { return nodes_[static_cast<std::size_t>(id)]; }

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }

    [[nodiscard]] node_id root() const { return root_; }
    void set_root(node_id id) { root_ = id; }

    /// Electrical length of the source-to-root connection.
    [[nodiscard]] double source_edge() const { return source_edge_; }
    void set_source_edge(double len) { source_edge_ = len; }

    /// Sum of all electrical edge lengths plus the source connection — the
    /// paper's "Wirelen" metric.
    [[nodiscard]] double total_wirelength() const;

    /// Sink indices below a node, in traversal order.
    [[nodiscard]] std::vector<std::int32_t> sinks_under(node_id id) const;

    /// Post-order node ids from the root (children before parents).
    [[nodiscard]] std::vector<node_id> postorder() const;

    /// Structural sanity: parent/child symmetry, single root, every sink
    /// appears exactly once.  Returns a diagnostic or "" when consistent.
    [[nodiscard]] std::string check_structure(std::size_t num_sinks) const;

  private:
    std::vector<tree_node> nodes_;
    node_id root_ = knull_node;
    double source_edge_ = 0.0;
};

}  // namespace astclk::topo
