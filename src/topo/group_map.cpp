#include "topo/group_map.hpp"

#include <algorithm>
#include <ostream>

namespace astclk::topo {

const geom::interval* group_delays::find(group_id g) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), g,
        [](const entry& e, group_id key) { return e.first < key; });
    if (it != entries_.end() && it->first == g) return &it->second;
    return nullptr;
}

void group_delays::set(group_id g, geom::interval iv) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), g,
        [](const entry& e, group_id key) { return e.first < key; });
    if (it != entries_.end() && it->first == g)
        it->second = iv;
    else
        entries_.insert(it, {g, iv});
}

void group_delays::shift_all(double d) {
    for (auto& [g, iv] : entries_) iv = iv.shifted(d);
}

group_delays group_delays::merged(const group_delays& a, double da,
                                  const group_delays& b, double db) {
    group_delays out;
    out.entries_.reserve(a.entries_.size() + b.entries_.size());
    auto ia = a.entries_.begin();
    auto ib = b.entries_.begin();
    while (ia != a.entries_.end() || ib != b.entries_.end()) {
        if (ib == b.entries_.end() ||
            (ia != a.entries_.end() && ia->first < ib->first)) {
            out.entries_.emplace_back(ia->first, ia->second.shifted(da));
            ++ia;
        } else if (ia == a.entries_.end() || ib->first < ia->first) {
            out.entries_.emplace_back(ib->first, ib->second.shifted(db));
            ++ib;
        } else {
            out.entries_.emplace_back(
                ia->first, ia->second.shifted(da).hull(ib->second.shifted(db)));
            ++ia;
            ++ib;
        }
    }
    return out;
}

std::vector<group_id> group_delays::shared_with(const group_delays& o) const {
    std::vector<group_id> out;
    auto ia = entries_.begin();
    auto ib = o.entries_.begin();
    while (ia != entries_.end() && ib != o.entries_.end()) {
        if (ia->first < ib->first)
            ++ia;
        else if (ib->first < ia->first)
            ++ib;
        else {
            out.push_back(ia->first);
            ++ia;
            ++ib;
        }
    }
    return out;
}

bool group_delays::disjoint_from(const group_delays& o) const {
    auto ia = entries_.begin();
    auto ib = o.entries_.begin();
    while (ia != entries_.end() && ib != o.entries_.end()) {
        if (ia->first < ib->first)
            ++ia;
        else if (ib->first < ia->first)
            ++ib;
        else
            return false;
    }
    return true;
}

std::vector<group_id> group_delays::groups() const {
    std::vector<group_id> out;
    out.reserve(entries_.size());
    for (const auto& [g, iv] : entries_) out.push_back(g);
    return out;
}

double group_delays::max_spread() const {
    double s = 0.0;
    for (const auto& [g, iv] : entries_) s = std::max(s, iv.length());
    return s;
}

geom::interval group_delays::overall() const {
    geom::interval out = geom::interval::empty_set();
    for (const auto& [g, iv] : entries_) out = out.hull(iv);
    return out;
}

std::ostream& operator<<(std::ostream& os, const group_delays& m) {
    os << '{';
    bool first = true;
    for (const auto& [g, iv] : m.entries()) {
        if (!first) os << ", ";
        os << 'g' << g << ':' << iv;
        first = false;
    }
    return os << '}';
}

}  // namespace astclk::topo
