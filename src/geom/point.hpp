#pragma once

/// \file point.hpp
/// Points in the Manhattan plane and in *tilted* coordinates.
///
/// The whole DME family of algorithms becomes interval arithmetic after the
/// 45-degree change of basis
///     u = x + y,   v = x - y,
/// because the L1 (Manhattan) metric on (x, y) equals the L-infinity metric
/// on (u, v):  |dx| + |dy| = max(|du|, |dv|).  Manhattan arcs (slope +-1
/// segments — DME merging segments) become axis-aligned segments, and tilted
/// rectangular regions (TRRs) become axis-aligned rectangles.

#include <cmath>
#include <iosfwd>

namespace astclk::geom {

struct tilted_point;

/// A point in the ordinary (x, y) Manhattan plane.
struct point {
    double x = 0.0;
    double y = 0.0;

    constexpr point() = default;
    constexpr point(double px, double py) : x(px), y(py) {}

    /// Convert to tilted coordinates (u, v) = (x + y, x - y).
    [[nodiscard]] tilted_point to_tilted() const;

    friend bool operator==(const point&, const point&) = default;
};

/// A point in tilted coordinates.
struct tilted_point {
    double u = 0.0;
    double v = 0.0;

    constexpr tilted_point() = default;
    constexpr tilted_point(double pu, double pv) : u(pu), v(pv) {}

    /// Convert back to (x, y) = ((u + v) / 2, (u - v) / 2).
    [[nodiscard]] point to_real() const { return {0.5 * (u + v), 0.5 * (u - v)}; }

    friend bool operator==(const tilted_point&, const tilted_point&) = default;
};

inline tilted_point point::to_tilted() const { return {x + y, x - y}; }

/// Manhattan (L1) distance between two real-plane points.
inline double manhattan(const point& a, const point& b) {
    return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

/// Chebyshev (L-infinity) distance between two tilted points; equals the
/// Manhattan distance between the corresponding real points.
inline double chebyshev(const tilted_point& a, const tilted_point& b) {
    return std::max(std::fabs(a.u - b.u), std::fabs(a.v - b.v));
}

std::ostream& operator<<(std::ostream& os, const point& p);
std::ostream& operator<<(std::ostream& os, const tilted_point& p);

}  // namespace astclk::geom
