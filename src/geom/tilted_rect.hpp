#pragma once

/// \file tilted_rect.hpp
/// Axis-aligned rectangles in tilted (u, v) space — the geometry kernel of
/// every DME-style operation in this library.
///
/// In real (x, y) space a tilted_rect is a rectangle rotated by 45 degrees:
///  * a degenerate rect (both intervals points) is a single point;
///  * a rect degenerate in exactly one axis is a **Manhattan arc** — a
///    slope +-1 segment, i.e. a DME merging segment;
///  * `expanded(r)` is the Minkowski sum with the L1 ball of radius r,
///    i.e. the classic **tilted rectangular region** TRR(core, radius).
///
/// Key invariant used throughout the merge engine: if
/// `d = distance(A, B)` and `alpha + beta = d`, then every point of
/// `A.expanded(alpha) ∩ B.expanded(beta)` is at distance *exactly* alpha
/// from A and beta from B (triangle inequality in both directions), so the
/// intersection is an iso-distance locus — the merging segment.

#include "geom/interval.hpp"
#include "geom/point.hpp"

#include <array>
#include <iosfwd>
#include <vector>

namespace astclk::geom {

class tilted_rect {
  public:
    tilted_rect() = default;
    tilted_rect(interval u, interval v) : u_(u), v_(v) {}

    /// Rect holding a single tilted point.
    static tilted_rect at(const tilted_point& p) {
        return {interval::at(p.u), interval::at(p.v)};
    }

    /// Rect holding a single real-plane point.
    static tilted_rect at(const point& p) { return at(p.to_tilted()); }

    /// Canonical empty rect.
    static tilted_rect empty_set() {
        return {interval::empty_set(), interval::empty_set()};
    }

    [[nodiscard]] const interval& u() const { return u_; }
    [[nodiscard]] const interval& v() const { return v_; }

    [[nodiscard]] bool empty(double eps = 0.0) const {
        return u_.empty(eps) || v_.empty(eps);
    }

    /// True when the rect is a single point (up to eps).
    [[nodiscard]] bool is_point(double eps = kGeomEps) const {
        return !empty() && u_.length() <= eps && v_.length() <= eps;
    }

    /// True when the rect is degenerate in at least one tilted axis, i.e.
    /// represents a Manhattan arc (slope +-1 segment) or a point in real
    /// space.  All merging segments produced by the engine satisfy this.
    [[nodiscard]] bool is_manhattan_arc(double eps = kGeomEps) const {
        return !empty() && (u_.length() <= eps || v_.length() <= eps);
    }

    /// Center of the rect as a tilted point.
    [[nodiscard]] tilted_point center() const { return {u_.mid(), v_.mid()}; }

    [[nodiscard]] bool contains(const tilted_point& p, double eps = kGeomEps) const {
        return u_.contains(p.u, eps) && v_.contains(p.v, eps);
    }

    [[nodiscard]] bool contains(const tilted_rect& o, double eps = kGeomEps) const {
        return u_.contains(o.u_, eps) && v_.contains(o.v_, eps);
    }

    /// Minkowski sum with the L1 ball of radius r >= 0: the TRR.
    [[nodiscard]] tilted_rect expanded(double r) const {
        return {u_.expanded(r), v_.expanded(r)};
    }

    [[nodiscard]] tilted_rect intersect(const tilted_rect& o) const {
        return {u_.intersect(o.u_), v_.intersect(o.v_)};
    }

    /// Smallest rect containing both.
    [[nodiscard]] tilted_rect hull(const tilted_rect& o) const {
        return {u_.hull(o.u_), v_.hull(o.v_)};
    }

    /// L-infinity distance in tilted space == Manhattan distance between the
    /// real-space sets:  max of the per-axis gaps.
    [[nodiscard]] double distance(const tilted_rect& o) const {
        return std::max(u_.gap(o.u_), v_.gap(o.v_));
    }

    [[nodiscard]] double distance(const tilted_point& p) const {
        return std::max(u_.distance(p.u), v_.distance(p.v));
    }

    /// Nearest point of the rect to p in the L-infinity metric (clamping is
    /// optimal per-axis, hence globally for L-infinity).
    [[nodiscard]] tilted_point nearest(const tilted_point& p) const {
        return {u_.clamp(p.u), v_.clamp(p.v)};
    }

    /// The four tilted corners (duplicates for degenerate rects).
    [[nodiscard]] std::array<tilted_point, 4> corners() const {
        return {tilted_point{u_.lo, v_.lo}, tilted_point{u_.hi, v_.lo},
                tilted_point{u_.hi, v_.hi}, tilted_point{u_.lo, v_.hi}};
    }

    /// Corners in real (x, y) space, in drawing order — a diamond-oriented
    /// rectangle.  Used by the SVG exporter and the tests.
    [[nodiscard]] std::array<point, 4> real_corners() const;

    /// Evenly spaced sample points over the rect (for brute-force property
    /// tests).  n points per axis.
    [[nodiscard]] std::vector<tilted_point> sample_grid(int n) const;

    [[nodiscard]] bool almost_equal(const tilted_rect& o, double eps = kGeomEps) const {
        return u_.almost_equal(o.u_, eps) && v_.almost_equal(o.v_, eps);
    }

    friend bool operator==(const tilted_rect&, const tilted_rect&) = default;

  private:
    interval u_ = interval::empty_set();
    interval v_ = interval::empty_set();
};

/// The DME merging segment for child regions a and b with wire splits
/// alpha + beta == distance(a, b):  a.expanded(alpha) ∩ b.expanded(beta).
/// Every point of the result is at L1 distance exactly alpha from a and
/// beta from b.  Returns an empty rect if alpha or beta is negative.
tilted_rect merging_segment(const tilted_rect& a, const tilted_rect& b,
                            double alpha, double beta);

std::ostream& operator<<(std::ostream& os, const tilted_rect& r);

}  // namespace astclk::geom
