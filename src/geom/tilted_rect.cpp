#include "geom/tilted_rect.hpp"

#include <ostream>

namespace astclk::geom {

std::array<point, 4> tilted_rect::real_corners() const {
    auto c = corners();
    return {c[0].to_real(), c[1].to_real(), c[2].to_real(), c[3].to_real()};
}

std::vector<tilted_point> tilted_rect::sample_grid(int n) const {
    std::vector<tilted_point> out;
    if (empty() || n <= 0) return out;
    out.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const double fu = (n == 1) ? 0.5 : static_cast<double>(i) / (n - 1);
        const double pu = u_.lo + fu * u_.length();
        for (int j = 0; j < n; ++j) {
            const double fv = (n == 1) ? 0.5 : static_cast<double>(j) / (n - 1);
            out.push_back({pu, v_.lo + fv * v_.length()});
        }
    }
    return out;
}

tilted_rect merging_segment(const tilted_rect& a, const tilted_rect& b,
                            double alpha, double beta) {
    if (alpha < 0.0 || beta < 0.0) return tilted_rect::empty_set();
    return a.expanded(alpha).intersect(b.expanded(beta));
}

std::ostream& operator<<(std::ostream& os, const tilted_rect& r) {
    return os << "{u=" << r.u() << ", v=" << r.v() << '}';
}

}  // namespace astclk::geom
