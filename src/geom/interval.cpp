#include "geom/interval.hpp"

#include <ostream>

namespace astclk::geom {

std::ostream& operator<<(std::ostream& os, const interval& iv) {
    if (iv.empty()) return os << "[empty]";
    return os << '[' << iv.lo << ", " << iv.hi << ']';
}

}  // namespace astclk::geom
