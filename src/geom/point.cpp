#include "geom/point.hpp"

#include <ostream>

namespace astclk::geom {

std::ostream& operator<<(std::ostream& os, const point& p) {
    return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const tilted_point& p) {
    return os << "(u=" << p.u << ", v=" << p.v << ')';
}

}  // namespace astclk::geom
