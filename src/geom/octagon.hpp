#pragma once

/// \file octagon.hpp
/// Octilinear convex regions: intersections of the four slab families
///     x in X,   y in Y,   x + y in U,   x - y in V.
///
/// Every region appearing in DME / BST clock routing — merging segments,
/// TRRs, bounded-skew merging regions, shortest-distance regions (SDRs) —
/// is a convex polygon whose edges have slopes in {0, inf, +1, -1}; this
/// class is the closed algebra of exactly those polygons (at most 8 sides).
///
/// The representation is kept *canonical* (each interval equals the true
/// support of the region in its direction) by a closure pass, which makes
/// emptiness, intersection and Minkowski expansion exact.
///
/// This is the geometry used to reproduce the paper's merging-region
/// figures (Figs. 3-5) and to cross-check the tilted_rect fast path.

#include "geom/interval.hpp"
#include "geom/point.hpp"
#include "geom/tilted_rect.hpp"

#include <iosfwd>
#include <optional>
#include <vector>

namespace astclk::geom {

class octagon {
  public:
    /// Empty region.
    octagon() = default;

    /// Region from the four slabs; canonicalised on construction.
    octagon(interval x, interval y, interval u, interval v);

    /// Single real-plane point.
    static octagon at(const point& p);

    /// Axis-aligned rectangle [x] x [y].
    static octagon rect(interval x, interval y);

    /// From a tilted rectangle (Manhattan arc / TRR); x and y slabs are
    /// derived by the closure.
    static octagon from_tilted(const tilted_rect& r);

    static octagon empty_set() { return {}; }

    [[nodiscard]] const interval& x() const { return x_; }
    [[nodiscard]] const interval& y() const { return y_; }
    [[nodiscard]] const interval& u() const { return u_; }
    [[nodiscard]] const interval& v() const { return v_; }

    [[nodiscard]] bool empty() const { return empty_; }

    [[nodiscard]] bool contains(const point& p, double eps = kGeomEps) const;

    /// Intersection (canonical).
    [[nodiscard]] octagon intersect(const octagon& o) const;

    /// Minkowski sum with the L1 ball of radius r >= 0 (support addition —
    /// exact on canonical octagons).
    [[nodiscard]] octagon expanded(double r) const;

    /// Exact L1 distance from a point (0 when inside).  Computed as the
    /// largest slab violation, which is exact for canonical octagons; the
    /// property tests cross-check against brute force.
    [[nodiscard]] double distance(const point& p) const;

    /// L1 distance between two octagons, via bisection on the smallest
    /// expansion radius that makes them intersect (exact operations make
    /// this robust; tolerance ~1e-9 of the scale).
    [[nodiscard]] double distance(const octagon& o) const;

    /// Some point inside the region (the canonical mid slice); nullopt when
    /// empty.
    [[nodiscard]] std::optional<point> feasible_point() const;

    /// Nearest point of the region to p (exact up to kGeomEps).
    [[nodiscard]] std::optional<point> nearest(const point& p) const;

    /// Boundary polygon in counter-clockwise order (deduplicated vertices;
    /// 1 vertex for a point region, 2 for a segment).  Used by the SVG
    /// exporter, the figure demos and the property tests.
    [[nodiscard]] std::vector<point> vertices() const;

    /// Area of the region (0 for degenerate regions).
    [[nodiscard]] double area() const;

    [[nodiscard]] bool almost_equal(const octagon& o, double eps = kGeomEps) const;

  private:
    void canonicalize();

    interval x_ = interval::empty_set();
    interval y_ = interval::empty_set();
    interval u_ = interval::empty_set();
    interval v_ = interval::empty_set();
    bool empty_ = true;
};

/// The shortest-distance region between two tilted rectangles: all points p
/// with d(p, a) + d(p, b) == d(a, b).  This is the merging region the paper
/// uses when two subtrees carry *disjoint* sink groups (Fig. 3): any point
/// of it joins the subtrees with the minimum possible wirelength.
///
/// Computed exactly as the support hull of the union of the iso-split
/// merging segments  a.expanded(alpha) ∩ b.expanded(d - alpha),
/// alpha in [0, d]; the union is convex and octilinear.
octagon shortest_distance_region(const tilted_rect& a, const tilted_rect& b);

std::ostream& operator<<(std::ostream& os, const octagon& o);

}  // namespace astclk::geom
