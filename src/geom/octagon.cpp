#include "geom/octagon.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace astclk::geom {

namespace {

// Interval sum/difference hulls; written to avoid inf - inf NaNs for the
// unbounded slabs that appear before canonicalisation.
interval iv_add(const interval& a, const interval& b) {
    return {a.lo + b.lo, a.hi + b.hi};
}
interval iv_sub(const interval& a, const interval& b) {
    return {a.lo - b.hi, a.hi - b.lo};
}
interval iv_half(const interval& a) { return {0.5 * a.lo, 0.5 * a.hi}; }

}  // namespace

octagon::octagon(interval x, interval y, interval u, interval v)
    : x_(x), y_(y), u_(u), v_(v), empty_(false) {
    canonicalize();
}

octagon octagon::at(const point& p) {
    return {interval::at(p.x), interval::at(p.y),
            interval::at(p.x + p.y), interval::at(p.x - p.y)};
}

octagon octagon::rect(interval x, interval y) {
    return {x, y, interval::all(), interval::all()};
}

octagon octagon::from_tilted(const tilted_rect& r) {
    if (r.empty()) return {};
    return {interval::all(), interval::all(), r.u(), r.v()};
}

void octagon::canonicalize() {
    if (x_.empty() || y_.empty() || u_.empty() || v_.empty()) {
        empty_ = true;
        return;
    }
    // Closure of the two-variable octagon constraint system.  Each slab is
    // tightened against every pair of others it is linearly related to
    // (x = u - y = y + v = (u + v)/2, and symmetrically); two passes reach
    // the fixpoint for a 2-D system, a third is kept as a cheap safety net.
    for (int pass = 0; pass < 3; ++pass) {
        u_ = u_.intersect(iv_add(x_, y_));
        v_ = v_.intersect(iv_sub(x_, y_));
        x_ = x_.intersect(iv_half(iv_add(u_, v_)));
        x_ = x_.intersect(iv_sub(u_, y_));
        x_ = x_.intersect(iv_add(y_, v_));
        y_ = y_.intersect(iv_half(iv_sub(u_, v_)));
        y_ = y_.intersect(iv_sub(u_, x_));
        y_ = y_.intersect(iv_sub(x_, v_));
        if (x_.empty(kGeomEps) || y_.empty(kGeomEps) || u_.empty(kGeomEps) ||
            v_.empty(kGeomEps)) {
            empty_ = true;
            return;
        }
    }
    empty_ = false;
}

bool octagon::contains(const point& p, double eps) const {
    if (empty_) return false;
    return x_.contains(p.x, eps) && y_.contains(p.y, eps) &&
           u_.contains(p.x + p.y, eps) && v_.contains(p.x - p.y, eps);
}

octagon octagon::intersect(const octagon& o) const {
    if (empty_ || o.empty_) return {};
    return {x_.intersect(o.x_), y_.intersect(o.y_), u_.intersect(o.u_),
            v_.intersect(o.v_)};
}

octagon octagon::expanded(double r) const {
    if (empty_) return {};
    assert(r >= 0.0);
    return {x_.expanded(r), y_.expanded(r), u_.expanded(r), v_.expanded(r)};
}

double octagon::distance(const point& p) const {
    if (empty_) return std::numeric_limits<double>::infinity();
    double d = 0.0;
    d = std::max(d, x_.distance(p.x));
    d = std::max(d, y_.distance(p.y));
    d = std::max(d, u_.distance(p.x + p.y));
    d = std::max(d, v_.distance(p.x - p.y));
    return d;
}

double octagon::distance(const octagon& o) const {
    if (empty_ || o.empty_) return std::numeric_limits<double>::infinity();
    if (!intersect(o).empty()) return 0.0;
    // Upper bound from any pair of feasible points.
    const point a = *feasible_point();
    const point b = *o.feasible_point();
    double hi = manhattan(a, b);
    double lo = 0.0;
    const double tol = std::max(1.0, hi) * 1e-12;
    while (hi - lo > tol) {
        const double mid = 0.5 * (lo + hi);
        if (expanded(mid).intersect(o).empty())
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

std::optional<point> octagon::feasible_point() const {
    if (empty_) return std::nullopt;
    const double x = x_.mid();
    interval yr = y_;
    yr = yr.intersect({u_.lo - x, u_.hi - x});
    yr = yr.intersect({x - v_.hi, x - v_.lo});
    if (yr.empty(kGeomEps)) return std::nullopt;  // canonicity violated
    return point{x, yr.empty() ? yr.lo : yr.mid()};
}

std::optional<point> octagon::nearest(const point& p) const {
    if (empty_) return std::nullopt;
    if (contains(p, 0.0)) return p;
    double r = distance(p);
    // Intersect with the L1 ball around p; a tiny slack guards rounding.
    for (int attempt = 0; attempt < 8; ++attempt) {
        const double slack = kGeomEps * (1 << attempt);
        const octagon ball = octagon::at(p).expanded(r + slack);
        const octagon cut = intersect(ball);
        if (auto q = cut.feasible_point()) return q;
    }
    return feasible_point();  // conservative fallback; callers assert distance
}

std::vector<point> octagon::vertices() const {
    std::vector<point> poly;
    if (empty_) return poly;
    // Start from the bounding rectangle, counter-clockwise.
    poly = {point{x_.lo, y_.lo}, point{x_.hi, y_.lo}, point{x_.hi, y_.hi},
            point{x_.lo, y_.hi}};
    struct halfplane {
        double a, b, c;  // a*x + b*y <= c
    };
    const halfplane cuts[4] = {
        {1.0, 1.0, u_.hi},
        {-1.0, -1.0, -u_.lo},
        {1.0, -1.0, v_.hi},
        {-1.0, 1.0, -v_.lo},
    };
    for (const auto& h : cuts) {
        std::vector<point> next;
        const std::size_t n = poly.size();
        for (std::size_t i = 0; i < n; ++i) {
            const point& cur = poly[i];
            const point& nxt = poly[(i + 1) % n];
            const double dc = h.a * cur.x + h.b * cur.y - h.c;
            const double dn = h.a * nxt.x + h.b * nxt.y - h.c;
            const bool cin = dc <= kGeomEps;
            const bool nin = dn <= kGeomEps;
            if (cin) next.push_back(cur);
            if (cin != nin) {
                const double t = dc / (dc - dn);
                next.push_back({cur.x + t * (nxt.x - cur.x),
                                cur.y + t * (nxt.y - cur.y)});
            }
        }
        poly.swap(next);
        if (poly.empty()) return poly;
    }
    // Deduplicate consecutive near-identical vertices.
    std::vector<point> out;
    for (const auto& p : poly) {
        if (out.empty() || manhattan(out.back(), p) > 10 * kGeomEps)
            out.push_back(p);
    }
    while (out.size() > 1 && manhattan(out.front(), out.back()) <= 10 * kGeomEps)
        out.pop_back();
    return out;
}

double octagon::area() const {
    const auto poly = vertices();
    if (poly.size() < 3) return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < poly.size(); ++i) {
        const point& a = poly[i];
        const point& b = poly[(i + 1) % poly.size()];
        s += a.x * b.y - b.x * a.y;
    }
    return 0.5 * std::fabs(s);
}

bool octagon::almost_equal(const octagon& o, double eps) const {
    if (empty_ != o.empty_) return false;
    if (empty_) return true;
    return x_.almost_equal(o.x_, eps) && y_.almost_equal(o.y_, eps) &&
           u_.almost_equal(o.u_, eps) && v_.almost_equal(o.v_, eps);
}

octagon shortest_distance_region(const tilted_rect& a, const tilted_rect& b) {
    if (a.empty() || b.empty()) return octagon::empty_set();
    const double d = a.distance(b);

    // Candidate split values: endpoints plus every breakpoint of the
    // piecewise-linear support functions of M(alpha) = a^alpha ∩ b^(d-alpha).
    std::vector<double> cand = {0.0, d};
    const auto push_bp = [&](double bp) {
        if (bp > 0.0 && bp < d) cand.push_back(bp);
    };
    push_bp(0.5 * (b.u().hi + d - a.u().hi));   // sup_u crossover
    push_bp(0.5 * (a.u().lo - b.u().lo + d));   // inf_u crossover
    push_bp(0.5 * (b.v().hi + d - a.v().hi));   // sup_v crossover
    push_bp(0.5 * (a.v().lo - b.v().lo + d));   // inf_v crossover

    interval ux = interval::empty_set();  // x+y support (tilted u)
    interval vx = interval::empty_set();  // x-y support (tilted v)
    interval xx = interval::empty_set();
    interval yx = interval::empty_set();
    for (double alpha : cand) {
        const double beta = d - alpha;
        const interval mu{std::max(a.u().lo - alpha, b.u().lo - beta),
                          std::min(a.u().hi + alpha, b.u().hi + beta)};
        const interval mv{std::max(a.v().lo - alpha, b.v().lo - beta),
                          std::min(a.v().hi + alpha, b.v().hi + beta)};
        ux = ux.hull(mu);
        vx = vx.hull(mv);
        xx = xx.hull({0.5 * (mu.lo + mv.lo), 0.5 * (mu.hi + mv.hi)});
        yx = yx.hull({0.5 * (mu.lo - mv.hi), 0.5 * (mu.hi - mv.lo)});
    }
    return {xx, yx, ux, vx};
}

std::ostream& operator<<(std::ostream& os, const octagon& o) {
    if (o.empty()) return os << "{empty}";
    return os << "{x=" << o.x() << ", y=" << o.y() << ", u=" << o.u()
              << ", v=" << o.v() << '}';
}

}  // namespace astclk::geom
