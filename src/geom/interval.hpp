#pragma once

/// \file interval.hpp
/// Closed 1-D intervals with tolerant predicates.
///
/// Intervals are the scalar backbone of the whole geometry layer: tilted
/// rectangles are a pair of intervals, octagons are four, and the merge
/// solver manipulates per-group delay windows as intervals.

#include <algorithm>
#include <cmath>
#include <iosfwd>
#include <limits>

namespace astclk::geom {

/// Absolute slack used by the tolerant interval predicates.  Geometry in
/// this library lives on a ~1e5-unit die, so 1e-7 is ~12 digits below the
/// coordinate scale while still absorbing accumulated rounding.
inline constexpr double kGeomEps = 1e-7;

/// A closed interval [lo, hi].  An interval with lo > hi is *empty*; the
/// canonical empty interval is interval::empty().
struct interval {
    double lo = 0.0;
    double hi = 0.0;

    constexpr interval() = default;
    constexpr interval(double l, double h) : lo(l), hi(h) {}

    /// Degenerate interval holding a single value.
    static constexpr interval at(double v) { return {v, v}; }

    /// The canonical empty interval ([+inf, -inf]).
    static constexpr interval empty_set() {
        return {std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity()};
    }

    /// The whole real line.
    static constexpr interval all() {
        return {-std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::infinity()};
    }

    /// True when the interval contains no point (with tolerance eps:
    /// intervals shorter than -eps are empty, i.e. slightly inverted
    /// intervals caused by rounding still count as a point).
    [[nodiscard]] bool empty(double eps = 0.0) const { return lo > hi + eps; }

    /// Length (0 for degenerate, negative only if empty).
    [[nodiscard]] double length() const { return hi - lo; }

    /// Midpoint; undefined for empty intervals.
    [[nodiscard]] double mid() const { return 0.5 * (lo + hi); }

    /// True when v lies inside, with tolerance.
    [[nodiscard]] bool contains(double v, double eps = kGeomEps) const {
        return v >= lo - eps && v <= hi + eps;
    }

    /// True when other is fully inside this interval, with tolerance.
    [[nodiscard]] bool contains(const interval& o, double eps = kGeomEps) const {
        return o.lo >= lo - eps && o.hi <= hi + eps;
    }

    /// Clamp v into the interval (undefined for empty intervals).
    [[nodiscard]] double clamp(double v) const {
        return std::min(std::max(v, lo), hi);
    }

    /// Distance from v to the interval (0 when inside).
    [[nodiscard]] double distance(double v) const {
        if (v < lo) return lo - v;
        if (v > hi) return v - hi;
        return 0.0;
    }

    /// Signed gap between two intervals: 0 when they overlap, otherwise the
    /// positive distance between the nearest endpoints.
    [[nodiscard]] double gap(const interval& o) const {
        if (o.lo > hi) return o.lo - hi;
        if (lo > o.hi) return lo - o.hi;
        return 0.0;
    }

    /// Enlarge by r on both sides (Minkowski sum with [-r, r]).
    [[nodiscard]] interval expanded(double r) const { return {lo - r, hi + r}; }

    /// Intersection (may be empty).
    [[nodiscard]] interval intersect(const interval& o) const {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    /// Smallest interval containing both (convex hull).
    [[nodiscard]] interval hull(const interval& o) const {
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    /// Translate by d.
    [[nodiscard]] interval shifted(double d) const { return {lo + d, hi + d}; }

    /// Equality within eps on both endpoints.
    [[nodiscard]] bool almost_equal(const interval& o, double eps = kGeomEps) const {
        return std::fabs(lo - o.lo) <= eps && std::fabs(hi - o.hi) <= eps;
    }

    friend bool operator==(const interval&, const interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const interval& iv);

/// True when |a - b| <= eps.
inline bool almost_equal(double a, double b, double eps = kGeomEps) {
    return std::fabs(a - b) <= eps;
}

}  // namespace astclk::geom
