#!/usr/bin/env python3
"""Project-rule linter (DESIGN.md §12).

Enforces the repo-specific correctness rules that generic tooling cannot
know about, as a ctest target (label `lint`):

  R1 stats-fold      every field of engine_stats appears in
                     engine_stats::accumulate() — a counter that dodges the
                     fold silently under-reports shard/service accounting.
  R2 poll-at-only    cancellation checkpoints in src/core go through
                     cancel_token::poll_at(site, index); bare poll() calls
                     (outside executor.hpp, which defines both) bypass the
                     deterministic fault-site machinery.
  R3 determinism     no nondeterminism sources in src/core: rand/srand,
                     random_device, mt19937, system_clock, std::time, raw
                     clock().  steady_clock is allowed (deadlines measure
                     elapsed time; they never seed decisions).
  R4 no-raw-new      no raw `new` / `delete` expressions in src/core —
                     ownership goes through containers and smart pointers
                     (`= delete` declarations are of course fine).
  R5 include-hygiene headers start with #pragma once; a .cpp includes its
                     own header first; project includes are quoted, never
                     angle-bracketed.
  R6 size-lock       engine.hpp carries the sizeof(engine_stats)
                     static_assert that makes R1 unskippable from C++.

`--self-test` seeds one violation per rule in a scratch tree and asserts
every rule fires — the linter lints itself before it is trusted.
"""

import argparse
import os
import re
import sys
import tempfile

CORE_EXCLUDED_FROM_POLL_RULE = {"executor.hpp"}

NONDETERMINISM = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"(\bstd::|[^:\w])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
]


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token rules never fire on prose or diagnostics."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode in ("line", "block"):
            if mode == "line" and c == "\n":
                mode = "code"
                out.append(c)
            elif mode == "block" and c == "*" and nxt == "/":
                mode = "code"
                i += 2
                continue
            elif c == "\n":
                out.append(c)
            i += 1
            continue
        else:  # str / chr
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            elif c == "\n":
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def core_files(root, exts=(".hpp", ".cpp")):
    core = os.path.join(root, "src", "core")
    for name in sorted(os.listdir(core)):
        if name.endswith(exts):
            yield os.path.join(core, name)


def src_files(root, exts=(".hpp", ".cpp")):
    for dirpath, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root)


def stats_fields(engine_hpp_text):
    """Field names of struct engine_stats, parsed from the header."""
    m = re.search(r"struct\s+engine_stats\s*\{(.*?)\n\};", engine_hpp_text,
                  re.S)
    if not m:
        return None
    body = m.group(1)
    # Cut the struct body off at the first member function: fields only.
    fn = re.search(r"\n\s*(?:void|engine_stats)\s+\w+\s*\(", body)
    if fn:
        body = body[: fn.start()]
    fields = []
    for line in strip_code(body).splitlines():
        fm = re.match(
            r"\s*(?:int|double|long\s+long|std::\w+|bool|float)\s+"
            r"(\w+)\s*=", line)
        if fm:
            fields.append(fm.group(1))
    return fields


def check_stats_fold(root):
    """R1: every engine_stats field folded in accumulate()."""
    path = os.path.join(root, "src", "core", "engine.hpp")
    text = read(path)
    fields = stats_fields(text)
    if fields is None:
        return [f"{rel(root, path)}: struct engine_stats not found"]
    if not fields:
        return [f"{rel(root, path)}: no engine_stats fields parsed"]
    m = re.search(r"void\s+accumulate\s*\(.*?\)\s*\{(.*?)\n\s*\}", text, re.S)
    if not m:
        return [f"{rel(root, path)}: engine_stats::accumulate() not found"]
    fold = m.group(1)
    out = []
    for f in fields:
        if not re.search(r"\b" + re.escape(f) + r"\b", fold):
            out.append(
                f"{rel(root, path)}: engine_stats field '{f}' is not folded "
                f"in accumulate() — shard/service sums will drop it")
    return out


def check_poll_at_only(root):
    """R2: no bare poll() checkpoints in src/core outside executor.hpp."""
    out = []
    for path in core_files(root):
        if os.path.basename(path) in CORE_EXCLUDED_FROM_POLL_RULE:
            continue
        code = strip_code(read(path))
        for ln, line in enumerate(code.splitlines(), 1):
            if re.search(r"\.\s*poll\s*\(\s*\)", line):
                out.append(
                    f"{rel(root, path)}:{ln}: bare poll() checkpoint — use "
                    f"poll_at(fault_site, index) so fault injection stays "
                    f"deterministic")
    return out


def check_determinism(root):
    """R3: no nondeterminism sources in src/core."""
    out = []
    for path in core_files(root):
        code = strip_code(read(path))
        for ln, line in enumerate(code.splitlines(), 1):
            for pat, what in NONDETERMINISM:
                if pat.search(line):
                    out.append(
                        f"{rel(root, path)}:{ln}: {what} in src/core — "
                        f"results must be deterministic; derive variation "
                        f"from seeds passed in")
    return out


def check_no_raw_new(root):
    """R4: no raw new/delete expressions in src/core."""
    out = []
    for path in core_files(root):
        code = strip_code(read(path))
        for ln, line in enumerate(code.splitlines(), 1):
            if re.search(r"(^|[^\w.])new\s+[A-Za-z_:][\w:<>]*\s*[({\[]",
                         line):
                out.append(
                    f"{rel(root, path)}:{ln}: raw new expression — use "
                    f"std::make_unique / containers")
            stripped = re.sub(r"=\s*delete\b", "", line)
            if re.search(r"(^|[^\w.])delete(\s*\[\s*\])?\s+[A-Za-z_*(]",
                         stripped):
                out.append(
                    f"{rel(root, path)}:{ln}: raw delete expression — "
                    f"ownership belongs in RAII types")
    return out


def check_include_hygiene(root):
    """R5: #pragma once first; own header first in .cpp; project includes
    quoted."""
    out = []
    project_dirs = set()
    src = os.path.join(root, "src")
    for name in os.listdir(src):
        if os.path.isdir(os.path.join(src, name)):
            project_dirs.add(name)
    for path in src_files(root):
        text = read(path)
        name = os.path.basename(path)
        lines = text.splitlines()
        if name.endswith(".hpp"):
            first = next(
                (l.strip() for l in strip_code(text).splitlines()
                 if l.strip()), "")
            if first != "#pragma once":
                out.append(
                    f"{rel(root, path)}:1: header does not start with "
                    f"#pragma once")
        includes = []
        for ln, line in enumerate(lines, 1):
            im = re.match(r'\s*#\s*include\s+([<"])([^>"]+)[>"]', line)
            if im:
                includes.append((ln, im.group(1), im.group(2)))
        for ln, kind, inc in includes:
            top = inc.split("/", 1)[0]
            if kind == "<" and top in project_dirs:
                out.append(
                    f"{rel(root, path)}:{ln}: project include <{inc}> must "
                    f"be quoted")
        if name.endswith(".cpp") and includes:
            own = os.path.splitext(name)[0] + ".hpp"
            own_rel = None
            for _ln, _kind, inc in includes:
                if inc.endswith("/" + own) or inc == own:
                    own_rel = inc
                    break
            if own_rel is not None and not includes[0][2] == own_rel:
                out.append(
                    f"{rel(root, path)}:{includes[0][0]}: own header "
                    f"{own_rel} must be the first include (catches headers "
                    f"that do not stand alone)")
    return out


def check_size_lock(root):
    """R6: the sizeof(engine_stats) static_assert is present."""
    path = os.path.join(root, "src", "core", "engine.hpp")
    text = strip_code(read(path))
    if re.search(r"static_assert\s*\(\s*sizeof\s*\(\s*engine_stats\s*\)", text):
        return []
    return [
        f"{rel(root, path)}: missing static_assert(sizeof(engine_stats)) — "
        f"the size lock is what forces new counters through accumulate()"
    ]


RULES = [
    ("stats-fold", check_stats_fold),
    ("poll-at-only", check_poll_at_only),
    ("determinism", check_determinism),
    ("no-raw-new", check_no_raw_new),
    ("include-hygiene", check_include_hygiene),
    ("size-lock", check_size_lock),
]


def run_lint(root):
    failures = []
    for rule, fn in RULES:
        for msg in fn(root):
            failures.append(f"[{rule}] {msg}")
    return failures


# --------------------------------------------------------------- self-test

ENGINE_HPP_OK = """#pragma once
#include "core/executor.hpp"
struct engine_stats {
    int merges = 0;
    double snake_wire = 0.0;
    void accumulate(const engine_stats& o) {
        merges += o.merges;
        snake_wire += o.snake_wire;
    }
};
static_assert(sizeof(engine_stats) == 16, "lock");
"""


def write_tree(tmp, files):
    for relpath, text in files.items():
        path = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)


def expect(failures, rule, why):
    hits = [f for f in failures if f.startswith(f"[{rule}]")]
    if not hits:
        raise AssertionError(f"seeded {why}, but rule {rule} did not fire")
    return hits[0]


def self_test():
    """Seed one violation per rule in a scratch tree; every rule must
    fire, and a clean tree must pass."""
    with tempfile.TemporaryDirectory() as tmp:
        write_tree(tmp, {
            "src/core/engine.hpp": ENGINE_HPP_OK,
            "src/core/executor.hpp": "#pragma once\n",
            "src/core/clean.cpp": '#include "core/clean.hpp"\nint f();\n',
            "src/core/clean.hpp": "#pragma once\nint f();\n",
        })
        clean = run_lint(tmp)
        if clean:
            raise AssertionError(
                "clean scratch tree reported violations:\n  " +
                "\n  ".join(clean))

    cases = {
        "stats-fold": {
            "src/core/engine.hpp": ENGINE_HPP_OK.replace(
                "        snake_wire += o.snake_wire;\n", ""),
        },
        "poll-at-only": {
            "src/core/bad_poll.cpp":
                '#include "core/bad_poll.hpp"\n'
                "void g() { (void)tok.poll(); }\n",
        },
        "determinism": {
            "src/core/bad_rng.cpp":
                '#include "core/bad_rng.hpp"\n'
                "int g() { std::mt19937 r(7); return (int)r(); }\n",
        },
        "no-raw-new": {
            "src/core/bad_new.cpp":
                '#include "core/bad_new.hpp"\n'
                "int* g() { return new int(3); }\n",
        },
        "include-hygiene": {
            "src/core/bad_inc.hpp": "#include <core/engine.hpp>\nint h();\n",
        },
        "size-lock": {
            "src/core/engine.hpp": ENGINE_HPP_OK.replace(
                'static_assert(sizeof(engine_stats) == 16, "lock");\n', ""),
        },
    }
    for rule, seeded in cases.items():
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, {
                "src/core/engine.hpp": ENGINE_HPP_OK,
                "src/core/executor.hpp": "#pragma once\n",
            })
            write_tree(tmp, seeded)
            hit = expect(run_lint(tmp), rule, f"a {rule} violation")
            print(f"self-test {rule}: fired as expected\n    {hit}")
    print("lint self-test passed: every rule fires on its seeded violation")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="seed violations and assert every rule fires")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return 0
    failures = run_lint(os.path.abspath(args.root))
    if failures:
        print(f"lint: {len(failures)} violation(s)")
        for f in failures:
            print("  " + f)
        return 1
    print(f"lint: OK ({len(RULES)} rules clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
