// Race-stress suite (DESIGN.md §12): the workload the TSan configuration
// (-DASTCLK_SANITIZE=thread) exists for.  Small instances are routed
// through every concurrent path at once — the service's worker pool, the
// speculative plan() fan-out, the sharded sub-reduce fan-out, concurrent
// cancellation and deterministic fault injection — so a data race in any
// of the synchronization layers has maximal opportunity to surface under
// the race detector.
//
// The suite runs (cheaply) in the plain configuration too, where it
// doubles as a determinism matrix: whatever the thread count, speculation
// depth or submission interleaving, every completed tree must be
// bit-identical to the sequential reference for its shard count.

#include "core/route_service.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace astclk::core {
namespace {

topo::instance stress_instance(int n, int groups, std::uint64_t seed) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (groups > 1) gen::apply_intermingled_groups(inst, groups, seed + 1);
    return inst;
}

routing_request make_request(const topo::instance& inst, int speculate_k,
                             int shards) {
    routing_request r;
    r.instance = &inst;
    r.strategy = strategy_id::ast_dme;
    // Windowed mode keeps the solver ledger-free: the plan cache,
    // speculation and sharding (the fan-outs this suite stresses) all
    // disable themselves behind a ledger.
    r.mode = ast_mode::windowed;
    r.options.engine.speculate_k = speculate_k;
    r.options.engine.shards = shards;
    return r;
}

void expect_same_tree(const route_result& got, const route_result& ref,
                      const std::string& what) {
    ASSERT_TRUE(got.ok()) << what << ": " << got.status_message;
    ASSERT_TRUE(ref.ok()) << what << ": " << ref.status_message;
    EXPECT_EQ(got.wirelength, ref.wirelength) << what;
    EXPECT_EQ(got.stats.merges, ref.stats.merges) << what;
    EXPECT_EQ(got.stats.snake_wire, ref.stats.snake_wire) << what;
    ASSERT_EQ(got.tree.size(), ref.tree.size()) << what;
    for (std::size_t i = 0; i < got.tree.size(); ++i) {
        const auto& gn = got.tree.node(static_cast<topo::node_id>(i));
        const auto& rn = ref.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(gn.left, rn.left) << what << " node " << i;
        ASSERT_EQ(gn.right, rn.right) << what << " node " << i;
        ASSERT_EQ(gn.edge_left, rn.edge_left) << what << " node " << i;
        ASSERT_EQ(gn.edge_right, rn.edge_right) << what << " node " << i;
    }
}

/// Every fan-out at once: for each worker count, one service routes the
/// full {speculate_k} × {shards} matrix over two instances concurrently,
/// and each completion must be bit-identical to the sequential reference
/// of its (instance, shard count) cell.
TEST(RaceStress, ConcurrentMatrixIsBitIdentical) {
    const auto small = stress_instance(40, 4, 7);
    const auto medium = stress_instance(72, 4, 11);
    const std::vector<const topo::instance*> instances{&small, &medium};
    const int spec_ks[] = {0, 4};
    const int shard_counts[] = {1, 4};

    // Sequential references, one per (instance, shard count).
    route_result refs[2][2];
    for (int ii = 0; ii < 2; ++ii)
        for (int si = 0; si < 2; ++si) {
            refs[ii][si] =
                route(make_request(*instances[ii], 0, shard_counts[si]));
            ASSERT_TRUE(refs[ii][si].ok()) << refs[ii][si].status_message;
        }

    for (const int threads : {2, 4}) {
        service_options sopt;
        sopt.threads = threads;
        route_service svc(sopt);
        struct pending {
            route_handle h;
            int ii, si;
            std::string what;
        };
        std::vector<pending> inflight;
        for (int rep = 0; rep < 2; ++rep)
            for (int ii = 0; ii < 2; ++ii)
                for (const int k : spec_ks)
                    for (int si = 0; si < 2; ++si) {
                        submit_options so;
                        so.priority = rep;  // exercise the priority queue
                        inflight.push_back(
                            {svc.submit(make_request(*instances[ii], k,
                                                     shard_counts[si]),
                                        so),
                             ii, si,
                             "threads=" + std::to_string(threads) +
                                 " inst=" + std::to_string(ii) +
                                 " k=" + std::to_string(k) + " shards=" +
                                 std::to_string(shard_counts[si])});
                    }
        for (auto& p : inflight)
            expect_same_tree(p.h.wait(), refs[p.ii][p.si], p.what);
    }
}

/// Deterministic fault injection under concurrency: seeded fault plans
/// fire mid-route on several workers at once while healthy submissions
/// share the pool.  Faulted requests may retry; every terminal status must
/// be coherent, and any attempt that ends ok must still be bit-identical
/// to the sequential reference.
TEST(RaceStress, ConcurrentFaultInjectionStaysCoherent) {
    const auto inst = stress_instance(48, 4, 3);
    const route_result ref = route(make_request(inst, 0, 1));
    ASSERT_TRUE(ref.ok()) << ref.status_message;
    const route_result ref4 = route(make_request(inst, 0, 4));
    ASSERT_TRUE(ref4.ok()) << ref4.status_message;

    service_options sopt;
    sopt.threads = 4;
    route_service svc(sopt);

    std::vector<std::unique_ptr<fault_plan>> plans;  // outlive every poll
    std::vector<route_handle> handles;
    std::vector<int> shard_of;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto plan = std::make_unique<fault_plan>();
        plan->schedule(fault_site::selection, 3 * seed,
                       fault_kind::transient_solver);
        plan->schedule(fault_site::round, seed, fault_kind::alloc_failure);
        if (seed % 2 == 0)
            plan->schedule(fault_site::shard, (seed / 2) % 4 + 1,
                           fault_kind::poisoned_shard);
        plans.push_back(std::move(plan));
        const int shards = (seed % 2 == 0) ? 4 : 1;
        routing_request req = make_request(inst, (seed % 3 == 0) ? 4 : 0,
                                           shards);
        req.options.engine.cancel.set_faults(plans.back().get());
        submit_options so;
        so.retry.max_attempts = 2;
        handles.push_back(svc.submit(req, so));
        shard_of.push_back(shards);
        // Interleave healthy traffic so fault unwinds race completions.
        handles.push_back(svc.submit(make_request(inst, 0, shards)));
        shard_of.push_back(shards);
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
        route_result res = handles[i].wait();
        switch (res.status) {
            case route_status::ok:
                expect_same_tree(res, shard_of[i] == 4 ? ref4 : ref,
                                 "fault matrix #" + std::to_string(i));
                break;
            case route_status::transient_fault:
            case route_status::data_fault:
            case route_status::degraded:
                EXPECT_FALSE(res.status_message.empty());
                break;
            default:
                FAIL() << "unexpected terminal status "
                       << res.status_message;
        }
    }
    // The pool survived every unwind: the service still routes cleanly.
    expect_same_tree(svc.route(make_request(inst, 4, 1)), ref, "post-fault");
}

/// Concurrent cancellation: handles cancelled from the driving thread
/// while workers are mid-route (or before they start).  Whatever the
/// interleaving, each result is ok (bit-identical) or cancelled, the
/// scratch pool stays balanced, and the service remains usable.
TEST(RaceStress, ConcurrentCancellationIsClean) {
    const auto inst = stress_instance(72, 4, 5);
    const route_result ref = route(make_request(inst, 0, 1));
    ASSERT_TRUE(ref.ok()) << ref.status_message;

    service_options sopt;
    sopt.threads = 4;
    route_service svc(sopt);
    for (int round = 0; round < 3; ++round) {
        std::vector<route_handle> handles;
        for (int i = 0; i < 8; ++i)
            handles.push_back(svc.submit(make_request(inst, i % 2 ? 4 : 0,
                                                      1)));
        for (std::size_t i = 0; i < handles.size(); i += 2)
            handles[i].cancel();
        for (std::size_t i = 0; i < handles.size(); ++i) {
            route_result res = handles[i].wait();
            if (res.status == route_status::ok)
                expect_same_tree(res, ref,
                                 "cancel round " + std::to_string(round));
            else
                EXPECT_EQ(res.status, route_status::cancelled)
                    << res.status_message;
        }
    }
    expect_same_tree(svc.route(make_request(inst, 0, 1)), ref,
                     "post-cancel");
}

}  // namespace
}  // namespace astclk::core
