// Clock-tree arena tests: leaf/internal construction, traversals,
// wirelength accounting, structural validation.

#include "topo/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace astclk::topo {
namespace {

instance three_sink_instance() {
    instance inst;
    inst.name = "tiny";
    inst.num_groups = 2;
    inst.die_width = inst.die_height = 100.0;
    inst.source = {50.0, 50.0};
    inst.sinks = {{{0.0, 0.0}, 1e-15, 0},
                  {{10.0, 0.0}, 2e-15, 1},
                  {{5.0, 8.0}, 3e-15, 0}};
    return inst;
}

TEST(ClockTree, LeafStateFromSink) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const tree_node& n = t.node(l0);
    EXPECT_TRUE(n.is_leaf());
    EXPECT_EQ(n.sink_index, 0);
    EXPECT_DOUBLE_EQ(n.subtree_cap, 1e-15);
    EXPECT_TRUE(n.arc.is_point());
    ASSERT_NE(n.delays.find(0), nullptr);
    EXPECT_DOUBLE_EQ(n.delays.find(0)->lo, 0.0);
}

TEST(ClockTree, InternalNodeWiresChildren) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l1 = t.add_leaf(inst, 1);
    const node_id m = t.add_internal(l0, l1, geom::tilted_rect::at(geom::point{5, 0}),
                                     5.0, 5.0, 3e-15, group_delays::single(0));
    EXPECT_EQ(t.node(l0).parent, m);
    EXPECT_EQ(t.node(l1).parent, m);
    EXPECT_EQ(t.node(m).left, l0);
    EXPECT_EQ(t.node(m).right, l1);
    EXPECT_FALSE(t.node(m).is_leaf());
}

TEST(ClockTree, WirelengthSumsEdgesAndSource) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l1 = t.add_leaf(inst, 1);
    const node_id l2 = t.add_leaf(inst, 2);
    const node_id m = t.add_internal(l0, l1, {}, 5.0, 5.0, 0, {});
    const node_id r = t.add_internal(m, l2, {}, 3.0, 4.0, 0, {});
    t.set_root(r);
    t.set_source_edge(2.0);
    EXPECT_DOUBLE_EQ(t.total_wirelength(), 5 + 5 + 3 + 4 + 2);
}

TEST(ClockTree, TraversalsCoverAllNodes) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l1 = t.add_leaf(inst, 1);
    const node_id l2 = t.add_leaf(inst, 2);
    const node_id m = t.add_internal(l0, l1, {}, 1, 1, 0, {});
    const node_id r = t.add_internal(m, l2, {}, 1, 1, 0, {});
    t.set_root(r);

    auto sinks = t.sinks_under(r);
    std::sort(sinks.begin(), sinks.end());
    EXPECT_EQ(sinks, (std::vector<std::int32_t>{0, 1, 2}));
    EXPECT_EQ(t.sinks_under(m).size(), 2u);

    const auto order = t.postorder();
    ASSERT_EQ(order.size(), 5u);
    // Children precede parents.
    const auto pos = [&](node_id id) {
        return std::find(order.begin(), order.end(), id) - order.begin();
    };
    EXPECT_LT(pos(l0), pos(m));
    EXPECT_LT(pos(l1), pos(m));
    EXPECT_LT(pos(m), pos(r));
    EXPECT_EQ(order.back(), r);
}

TEST(ClockTree, StructureCheckPasses) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l1 = t.add_leaf(inst, 1);
    const node_id l2 = t.add_leaf(inst, 2);
    const node_id m = t.add_internal(l0, l1, {}, 1, 1, 0, {});
    const node_id r = t.add_internal(m, l2, {}, 1, 1, 0, {});
    t.set_root(r);
    EXPECT_EQ(t.check_structure(3), "");
}

TEST(ClockTree, StructureCheckCatchesMissingRoot) {
    clock_tree t;
    EXPECT_NE(t.check_structure(0), "");
}

TEST(ClockTree, StructureCheckCatchesMissingSink) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l1 = t.add_leaf(inst, 1);
    t.add_leaf(inst, 2);  // orphaned: never merged
    const node_id m = t.add_internal(l0, l1, {}, 1, 1, 0, {});
    t.set_root(m);
    EXPECT_NE(t.check_structure(3), "");
}

TEST(ClockTree, StructureCheckCatchesDuplicateSink) {
    const instance inst = three_sink_instance();
    clock_tree t;
    const node_id l0 = t.add_leaf(inst, 0);
    const node_id l0b = t.add_leaf(inst, 0);  // duplicate sink index
    const node_id m = t.add_internal(l0, l0b, {}, 1, 1, 0, {});
    t.set_root(m);
    EXPECT_NE(t.check_structure(3), "");
}

}  // namespace
}  // namespace astclk::topo
