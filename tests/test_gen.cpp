// Benchmark-substrate tests: RNG determinism, instance synthesis, and the
// two group partitioners of Ch. VI.

#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "gen/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace astclk::gen {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
    rng c(43);
    EXPECT_NE(rng(42).next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(10), 10u);
}

TEST(Rng, BelowCoversAllResidues) {
    rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(InstanceGen, PaperSuiteSinkCounts) {
    const auto suite = paper_suite();
    EXPECT_EQ(suite[0].num_sinks, 267);
    EXPECT_EQ(suite[1].num_sinks, 598);
    EXPECT_EQ(suite[2].num_sinks, 862);
    EXPECT_EQ(suite[3].num_sinks, 1903);
    EXPECT_EQ(suite[4].num_sinks, 3101);
    EXPECT_EQ(paper_spec("r4").num_sinks, 1903);
    EXPECT_THROW(paper_spec("r9"), std::invalid_argument);
}

TEST(InstanceGen, GeneratedInstanceIsValidAndInDie) {
    const auto inst = generate(paper_spec("r1"));
    EXPECT_EQ(inst.validate(), "");
    EXPECT_EQ(inst.size(), 267u);
    for (const auto& s : inst.sinks) {
        EXPECT_GE(s.loc.x, 0.0);
        EXPECT_LE(s.loc.x, inst.die_width);
        EXPECT_GE(s.loc.y, 0.0);
        EXPECT_LE(s.loc.y, inst.die_height);
        EXPECT_GE(s.cap, 5e-15);
        EXPECT_LE(s.cap, 50e-15);
    }
}

TEST(InstanceGen, DeterministicUnderSeed) {
    const auto a = generate(paper_spec("r2"));
    const auto b = generate(paper_spec("r2"));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.sinks[i], b.sinks[i]);
    auto spec = paper_spec("r2");
    spec.seed = 999;
    const auto c = generate(spec);
    EXPECT_NE(a.sinks[0], c.sinks[0]);
}

TEST(Grouping, ClusteredAssignsByBox) {
    auto inst = generate(paper_spec("r1"));
    apply_clustered_groups(inst, 4);  // 2 x 2 grid
    EXPECT_EQ(inst.validate(), "");
    EXPECT_LE(inst.num_groups, 4);
    EXPECT_GE(inst.num_groups, 1);
    // Sinks in the same quadrant share a group.
    const double hw = inst.die_width / 2, hh = inst.die_height / 2;
    for (std::size_t i = 0; i < inst.size(); ++i) {
        for (std::size_t j = i + 1; j < inst.size(); ++j) {
            const auto& a = inst.sinks[i];
            const auto& b = inst.sinks[j];
            const bool same_box = (a.loc.x < hw) == (b.loc.x < hw) &&
                                  (a.loc.y < hh) == (b.loc.y < hh);
            if (same_box) {
                EXPECT_EQ(a.group, b.group);
            }
        }
    }
}

TEST(Grouping, ClusteredGroupsAreGeometricallySeparated) {
    auto inst = generate(paper_spec("r1"));
    apply_clustered_groups(inst, 6);
    EXPECT_EQ(inst.validate(), "");
}

TEST(Grouping, IntermingledCoversAllGroups) {
    auto inst = generate(paper_spec("r1"));
    apply_intermingled_groups(inst, 10, 5);
    EXPECT_EQ(inst.num_groups, 10);
    EXPECT_EQ(inst.validate(), "");  // validate() checks non-empty groups
}

TEST(Grouping, IntermingledIsDeterministicPerSeed) {
    auto a = generate(paper_spec("r1"));
    auto b = generate(paper_spec("r1"));
    apply_intermingled_groups(a, 6, 77);
    apply_intermingled_groups(b, 6, 77);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.sinks[i].group, b.sinks[i].group);
    auto c = generate(paper_spec("r1"));
    apply_intermingled_groups(c, 6, 78);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a.sinks[i].group != c.sinks[i].group;
    EXPECT_TRUE(any_diff);
}

TEST(Grouping, IntermingledIsActuallyIntermingled) {
    // With random assignment, each quadrant of the die should contain
    // sinks of every group — the paper's "difficult instance" property.
    auto inst = generate(paper_spec("r3"));
    apply_intermingled_groups(inst, 4, 3);
    const double hw = inst.die_width / 2, hh = inst.die_height / 2;
    std::set<topo::group_id> quadrant[4];
    for (const auto& s : inst.sinks) {
        const int q = (s.loc.x < hw ? 0 : 1) + (s.loc.y < hh ? 0 : 2);
        quadrant[q].insert(s.group);
    }
    for (const auto& q : quadrant) EXPECT_EQ(q.size(), 4u);
}

}  // namespace
}  // namespace astclk::gen
