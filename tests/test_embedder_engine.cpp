// Tests for the top-down embedder, the nearest-neighbour index, and the
// bottom-up engine mechanics that the router-level tests exercise only
// indirectly.

#include "core/embedder.hpp"
#include "core/engine.hpp"
#include "core/nn_index.hpp"
#include "core/router.hpp"
#include "gen/patterns.hpp"

#include <gtest/gtest.h>

namespace astclk::core {
namespace {

using topo::clock_tree;
using topo::instance;
using topo::node_id;

const rc::delay_model kmodel = rc::delay_model::elmore();

TEST(NnIndex, FindsNearestByArcDistance) {
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{0, 0}, 1e-15, 0},
                  {{10, 0}, 1e-15, 0},
                  {{3, 1}, 1e-15, 0},
                  {{50, 50}, 1e-15, 0}};
    clock_tree t;
    nn_index idx(&t);
    for (int i = 0; i < 4; ++i) idx.insert(t.add_leaf(inst, i));
    const auto nn = idx.nearest(0, nullptr);
    ASSERT_TRUE(nn.has_value());
    EXPECT_EQ(nn->first, 2);  // (3,1) at distance 4
    EXPECT_DOUBLE_EQ(nn->second, 4.0);
}

TEST(NnIndex, RespectsBansAndErasure) {
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{0, 0}, 1e-15, 0},
                  {{1, 0}, 1e-15, 0},
                  {{5, 0}, 1e-15, 0}};
    clock_tree t;
    nn_index idx(&t);
    for (int i = 0; i < 3; ++i) idx.insert(t.add_leaf(inst, i));
    const auto banned = [](std::uint64_t k) { return k == pair_key(0, 1); };
    const auto nn = idx.nearest(0, banned);
    ASSERT_TRUE(nn.has_value());
    EXPECT_EQ(nn->first, 2);  // 1 is banned
    idx.erase(2);
    const auto nn2 = idx.nearest(0, banned);
    EXPECT_FALSE(nn2.has_value());  // everyone banned or gone
    EXPECT_EQ(idx.size(), 2u);
}

TEST(NnIndex, PairKeyIsSymmetric) {
    EXPECT_EQ(pair_key(3, 7), pair_key(7, 3));
    EXPECT_NE(pair_key(3, 7), pair_key(3, 8));
}

TEST(Embedder, PlacesEveryNodeOnItsArc) {
    auto inst = gen::ring(20, 2);
    const auto r = route_ast_dme(inst);
    for (std::size_t i = 0; i < r.tree.size(); ++i) {
        const auto& n = r.tree.node(static_cast<node_id>(i));
        ASSERT_TRUE(n.is_placed);
        EXPECT_LE(n.arc.distance(n.placed.to_tilted()), 1e-6)
            << "node " << i << " placed off its merging arc";
    }
}

TEST(Embedder, PhysicalNeverExceedsElectrical) {
    auto inst = gen::depth_ramp(12);  // forces snaking
    const auto r = route_zst_dme(inst);
    EXPECT_LT(r.embed.worst_excess, 1e-5);
    // Snaking means electrical strictly exceeds physical somewhere.
    EXPECT_GT(r.embed.total_snake, 0.0);
    for (std::size_t i = 0; i < r.tree.size(); ++i) {
        const auto& n = r.tree.node(static_cast<node_id>(i));
        if (n.is_leaf()) continue;
        const auto pp = n.placed.to_tilted();
        const double dl =
            geom::chebyshev(pp, r.tree.node(n.left).placed.to_tilted());
        const double dr =
            geom::chebyshev(pp, r.tree.node(n.right).placed.to_tilted());
        EXPECT_LE(dl, n.edge_left + 1e-6);
        EXPECT_LE(dr, n.edge_right + 1e-6);
    }
}

TEST(Embedder, LeafPlacementEqualsSinkLocation) {
    auto inst = gen::ring(16, 2);
    const auto r = route_ast_dme(inst);
    for (std::size_t i = 0; i < r.tree.size(); ++i) {
        const auto& n = r.tree.node(static_cast<node_id>(i));
        if (!n.is_leaf()) continue;
        const auto& s = inst.sinks[static_cast<std::size_t>(n.sink_index)];
        EXPECT_NEAR(geom::manhattan(n.placed, s.loc), 0.0, 1e-9);
    }
}

TEST(Embedder, SourceEdgeIsDistanceToRootArc) {
    auto inst = gen::ring(10, 1);
    const auto r = route_zst_dme(inst);
    const auto& root = r.tree.node(r.tree.root());
    EXPECT_NEAR(r.tree.source_edge(),
                geom::chebyshev(inst.source.to_tilted(),
                                root.placed.to_tilted()),
                1e-9);
}

TEST(Engine, ReducesSingleRootTrivially) {
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{5, 5}, 1e-15, 0}};
    clock_tree t;
    const node_id leaf = t.add_leaf(inst, 0);
    bottom_up_engine engine(merge_solver(kmodel, skew_spec::zero()));
    engine_stats st;
    EXPECT_EQ(engine.reduce(t, {leaf}, &st), leaf);
    EXPECT_EQ(st.merges, 0);
}

TEST(Engine, MergeCountAndCostAccounting) {
    auto inst = gen::ring(32, 1);
    const auto r = route_zst_dme(inst);
    EXPECT_EQ(r.stats.merges, 31);
    // Wirelength == sum of plan costs + source edge; snake_wire is the
    // excess over the arc distances.
    EXPECT_GE(r.stats.snake_wire, 0.0);
    EXPECT_GE(r.wirelength, r.embed.total_physical);
}

TEST(Engine, MultiMergeMatchesNearestOnSymmetricRing) {
    // Both orders must produce valid zero-skew trees; on a symmetric ring
    // their wirelengths agree closely.
    auto inst = gen::ring(24, 1);
    router_options near_opt;
    router_options multi_opt;
    multi_opt.engine.order = merge_order::multi_merge;
    const auto a = route_zst_dme(inst, near_opt);
    const auto b = route_zst_dme(inst, multi_opt);
    EXPECT_LT(std::fabs(a.wirelength - b.wirelength),
              0.12 * a.wirelength);
    EXPECT_GT(b.stats.rounds, 0);
}

TEST(Engine, WindowedModeRecordsRejections) {
    // The windowed mode on an offset-conflicted instance must either repair
    // (interior snakes), reroute (rejections), or force (violations) — and
    // the stats must say which.
    auto inst = gen::two_clusters(12);
    const auto r = route_ast_dme(inst, skew_spec::zero(), {},
                                 ast_mode::windowed);
    const int conflicts = r.stats.rejected_pairs + r.stats.interior_snakes +
                          r.stats.forced_merges;
    EXPECT_GE(conflicts, 0);  // smoke: counters wired up
    EXPECT_EQ(r.tree.check_structure(inst.size()), "");
}

}  // namespace
}  // namespace astclk::core
