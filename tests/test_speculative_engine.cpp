// Speculative nearest-pair pipeline tests (DESIGN.md §3): with
// speculate_k > 0 the engine fans the top-k candidates' plan() calls out
// over the executor ahead of selection and commits from the
// generation-stamped plan cache — and the resulting trees, wirelengths,
// rejections and forced-merge stats must be bit-identical to the plain
// sequential engine for every configuration.  This file asserts that
// identity across speculate_k {0, 1, 8} x threads {1, 2, hw} x both NN
// backends on the paper's r1–r5 benchmarks (full tree comparison on the
// small ones, full stats + tree on the large ones at a reduced config
// matrix to keep runtimes sane), and that the speculation/cache counters
// prove the pipeline actually engaged — the way overlap gains are
// asserted on single-core CI hardware.

#include "core/route_service.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace astclk::core {
namespace {

topo::instance paper_instance(const char* name, int groups) {
    gen::instance_spec spec = gen::paper_spec(name);
    auto inst = gen::generate(spec);
    gen::apply_intermingled_groups(inst, groups, spec.seed + 1);
    return inst;
}

void expect_same_tree(const route_result& got, const route_result& ref,
                      const std::string& what) {
    ASSERT_TRUE(got.ok()) << what << ": " << got.status_message;
    ASSERT_TRUE(ref.ok()) << what << ": " << ref.status_message;
    EXPECT_EQ(got.wirelength, ref.wirelength) << what;
    EXPECT_EQ(got.stats.merges, ref.stats.merges) << what;
    EXPECT_EQ(got.stats.snake_wire, ref.stats.snake_wire) << what;
    EXPECT_EQ(got.stats.rejected_pairs, ref.stats.rejected_pairs) << what;
    EXPECT_EQ(got.stats.forced_merges, ref.stats.forced_merges) << what;
    EXPECT_EQ(got.stats.worst_violation, ref.stats.worst_violation) << what;
    ASSERT_EQ(got.tree.size(), ref.tree.size()) << what;
    for (std::size_t i = 0; i < got.tree.size(); ++i) {
        const auto& gn = got.tree.node(static_cast<topo::node_id>(i));
        const auto& rn = ref.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(gn.left, rn.left) << what << " node " << i;
        ASSERT_EQ(gn.right, rn.right) << what << " node " << i;
        ASSERT_EQ(gn.arc, rn.arc) << what << " node " << i;
        ASSERT_EQ(gn.edge_left, rn.edge_left) << what << " node " << i;
        ASSERT_EQ(gn.edge_right, rn.edge_right) << what << " node " << i;
    }
}

routing_request windowed_request(const topo::instance& inst, nn_backend be,
                                 int speculate_k, bool plan_cache = true) {
    routing_request r;
    r.instance = &inst;
    r.strategy = strategy_id::ast_dme;
    r.mode = ast_mode::windowed;  // ledger-free: the cache-eligible solver
    r.options.engine.backend = be;
    r.options.engine.speculate_k = speculate_k;
    r.options.engine.plan_cache = plan_cache;
    return r;
}

TEST(SpeculativeEngine, BitIdentityMatrixOnSmallPaperBenchmarks) {
    // r1 and r2, full matrix: speculate_k {0, 1, 8} x threads {1, 2, hw}
    // x both backends, every run compared tree-for-tree against the plain
    // sequential engine (k = 0, no executor, cache on — the default path,
    // itself asserted identical to the cache-off engine below).
    const std::vector<int> counts{
        1, 2,
        static_cast<int>(std::max(2u, std::thread::hardware_concurrency()))};
    for (const char* name : {"r1", "r2"}) {
        const auto inst = paper_instance(name, 6);
        for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
            const auto ref = route(windowed_request(inst, be, 0));
            // The plan cache alone (no speculation) must also be a no-op
            // on results — including with the memo disabled outright.
            expect_same_tree(route(windowed_request(inst, be, 0, false)),
                             ref, std::string(name) + " cache-off");
            for (const int threads : counts) {
                service_options sopt;
                sopt.threads = threads;
                route_service svc(sopt);
                for (const int k : {0, 1, 8}) {
                    auto req = windowed_request(inst, be, k);
                    const auto got = svc.route_batch({req});
                    expect_same_tree(
                        got[0], ref,
                        std::string(name) + " k=" + std::to_string(k) +
                            " threads=" + std::to_string(threads) +
                            (be == nn_backend::grid ? " grid" : " linear"));
                }
            }
        }
    }
}

TEST(SpeculativeEngine, BitIdentityOnLargePaperBenchmarks) {
    // r3 and r4 at a reduced matrix: both backends, threads 2, k {0, 8} —
    // large enough for rejections and deep heaps, small enough for CI.
    for (const char* name : {"r3", "r4"}) {
        const auto inst = paper_instance(name, 8);
        for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
            const auto ref = route(windowed_request(inst, be, 0));
            EXPECT_GT(ref.stats.rejected_pairs, 0)
                << name << ": want a workload that exercises bans";
            service_options sopt;
            sopt.threads = 2;
            route_service svc(sopt);
            auto req = windowed_request(inst, be, 8);
            expect_same_tree(
                svc.route_batch({req})[0], ref,
                std::string(name) +
                    (be == nn_backend::grid ? " grid" : " linear"));
        }
    }
}

TEST(SpeculativeEngine, R5CountersProveThePipelineEngaged) {
    // The paper's headline difficult instance: speculation at k = 8 on a
    // 2-worker pool must consume speculated plans and hit the cache while
    // staying bit-identical — the single-core-CI proxy for overlap gains.
    const auto inst = paper_instance("r5", 10);
    const auto ref = route(windowed_request(inst, nn_backend::grid, 0));
    EXPECT_EQ(ref.stats.speculated_plans, 0);
    // The sequential engine already reuses re-keyed survivors' plans.
    EXPECT_GT(ref.stats.plan_cache_hits, 0);
    EXPECT_GT(ref.stats.plan_cache_misses, 0);

    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    auto req = windowed_request(inst, nn_backend::grid, 8);
    const auto got = svc.route_batch({req})[0];
    expect_same_tree(got, ref, "r5 speculative");
    EXPECT_GT(got.stats.speculated_plans, 0);
    EXPECT_GT(got.stats.speculative_hits, 0);   // speculative consumption
    EXPECT_GT(got.stats.plan_cache_hits, 0);    // cache hit rate > 0
    EXPECT_EQ(got.stats.wasted_speculation,
              got.stats.speculated_plans - got.stats.speculative_hits);
    // Speculation replaces inline solves one for one: total plans looked
    // up is unchanged, only where they were solved moves.
    EXPECT_EQ(got.stats.plan_cache_hits + got.stats.plan_cache_misses,
              ref.stats.plan_cache_hits + ref.stats.plan_cache_misses);
}

TEST(SpeculativeEngine, CountersStayZeroWhenThePipelineCannotEngage) {
    const auto inst = paper_instance("r1", 6);
    // No executor: the knob alone must not dispatch anything.
    const auto solo = route(windowed_request(inst, nn_backend::grid, 16));
    EXPECT_EQ(solo.stats.speculated_plans, 0);
    EXPECT_EQ(solo.stats.wasted_speculation, 0);
    // Cache off: no speculation (results land in the memo) and no counters.
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    auto req = windowed_request(inst, nn_backend::grid, 16, false);
    const auto got = svc.route_batch({req})[0];
    EXPECT_EQ(got.stats.speculated_plans, 0);
    EXPECT_EQ(got.stats.plan_cache_hits, 0);
    EXPECT_EQ(got.stats.plan_cache_misses, 0);
    // Ledger-backed solvers disable the memo internally: plans read
    // offsets that commits bind, so nothing may be reused across steps.
    routing_request soft;
    soft.instance = &inst;
    soft.strategy = strategy_id::ast_dme;
    soft.mode = ast_mode::soft_ledger;
    soft.options.engine.speculate_k = 16;
    const auto lg = svc.route_batch({soft})[0];
    ASSERT_TRUE(lg.ok()) << lg.status_message;
    EXPECT_EQ(lg.stats.speculated_plans, 0);
    EXPECT_EQ(lg.stats.plan_cache_hits, 0);
    EXPECT_EQ(lg.stats.plan_cache_misses, 0);
}

TEST(SpeculativeEngine, ZstAndBstStrategiesAreIdenticalUnderSpeculation) {
    // The pipeline is strategy-agnostic: the single-group routers ride the
    // same reducer, so they must be bit-identical under speculation too.
    const auto inst = paper_instance("r2", 6);
    for (const strategy_id s : {strategy_id::zst_dme, strategy_id::ext_bst,
                                strategy_id::separate_stitch}) {
        routing_request base;
        base.instance = &inst;
        base.strategy = s;
        if (s == strategy_id::ext_bst) base.spec = skew_spec::uniform(10e-12);
        const auto ref = route(base);
        service_options sopt;
        sopt.threads = 2;
        route_service svc(sopt);
        auto req = base;
        req.options.engine.speculate_k = 8;
        expect_same_tree(svc.route_batch({req})[0], ref,
                         strategy_registry::global().name_of(s));
    }
}

}  // namespace
}  // namespace astclk::core
