// Batch plan-kernel identity tests (DESIGN.md §11): the SoA batch layer
// (plan_kernels.hpp) must be a pure *throughput* change — trees and every
// pre-existing engine statistic bit-identical to the scalar kernel, with
// only wall-clock and the kernel counters (batch_planned,
// kernel_fallbacks, nn_scratch_reuses) allowed to move.  Covered here:
//
//  * full identity matrix on r1–r3: batch vs scalar at the *same*
//    configuration for both NN backends x threads {1, 2, hw} x
//    speculate_k {0, 8} x shards {1, 4} — trees and stats compared
//    field by field;
//  * a reduced slice of the same identity on r4–r5 (the large paper
//    instances) so the contract is exercised at scale without blowing
//    up suite runtime;
//  * multi-merge round planning: the batch dispatch inside the round
//    fan-out is bit-identical too;
//  * lane remainders: solve_plan_batch over the accepted merge stream of
//    a real reduce, replayed at every batch size 1..9 (full chunks,
//    partial chunks, chunk-of-one) against per-pair scalar plan() —
//    every plan field compared bitwise;
//  * fallback accounting: a windowed ledger-free solver takes the fast
//    path (zero fallbacks on the accepted stream), a ledger-backed
//    solver bounces every lane, the scalar kernel books nothing, and
//    grid-backend batch runs reuse the NN gather scratch;
//  * soft-ledger routes: batch dispatch is gated off entirely (every
//    lane would bounce), so the counters stay zero and the tree still
//    matches the scalar kernel run.

#include "core/plan_kernels.hpp"
#include "core/route_service.hpp"
#include "core/router_detail.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace astclk::core {
namespace {

topo::instance paper_instance(const char* name, int groups) {
    gen::instance_spec spec = gen::paper_spec(name);
    auto inst = gen::generate(spec);
    if (groups > 1)
        gen::apply_intermingled_groups(inst, groups, spec.seed + 1);
    return inst;
}

routing_request kernel_request(const topo::instance& inst, plan_kernel k,
                              nn_backend be, int speculate, int shards) {
    routing_request r;
    r.instance = &inst;
    r.strategy = strategy_id::ast_dme;
    r.mode = ast_mode::windowed;
    r.options.engine.kernel = k;
    r.options.engine.backend = be;
    r.options.engine.speculate_k = speculate;
    r.options.engine.shards = shards;
    return r;
}

/// Trees and every pre-existing statistic equal; the kernel counters are
/// deliberately *not* compared (they describe how plans were solved).
void expect_identical(const route_result& got, const route_result& ref,
                      const std::string& what) {
    ASSERT_TRUE(got.ok()) << what << ": " << got.status_message;
    ASSERT_TRUE(ref.ok()) << what << ": " << ref.status_message;
    EXPECT_EQ(got.wirelength, ref.wirelength) << what;
    const engine_stats& g = got.stats;
    const engine_stats& r = ref.stats;
    EXPECT_EQ(g.merges, r.merges) << what;
    EXPECT_EQ(g.disjoint_merges, r.disjoint_merges) << what;
    EXPECT_EQ(g.shared_merges, r.shared_merges) << what;
    EXPECT_EQ(g.multi_shared_merges, r.multi_shared_merges) << what;
    EXPECT_EQ(g.root_snakes, r.root_snakes) << what;
    EXPECT_EQ(g.interior_snakes, r.interior_snakes) << what;
    EXPECT_EQ(g.snake_wire, r.snake_wire) << what;
    EXPECT_EQ(g.rejected_pairs, r.rejected_pairs) << what;
    EXPECT_EQ(g.forced_merges, r.forced_merges) << what;
    EXPECT_EQ(g.worst_violation, r.worst_violation) << what;
    EXPECT_EQ(g.rounds, r.rounds) << what;
    EXPECT_EQ(g.plan_cache_hits, r.plan_cache_hits) << what;
    EXPECT_EQ(g.plan_cache_misses, r.plan_cache_misses) << what;
    EXPECT_EQ(g.speculated_plans, r.speculated_plans) << what;
    EXPECT_EQ(g.speculative_hits, r.speculative_hits) << what;
    EXPECT_EQ(g.wasted_speculation, r.wasted_speculation) << what;
    EXPECT_EQ(g.shards, r.shards) << what;
    ASSERT_EQ(got.tree.size(), ref.tree.size()) << what;
    for (std::size_t i = 0; i < got.tree.size(); ++i) {
        const auto& gn = got.tree.node(static_cast<topo::node_id>(i));
        const auto& rn = ref.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(gn.left, rn.left) << what << " node " << i;
        ASSERT_EQ(gn.right, rn.right) << what << " node " << i;
        ASSERT_EQ(gn.arc, rn.arc) << what << " node " << i;
        ASSERT_EQ(gn.edge_left, rn.edge_left) << what << " node " << i;
        ASSERT_EQ(gn.edge_right, rn.edge_right) << what << " node " << i;
        ASSERT_EQ(gn.delays, rn.delays) << what << " node " << i;
    }
}

route_result run_with_threads(const routing_request& req, int threads) {
    if (threads == 1) return route(req);
    service_options sopt;
    sopt.threads = threads;
    route_service svc(sopt);
    return svc.route_batch({req})[0];
}

// --------------------------------------------------------- identity matrix

TEST(PlanKernels, BatchBitIdenticalAcrossFullMatrix) {
    const int hw =
        static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
    for (const char* name : {"r1", "r2", "r3"}) {
        const auto inst = paper_instance(name, 6);
        for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
            for (const int spec_k : {0, 8}) {
                for (const int shards : {1, 4}) {
                    for (const int threads : {1, 2, hw}) {
                        const auto ref = run_with_threads(
                            kernel_request(inst, plan_kernel::scalar, be,
                                           spec_k, shards),
                            threads);
                        const auto got = run_with_threads(
                            kernel_request(inst, plan_kernel::batch, be,
                                           spec_k, shards),
                            threads);
                        expect_identical(
                            got, ref,
                            std::string(name) +
                                (be == nn_backend::grid ? " grid" :
                                                          " linear") +
                                " spec=" + std::to_string(spec_k) +
                                " shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads));
                    }
                }
            }
        }
    }
}

TEST(PlanKernels, BatchBitIdenticalOnLargeInstancesSlice) {
    // r4/r5 at one representative parallel configuration each: the
    // contract at scale without the full matrix's runtime.
    for (const char* name : {"r4", "r5"}) {
        const auto inst = paper_instance(name, 8);
        const auto ref = run_with_threads(
            kernel_request(inst, plan_kernel::scalar, nn_backend::grid, 8, 4),
            2);
        const auto got = run_with_threads(
            kernel_request(inst, plan_kernel::batch, nn_backend::grid, 8, 4),
            2);
        expect_identical(got, ref, std::string(name) + " slice");
    }
}

TEST(PlanKernels, MultiMergeRoundPlanningBitIdentical) {
    const auto inst = paper_instance("r2", 6);
    for (const int threads : {1, 2}) {
        auto scalar_req = kernel_request(inst, plan_kernel::scalar,
                                         nn_backend::grid, 0, 1);
        scalar_req.options.engine.order = merge_order::multi_merge;
        auto batch_req = scalar_req;
        batch_req.options.engine.kernel = plan_kernel::batch;
        const auto ref = run_with_threads(scalar_req, threads);
        const auto got = run_with_threads(batch_req, threads);
        expect_identical(got, ref,
                         "multi-merge threads=" + std::to_string(threads));
        // The round fan-out really went through the batch dispatch.
        EXPECT_GT(got.stats.batch_planned, 0);
        EXPECT_EQ(ref.stats.batch_planned, 0);
    }
}

// ---------------------------------------------------------- lane remainders

/// The accepted merge stream of a full reduce: internal nodes in creation
/// order.  Replaying plan() on the final tree reproduces every accepted
/// solve exactly (subtrees are immutable once merged), which makes the
/// stream a deterministic workload for the batch solver.
struct plan_stream {
    topo::clock_tree tree;
    std::vector<std::pair<topo::node_id, topo::node_id>> pairs;
};

plan_stream make_plan_stream(const topo::instance& inst,
                             const merge_solver& solver) {
    plan_stream ps;
    engine_options eopt;
    eopt.backend = nn_backend::grid;
    const bottom_up_engine engine(solver, eopt);
    auto roots = detail::make_leaves(inst, ps.tree, false);
    const std::size_t leaves = ps.tree.size();
    engine.reduce(ps.tree, std::move(roots), nullptr);
    for (std::size_t i = leaves; i < ps.tree.size(); ++i) {
        const auto& nd = ps.tree.node(static_cast<topo::node_id>(i));
        ps.pairs.emplace_back(nd.left, nd.right);
    }
    return ps;
}

void expect_same_plan(const std::optional<merge_plan>& got,
                      const std::optional<merge_plan>& ref,
                      const std::string& what) {
    ASSERT_EQ(got.has_value(), ref.has_value()) << what;
    if (!got.has_value()) return;
    EXPECT_EQ(got->alpha, ref->alpha) << what;
    EXPECT_EQ(got->beta, ref->beta) << what;
    EXPECT_EQ(got->arc, ref->arc) << what;
    EXPECT_EQ(got->cost, ref->cost) << what;
    EXPECT_EQ(got->order_cost, ref->order_cost) << what;
    EXPECT_EQ(got->new_cap, ref->new_cap) << what;
    EXPECT_EQ(got->delays, ref->delays) << what;
    EXPECT_EQ(got->shared_groups, ref->shared_groups) << what;
    EXPECT_EQ(got->violation, ref->violation) << what;
    ASSERT_EQ(got->snakes.size(), ref->snakes.size()) << what;
    for (std::size_t i = 0; i < got->snakes.size(); ++i) {
        EXPECT_EQ(got->snakes[i].side_root, ref->snakes[i].side_root)
            << what;
        EXPECT_EQ(got->snakes[i].child, ref->snakes[i].child) << what;
        EXPECT_EQ(got->snakes[i].gamma, ref->snakes[i].gamma) << what;
        EXPECT_EQ(got->snakes[i].delay_shift, ref->snakes[i].delay_shift)
            << what;
    }
}

TEST(PlanKernels, EveryBatchSizeBitIdenticalToScalarSolves) {
    gen::instance_spec spec = gen::paper_spec("r1");
    auto inst = gen::generate(spec);
    gen::apply_intermingled_groups(inst, 6, spec.seed + 1);
    const merge_solver solver(rc::delay_model::elmore(),
                              skew_spec::uniform(2.0));
    const plan_stream ps = make_plan_stream(inst, solver);
    ASSERT_GT(ps.pairs.size(), 32u);  // several full chunks available

    // Scalar reference: one per-pair plan() per accepted merge.
    std::vector<std::optional<merge_plan>> ref(ps.pairs.size());
    for (std::size_t i = 0; i < ps.pairs.size(); ++i)
        ref[i] = solver.plan(ps.tree, ps.pairs[i].first, ps.pairs[i].second);

    // Replay the same stream through the batch solver at every batch size
    // 1..9: covers chunk-of-one (the engine's solve_one shape), partial
    // chunks, exact lane multiples, and one-past-a-lane remainders.
    for (std::size_t bs = 1; bs <= 9; ++bs) {
        std::vector<std::optional<merge_plan>> got(ps.pairs.size());
        int fallbacks = 0;
        for (std::size_t base = 0; base < ps.pairs.size(); base += bs) {
            const std::size_t n = std::min(bs, ps.pairs.size() - base);
            fallbacks += solve_plan_batch(solver, ps.tree,
                                          ps.pairs.data() + base, n,
                                          got.data() + base);
        }
        for (std::size_t i = 0; i < ps.pairs.size(); ++i)
            expect_same_plan(got[i], ref[i],
                             "bs=" + std::to_string(bs) +
                                 " pair=" + std::to_string(i));
        // The accepted stream of a windowed ledger-free reduce is all
        // fast-path work: every accepted merge had a non-empty first
        // window, so no lane bounces regardless of grouping.
        EXPECT_EQ(fallbacks, 0) << "bs=" << bs;
    }
}

// ------------------------------------------------------ fallback accounting

TEST(PlanKernels, LedgerBackedSolverBouncesEveryLane) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = 64;
    auto inst = gen::generate(spec);
    gen::apply_intermingled_groups(inst, 4, spec.seed + 1);
    const merge_solver windowed(rc::delay_model::elmore(),
                                skew_spec::uniform(2.0));
    const plan_stream ps = make_plan_stream(inst, windowed);

    offset_ledger ledger(4);
    const merge_solver ledgered(rc::delay_model::elmore(),
                                skew_spec::uniform(2.0), &ledger,
                                consistency_mode::exact);
    std::vector<std::optional<merge_plan>> out(ps.pairs.size());
    const int fb = solve_plan_batch(ledgered, ps.tree, ps.pairs.data(),
                                    ps.pairs.size(), out.data());
    // Non-windowed solver modes are general-path lanes by contract: the
    // batch solver must bounce all of them to scalar plan() verbatim.
    EXPECT_EQ(fb, static_cast<int>(ps.pairs.size()));
    for (std::size_t i = 0; i < ps.pairs.size(); ++i)
        expect_same_plan(out[i],
                         ledgered.plan(ps.tree, ps.pairs[i].first,
                                       ps.pairs[i].second),
                         "ledgered pair=" + std::to_string(i));
}

TEST(PlanKernels, KernelCountersBookWhoSolvedWhat) {
    const auto inst = paper_instance("r1", 6);
    // Scalar kernel: no batch dispatch anywhere, so all three counters
    // stay zero.
    const auto scalar = route(kernel_request(
        inst, plan_kernel::scalar, nn_backend::grid, 0, 1));
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(scalar.stats.batch_planned, 0);
    EXPECT_EQ(scalar.stats.kernel_fallbacks, 0);
    EXPECT_EQ(scalar.stats.nn_scratch_reuses, 0);

    // Batch kernel on the grid backend: the fast path solves plans, and
    // the ring-expansion gathers find warm scratch after the first query.
    const auto batch = route(kernel_request(
        inst, plan_kernel::batch, nn_backend::grid, 0, 1));
    ASSERT_TRUE(batch.ok());
    EXPECT_GT(batch.stats.batch_planned, 0);
    // Every accepted merge was solved by exactly one of the two paths.
    EXPECT_GE(batch.stats.batch_planned + batch.stats.kernel_fallbacks,
              batch.stats.merges);
    EXPECT_GT(batch.stats.nn_scratch_reuses, 0);

    // The linear backend never touches the gather scratch.
    const auto linear = route(kernel_request(
        inst, plan_kernel::batch, nn_backend::linear, 0, 1));
    ASSERT_TRUE(linear.ok());
    EXPECT_GT(linear.stats.batch_planned, 0);
    EXPECT_EQ(linear.stats.nn_scratch_reuses, 0);
}

// ------------------------------------------------------------- soft ledger

TEST(PlanKernels, SoftLedgerRouteGatesBatchOffAndStaysIdentical) {
    const auto inst = paper_instance("r2", 6);
    auto scalar_req = kernel_request(inst, plan_kernel::scalar,
                                     nn_backend::grid, 0, 1);
    scalar_req.mode = ast_mode::soft_ledger;
    auto batch_req = scalar_req;
    batch_req.options.engine.kernel = plan_kernel::batch;
    const auto ref = route(scalar_req);
    const auto got = route(batch_req);
    expect_identical(got, ref, "soft ledger");
    // Ledger-backed planning gates the batch dispatch off entirely: no
    // lane would qualify, so nothing is booked to any kernel counter.
    EXPECT_EQ(got.stats.batch_planned, 0);
    EXPECT_EQ(got.stats.kernel_fallbacks, 0);
}

}  // namespace
}  // namespace astclk::core
