// I/O tests: bit-exact instance round-trips, parse diagnostics, SVG, JSON
// and table smoke checks.

#include <algorithm>

#include "core/router.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "io/instance_io.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "io/tree_json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace astclk::io {
namespace {

TEST(InstanceIo, RoundTripIsBitExact) {
    auto inst = gen::generate(gen::paper_spec("r1"));
    gen::apply_intermingled_groups(inst, 5, 7);
    std::stringstream ss;
    write_instance(ss, inst);
    const auto back = read_instance(ss);
    EXPECT_EQ(back.name, inst.name);
    EXPECT_EQ(back.num_groups, inst.num_groups);
    EXPECT_EQ(back.die_width, inst.die_width);
    EXPECT_EQ(back.source.x, inst.source.x);
    ASSERT_EQ(back.sinks.size(), inst.sinks.size());
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        EXPECT_EQ(back.sinks[i], inst.sinks[i]);  // exact doubles
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
    std::stringstream ss;
    ss << "astclk-instance v1\n# a comment\n\nname t\ndie 10 10\n"
       << "source 5 5\ngroups 1\nsinks 2\n"
       << "1 1 1e-15 0  # trailing comment\n2 2 1e-15 0\n";
    const auto inst = read_instance(ss);
    EXPECT_EQ(inst.size(), 2u);
}

TEST(InstanceIo, RejectsMissingHeader) {
    std::stringstream ss("name x\n");
    EXPECT_THROW(read_instance(ss), std::runtime_error);
}

TEST(InstanceIo, RejectsTruncatedSinkList) {
    std::stringstream ss;
    ss << "astclk-instance v1\nname t\ndie 10 10\nsource 5 5\ngroups 1\n"
       << "sinks 3\n1 1 1e-15 0\n";
    EXPECT_THROW(read_instance(ss), std::runtime_error);
}

TEST(InstanceIo, RejectsInvalidInstance) {
    std::stringstream ss;
    ss << "astclk-instance v1\nname t\ndie 10 10\nsource 5 5\ngroups 2\n"
       << "sinks 1\n1 1 1e-15 0\n";  // group 1 empty
    EXPECT_THROW(read_instance(ss), std::runtime_error);
}

TEST(InstanceIo, RejectsUnknownHeaderKey) {
    std::stringstream ss("astclk-instance v1\nfrobnicate 3\n");
    EXPECT_THROW(read_instance(ss), std::runtime_error);
}

TEST(Svg, RendersRoutedTree) {
    auto inst = gen::generate(gen::paper_spec("r1"));
    inst.sinks.resize(40);
    inst.num_groups = 1;
    gen::apply_intermingled_groups(inst, 3, 1);
    const auto route = core::route_ast_dme(inst);
    std::stringstream ss;
    svg_options opt;
    opt.draw_arcs = true;
    write_tree_svg(ss, route.tree, inst, opt);
    const std::string svg = ss.str();
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("<circle"), std::string::npos);  // sinks
    EXPECT_NE(svg.find("<path"), std::string::npos);    // edges
}

TEST(Table, AlignsColumnsAndFormats) {
    table t({"Circuit", "Wirelen", "Reduction"});
    t.add_row({"r1", table::integer(1070421.4), table::percent(0.0939)});
    t.add_rule();
    t.add_row({"r2", table::integer(2169791.0), table::percent(0.105)});
    std::stringstream ss;
    t.print(ss);
    const std::string s = ss.str();
    EXPECT_NE(s.find("1070421"), std::string::npos);
    EXPECT_NE(s.find("9.39%"), std::string::npos);
    EXPECT_NE(s.find("10.50%"), std::string::npos);
    EXPECT_NE(s.find("| Circuit "), std::string::npos);
}

TEST(TreeJson, ExportsConsistentStructure) {
    auto inst = gen::generate(gen::paper_spec("r1"));
    inst.sinks.resize(25);
    inst.num_groups = 1;
    gen::apply_intermingled_groups(inst, 2, 4);
    const auto route = core::route_ast_dme(inst);
    std::stringstream ss;
    write_tree_json(ss, route.tree, inst);
    const std::string j = ss.str();
    // Structural markers: one node object per tree node, root id, and the
    // booked wirelength.
    std::size_t count = 0, pos = 0;
    while ((pos = j.find("\"id\":", pos)) != std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(count, route.tree.size());
    EXPECT_NE(j.find("\"root\": " + std::to_string(route.tree.root())),
              std::string::npos);
    EXPECT_NE(j.find("\"wirelength\":"), std::string::npos);
    EXPECT_NE(j.find("\"edge_left\":"), std::string::npos);
    EXPECT_NE(j.find("\"group\":"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));
}

TEST(Table, FixedFormatting) {
    EXPECT_EQ(table::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(table::integer(41.7), "42");
    EXPECT_EQ(table::percent(0.5), "50.00%");
}

}  // namespace
}  // namespace astclk::io
