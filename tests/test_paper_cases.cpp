// Reproductions of the paper's didactic figures as executable tests:
//   Fig. 1 — bounded skew beats zero skew on wirelength (path-length model);
//   Fig. 2 — separate per-group trees waste wire on interleaved sinks;
//   Fig. 3 — the SDR merging region between disjoint-group subtrees;
//   Fig. 4/5 — shared-group merges: reduced regions and wire sneaking.

#include "core/merge_solver.hpp"
#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/instance_gen.hpp"
#include "geom/octagon.hpp"

#include <gtest/gtest.h>

namespace astclk {
namespace {

using namespace core;
using topo::instance;
using topo::node_id;

// ---------------------------------------------------------------------------
// Fig. 1: on the same 5-sink instance, relaxing the skew bound can only
// reduce wirelength (17 vs 16 in the paper's drawing).
// ---------------------------------------------------------------------------

instance fig1_instance() {
    instance inst;
    inst.num_groups = 1;
    inst.die_width = inst.die_height = 10.0;
    inst.source = {4.0, 5.0};
    // An asymmetric constellation in the spirit of the figure: four spread
    // sinks plus one outlier that forces balancing wire under zero skew.
    inst.sinks = {{{1.0, 1.0}, 1.0, 0},
                  {{2.0, 6.0}, 1.0, 0},
                  {{6.0, 2.0}, 1.0, 0},
                  {{7.0, 7.0}, 1.0, 0},
                  {{5.0, 9.0}, 1.0, 0}};
    return inst;
}

TEST(PaperFig1, BoundedSkewSavesWireUnderPathLengthModel) {
    const auto inst = fig1_instance();
    router_options opt;
    opt.model = rc::delay_model::path_length();
    const auto zst = route_zst_dme(inst, opt);
    const auto ev_z = eval::evaluate(zst.tree, inst, opt.model);
    EXPECT_LT(ev_z.global_skew, 1e-9);
    // Greedy order noise means a single bound value is not guaranteed to
    // win on a 5-sink didactic instance, but the best over a small bound
    // sweep must never lose to zero skew — the figure's actual claim.
    double best = 1e30;
    for (double bound : {1.0, 2.0, 4.0, 8.0}) {
        const auto bst = route_ext_bst(inst, bound, opt);
        const auto ev_b = eval::evaluate(bst.tree, inst, opt.model);
        EXPECT_LE(ev_b.global_skew, bound + 1e-9);
        best = std::min(best, bst.wirelength);
    }
    EXPECT_LE(best, zst.wirelength + 1e-9);
}

TEST(PaperFig1, ElmoreModelShowsTheSameOrderingAtScale) {
    // On a realistically sized instance the relaxed bound saves real wire:
    // zero skew must pay balancing (snaking) that a loose bound avoids.
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = 64;
    const auto inst = gen::generate(spec);
    router_options opt;
    const auto zst = route_zst_dme(inst, opt);
    const auto loose = route_ext_bst(inst, 1e-9, opt);  // 1000 ps ~ infinite
    EXPECT_LT(loose.wirelength, zst.wirelength);
    const auto ev = eval::evaluate(loose.tree, inst, opt.model);
    EXPECT_LE(rc::to_ps(ev.global_skew), 1000.0 + 1e-3);
}

// ---------------------------------------------------------------------------
// Fig. 2: two interleaved groups on a line.  Building each group's tree
// separately and stitching wastes wire (overlap); merging across groups
// recovers it.  The paper claims up to 1/3 reduction; the comb below shows
// a large, stable gap.
// ---------------------------------------------------------------------------

instance fig2_comb(int teeth) {
    instance inst;
    inst.num_groups = 2;
    inst.die_width = static_cast<double>(teeth) * 10.0;
    inst.die_height = 20.0;
    inst.source = {inst.die_width / 2, 10.0};
    for (int i = 0; i < teeth; ++i) {
        // Alternating groups along a line: maximal interleaving.
        inst.sinks.push_back(
            {{10.0 * i + 1.0, 10.0}, 10e-15, static_cast<topo::group_id>(i % 2)});
    }
    return inst;
}

TEST(PaperFig2, SeparateConstructionWastesWireOnInterleavedGroups) {
    const auto inst = fig2_comb(16);
    const router_options opt;
    const auto sep = route_separate_stitch(inst, opt);
    const auto ast = route_ast_dme(inst);
    // Both satisfy the constraints...
    EXPECT_TRUE(
        eval::verify_route(sep, inst, opt.model, skew_spec::zero()).ok);
    EXPECT_TRUE(
        eval::verify_route(ast, inst, opt.model, skew_spec::zero()).ok);
    // ...but separate trees overlap along the comb and cost far more.
    EXPECT_GT(sep.wirelength, 1.3 * ast.wirelength);
}

TEST(PaperFig2, CrossGroupMergingApproachesSingleTreeCost) {
    const auto inst = fig2_comb(16);
    const auto ast = route_ast_dme(inst);
    const auto zst = route_zst_dme(inst);
    // AST may exploit freedom but never needs to be much worse than the
    // fully-constrained single-group tree on this symmetric comb.
    EXPECT_LT(ast.wirelength, 1.1 * zst.wirelength);
}

// ---------------------------------------------------------------------------
// Fig. 3: the merging region of two disjoint-group subtrees is the SDR
// between their merging segments, and the engine's merge cost equals the
// distance between them.
// ---------------------------------------------------------------------------

TEST(PaperFig3, DisjointMergeUsesShortestDistanceRegion) {
    const geom::tilted_rect ms_a{geom::interval::at(10.0),
                                 geom::interval{-5.0, 5.0}};
    const geom::tilted_rect ms_b{geom::interval{30.0, 40.0},
                                 geom::interval::at(2.0)};
    const double d = ms_a.distance(ms_b);
    const auto sdr = geom::shortest_distance_region(ms_a, ms_b);
    ASSERT_FALSE(sdr.empty());
    // Every iso-split merging segment lies inside the SDR, and the split
    // distances add up to d: joining anywhere in the region costs exactly d.
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const auto m = geom::merging_segment(ms_a, ms_b, f * d, (1 - f) * d);
        ASSERT_FALSE(m.empty(1e-9));
        for (const auto& p : m.sample_grid(3)) {
            EXPECT_NEAR(ms_a.distance(p) + ms_b.distance(p), d, 1e-9);
            EXPECT_TRUE(sdr.contains(p.to_real(), 1e-6));
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 4/5 and Eq. (5.2): merging subtrees from partially shared groups.
// The dedicated merge-solver tests cover the machinery; here we assert the
// end-to-end property the paper cares about — after the repair, both
// shared groups are exactly aligned and the extra wire equals the solved
// gamma within the RC model.
// ---------------------------------------------------------------------------

TEST(PaperFig5, WireSneakingRestoresFeasibility) {
    const rc::delay_model model = rc::delay_model::elmore();
    instance inst;
    inst.num_groups = 2;
    inst.die_width = inst.die_height = 5000.0;
    inst.source = {0, 0};
    inst.sinks = {{{0, 0}, 10e-15, 0},     {{60, 0}, 10e-15, 1},
                  {{2205, 0}, 10e-15, 0},  {{1200, 0}, 10e-15, 1},
                  {{3200, 0}, 10e-15, 1}};
    topo::clock_tree t;
    std::vector<node_id> leaves;
    for (int i = 0; i < 5; ++i) leaves.push_back(t.add_leaf(inst, i));
    merge_solver solver(model, skew_spec::zero());
    const node_id left =
        solver.commit(t, leaves[0], leaves[1],
                      *solver.plan(t, leaves[0], leaves[1]));
    const node_id deep =
        solver.commit(t, leaves[3], leaves[4],
                      *solver.plan(t, leaves[3], leaves[4]));
    const node_id right =
        solver.commit(t, leaves[2], deep, *solver.plan(t, leaves[2], deep));

    const auto plan = solver.plan(t, left, right);
    ASSERT_TRUE(plan.has_value());
    ASSERT_FALSE(plan->snakes.empty()) << "expected Eq. 5.2 gamma sneaking";
    const double gamma_total = [&] {
        double g = 0.0;
        for (const auto& s : plan->snakes) g += s.gamma;
        return g;
    }();
    EXPECT_GT(gamma_total, 0.0);
    EXPECT_NEAR(plan->cost, plan->alpha + plan->beta + gamma_total, 1e-9);
    // Both groups aligned exactly after the sneak.
    EXPECT_NEAR(plan->delays.find(0)->length(), 0.0, 1e-21);
    EXPECT_NEAR(plan->delays.find(1)->length(), 0.0, 1e-21);
}

}  // namespace
}  // namespace astclk
