// Independent evaluator tests: hand-computed Elmore ladders, wirelength
// accounting, skew statistics, and agreement with the engine bookkeeping.

#include "core/merge_solver.hpp"
#include "eval/elmore_eval.hpp"

#include <gtest/gtest.h>

namespace astclk::eval {
namespace {

using core::merge_solver;
using core::skew_spec;
using topo::clock_tree;
using topo::instance;
using topo::node_id;

const rc::delay_model kmodel = rc::delay_model::elmore({2.0, 3.0});

TEST(Evaluate, HandComputedTwoSinkLadder) {
    // Source --(len 2)--> root --(len 4)--> sink0 (cap 5)
    //                          --(len 1)--> sink1 (cap 7)
    // r = 2, c = 3.
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{0, 0}, 5.0, 0}, {{10, 0}, 7.0, 0}};
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    const node_id r = t.add_internal(a, b, {}, 4.0, 1.0, 0.0, {});
    t.set_root(r);
    t.set_source_edge(2.0);

    const auto ev = evaluate(t, inst, kmodel);
    // Caps: sink caps 5 and 7; root = 5 + 7 + c*(4+1) = 27.
    EXPECT_DOUBLE_EQ(ev.node_cap[static_cast<std::size_t>(r)], 27.0);
    // Source edge delay: 2*2*(3*2/2 + 27) = 4*30 = 120.
    // Edge to sink0: 2*4*(3*4/2 + 5) = 8*11 = 88  -> 208.
    // Edge to sink1: 2*1*(3*1/2 + 7) = 2*8.5 = 17 -> 137.
    EXPECT_DOUBLE_EQ(ev.sink_delay[0], 208.0);
    EXPECT_DOUBLE_EQ(ev.sink_delay[1], 137.0);
    EXPECT_DOUBLE_EQ(ev.global_skew, 71.0);
    EXPECT_DOUBLE_EQ(ev.total_wirelength, 7.0);
    EXPECT_DOUBLE_EQ(ev.max_intra_group_skew, 71.0);
}

TEST(Evaluate, PathLengthModelIsPureGeometry) {
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{0, 0}, 5.0, 0}, {{10, 0}, 7.0, 0}};
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    const node_id r = t.add_internal(a, b, {}, 4.0, 1.0, 0.0, {});
    t.set_root(r);
    t.set_source_edge(2.0);
    const auto ev = evaluate(t, inst, rc::delay_model::path_length());
    EXPECT_DOUBLE_EQ(ev.sink_delay[0], 6.0);
    EXPECT_DOUBLE_EQ(ev.sink_delay[1], 3.0);
}

TEST(Evaluate, PerGroupStatistics) {
    instance inst;
    inst.num_groups = 2;
    inst.sinks = {{{0, 0}, 1.0, 0}, {{1, 0}, 1.0, 1}, {{2, 0}, 1.0, 0}};
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    const node_id c = t.add_leaf(inst, 2);
    const node_id m = t.add_internal(a, b, {}, 1.0, 2.0, 0.0, {});
    const node_id r = t.add_internal(m, c, {}, 0.0, 3.0, 0.0, {});
    t.set_root(r);
    const auto ev = evaluate(t, inst, rc::delay_model::path_length());
    // delays: sink0 = 1, sink1 = 2, sink2 = 3.
    EXPECT_DOUBLE_EQ(ev.group_skew[0], 2.0);  // sinks 0 and 2
    EXPECT_DOUBLE_EQ(ev.group_skew[1], 0.0);  // singleton group
    EXPECT_DOUBLE_EQ(ev.max_intra_group_skew, 2.0);
    EXPECT_DOUBLE_EQ(ev.global_skew, 2.0);
}

TEST(Evaluate, CapBookkeepingErrorDetection) {
    instance inst;
    inst.num_groups = 1;
    inst.sinks = {{{0, 0}, 5.0, 0}, {{10, 0}, 7.0, 0}};
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    const node_id r = t.add_internal(a, b, {}, 4.0, 1.0,
                                     /*deliberately wrong cap=*/999.0, {});
    t.set_root(r);
    const auto ev = evaluate(t, inst, kmodel);
    EXPECT_GT(ev.max_cap_error, 900.0);
}

TEST(Evaluate, AgreesWithSolverBookkeeping) {
    // Build a small tree through the real solver and check that the delay
    // map of the root matches the evaluator exactly (up to fp dust).
    instance inst;
    inst.num_groups = 2;
    inst.die_width = inst.die_height = 1000.0;
    inst.source = {0.0, 0.0};
    inst.sinks = {{{100, 100}, 10e-15, 0},
                  {{300, 120}, 20e-15, 1},
                  {{180, 400}, 15e-15, 0},
                  {{420, 380}, 12e-15, 1}};
    const rc::delay_model tech = rc::delay_model::elmore();
    clock_tree t;
    std::vector<node_id> roots;
    for (int i = 0; i < 4; ++i)
        roots.push_back(t.add_leaf(inst, i));
    merge_solver solver(tech, skew_spec::zero());
    auto p1 = solver.plan(t, roots[0], roots[1]);
    ASSERT_TRUE(p1.has_value());
    const node_id m1 = solver.commit(t, roots[0], roots[1], *p1);
    auto p2 = solver.plan(t, roots[2], roots[3]);
    ASSERT_TRUE(p2.has_value());
    const node_id m2 = solver.commit(t, roots[2], roots[3], *p2);
    auto p3 = solver.plan(t, m1, m2);
    ASSERT_TRUE(p3.has_value());
    const node_id top = solver.commit(t, m1, m2, *p3);
    t.set_root(top);
    t.set_source_edge(0.0);

    const auto ev = evaluate(t, inst, tech);
    EXPECT_LT(ev.max_cap_error, 1e-25);
    for (int i = 0; i < 4; ++i) {
        const auto g = inst.sinks[static_cast<std::size_t>(i)].group;
        const geom::interval* iv = t.node(top).delays.find(g);
        ASSERT_NE(iv, nullptr);
        EXPECT_GE(ev.sink_delay[static_cast<std::size_t>(i)],
                  iv->lo - 1e-22);
        EXPECT_LE(ev.sink_delay[static_cast<std::size_t>(i)],
                  iv->hi + 1e-22);
    }
}

}  // namespace
}  // namespace astclk::eval
