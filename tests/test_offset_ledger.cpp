// Weighted union-find ledger tests: potential algebra, transitivity across
// chains, component counting, and a randomized consistency property.

#include "core/offset_ledger.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace astclk::core {
namespace {

TEST(OffsetLedger, StartsFullySplit) {
    offset_ledger l(4);
    EXPECT_EQ(l.components(), 4);
    EXPECT_FALSE(l.same(0, 1));
    EXPECT_TRUE(l.same(2, 2));
    EXPECT_DOUBLE_EQ(l.offset(3, 3), 0.0);
}

TEST(OffsetLedger, BindRecordsOffset) {
    offset_ledger l(3);
    l.bind(0, 1, 5.0);  // t0 - t1 = 5
    EXPECT_TRUE(l.same(0, 1));
    EXPECT_EQ(l.components(), 2);
    EXPECT_DOUBLE_EQ(l.offset(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(l.offset(1, 0), -5.0);
}

TEST(OffsetLedger, TransitivityThroughChain) {
    offset_ledger l(4);
    l.bind(0, 1, 1.0);   // t0 - t1 = 1
    l.bind(1, 2, 2.0);   // t1 - t2 = 2
    l.bind(3, 2, -4.0);  // t3 - t2 = -4
    EXPECT_EQ(l.components(), 1);
    EXPECT_DOUBLE_EQ(l.offset(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(l.offset(0, 3), 7.0);
    EXPECT_DOUBLE_EQ(l.offset(3, 1), -6.0);
}

TEST(OffsetLedger, BindingComponentsMergesAll) {
    offset_ledger l(6);
    l.bind(0, 1, 1.0);
    l.bind(2, 3, 1.0);
    l.bind(4, 5, 1.0);
    EXPECT_EQ(l.components(), 3);
    l.bind(1, 3, 10.0);  // t1 - t3 = 10
    EXPECT_TRUE(l.same(0, 2));
    // t0 - t2 = (t0 - t1) + (t1 - t3) + (t3 - t2) = 1 + 10 + (-1) = 10.
    EXPECT_DOUBLE_EQ(l.offset(0, 2), 10.0);
}

TEST(OffsetLedger, RandomizedPotentialConsistency) {
    // Assign every group an arbitrary hidden potential, bind random pairs
    // with the true differences, and check the ledger reproduces every
    // queryable difference exactly.
    std::mt19937 rng(1234);
    const int k = 40;
    std::uniform_real_distribution<double> pot(-1e-9, 1e-9);
    std::vector<double> truth(k);
    for (auto& v : truth) v = pot(rng);

    offset_ledger l(k);
    std::uniform_int_distribution<int> pick(0, k - 1);
    int binds = 0;
    while (l.components() > 1) {
        const int g = pick(rng), h = pick(rng);
        if (g == h || l.same(g, h)) continue;
        l.bind(g, h, truth[static_cast<std::size_t>(g)] -
                         truth[static_cast<std::size_t>(h)]);
        ++binds;
    }
    EXPECT_EQ(binds, k - 1);
    for (int i = 0; i < 200; ++i) {
        const int g = pick(rng), h = pick(rng);
        ASSERT_TRUE(l.same(g, h));
        EXPECT_NEAR(l.offset(g, h),
                    truth[static_cast<std::size_t>(g)] -
                        truth[static_cast<std::size_t>(h)],
                    1e-21);
    }
}

// The first test to be corrected above shows the identity in a comment;
// keep an explicit regression for the three-way merge sign convention.
TEST(OffsetLedger, SignConventionRegression) {
    offset_ledger l(3);
    l.bind(2, 0, 4.0);   // t2 - t0 = 4
    l.bind(0, 1, -2.0);  // t0 - t1 = -2
    EXPECT_DOUBLE_EQ(l.offset(2, 1), 2.0);
    EXPECT_DOUBLE_EQ(l.offset(1, 2), -2.0);
}

}  // namespace
}  // namespace astclk::core
