// Merge-solver tests covering the paper's four merge cases (Ch. V):
//  1. same group          -> exact DME split, zero skew;
//  2. disjoint groups     -> cost exactly the arc distance, never snakes;
//  3. shared single group -> constrained split, root snaking when the
//                            target is out of range;
//  4. multiple shared groups with conflicting offsets -> interior snaking
//                            (Eq. 5.2) or rejection; forced minimax as the
//                            engine's last resort.

#include "core/merge_solver.hpp"
#include "core/nn_index.hpp"
#include "rc/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace astclk::core {
namespace {

using geom::point;
using topo::clock_tree;
using topo::instance;
using topo::node_id;

// A technology with round numbers so hand calculations stay readable.
const rc::delay_model kmodel = rc::delay_model::elmore({0.003, 0.02e-15});

instance make_instance(std::vector<topo::sink> sinks, topo::group_id k) {
    instance inst;
    inst.sinks = std::move(sinks);
    inst.num_groups = k;
    inst.die_width = inst.die_height = 1000.0;
    inst.source = {500.0, 500.0};
    return inst;
}

TEST(MergeSolver, SameGroupZeroSkewBalancedSinks) {
    // Two equal sinks of one group at distance 100: the split lands at the
    // midpoint and the merged delay map is a degenerate interval.
    const auto inst = make_instance(
        {{{0, 0}, 10e-15, 0}, {{100, 0}, 10e-15, 0}}, 1);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    merge_solver solver(kmodel, skew_spec::zero());
    const auto plan = solver.plan(t, a, b);
    ASSERT_TRUE(plan.has_value());
    EXPECT_NEAR(plan->alpha, 50.0, 1e-6);
    EXPECT_NEAR(plan->beta, 50.0, 1e-6);
    EXPECT_NEAR(plan->cost, 100.0, 1e-9);
    EXPECT_EQ(plan->shared_groups, 1);
    ASSERT_NE(plan->delays.find(0), nullptr);
    EXPECT_NEAR(plan->delays.find(0)->length(), 0.0, 1e-22);
    // Delay value matches the hand calculation e(50, C_sink).
    EXPECT_NEAR(plan->delays.find(0)->lo, kmodel.edge_delay(50.0, 10e-15),
                1e-22);
}

TEST(MergeSolver, SameGroupUnequalLoadsShiftSplit) {
    // A heavier load on one side pulls the merge point toward it.
    const auto inst = make_instance(
        {{{0, 0}, 40e-15, 0}, {{100, 0}, 5e-15, 0}}, 1);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    merge_solver solver(kmodel, skew_spec::zero());
    const auto plan = solver.plan(t, a, b);
    ASSERT_TRUE(plan.has_value());
    EXPECT_LT(plan->alpha, 50.0);  // closer to the heavy sink
    EXPECT_NEAR(plan->alpha + plan->beta, 100.0, 1e-9);
    // Exact zero skew: both sides arrive simultaneously.
    EXPECT_NEAR(kmodel.edge_delay(plan->alpha, 40e-15),
                kmodel.edge_delay(plan->beta, 5e-15), 1e-24);
}

TEST(MergeSolver, DisjointGroupsCostIsDistanceAndNeverSnakes) {
    // Different groups: merging region is the SDR; cost must be exactly the
    // Manhattan distance no matter how imbalanced the sides are.
    const auto inst = make_instance(
        {{{0, 0}, 10e-15, 0}, {{70, 30}, 10e-15, 1}}, 2);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    merge_solver solver(kmodel, skew_spec::zero());
    const auto plan = solver.plan(t, a, b);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shared_groups, 0);
    EXPECT_NEAR(plan->cost, 100.0, 1e-9);
    EXPECT_TRUE(plan->snakes.empty());
    // Both groups present in the merged map.
    EXPECT_NE(plan->delays.find(0), nullptr);
    EXPECT_NE(plan->delays.find(1), nullptr);
}

TEST(MergeSolver, RootSnakeWhenTargetOutOfRange) {
    // Same group, but side A is made much slower by a long pre-existing
    // internal edge; balancing over a short span is impossible, so the
    // solver snakes the B edge and the cost exceeds the distance.
    const auto inst = make_instance(
        {{{0, 0}, 10e-15, 0}, {{10, 0}, 10e-15, 0}, {{20, 0}, 10e-15, 0}}, 1);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    const node_id c = t.add_leaf(inst, 2);
    merge_solver solver(kmodel, skew_spec::zero());
    // First make a deep subtree over sinks 0 and 1 via a long detour merge:
    // force it by planning a normal merge, then grossly lengthening both
    // edges (simulating accumulated depth).
    auto p1 = solver.plan(t, a, b);
    ASSERT_TRUE(p1.has_value());
    merge_plan deep = *p1;
    deep.alpha += 5000.0;
    deep.beta += 5000.0;
    deep.new_cap += kmodel.wire_cap(10000.0);
    deep.delays.shift_all(kmodel.edge_delay(5000.0, 1e-13));  // roughly
    const node_id ab = solver.commit(t, a, b, deep);
    const auto p2 = solver.plan(t, ab, c);
    ASSERT_TRUE(p2.has_value());
    const double span = t.node(ab).arc.distance(t.node(c).arc);
    EXPECT_GT(p2->cost, span + 1.0);  // had to snake
    EXPECT_NEAR(p2->alpha, 0.0, 1e-9);
    EXPECT_GT(p2->beta, span);
    // Skew still exact: merged interval degenerate.
    EXPECT_NEAR(p2->delays.find(0)->length(), 0.0, 1e-21);
}

TEST(MergeSolver, BoundedSkewUsesWindowInsteadOfSnaking) {
    // With a generous bound the same imbalance fits inside the window and
    // no snake is needed.
    const auto inst = make_instance(
        {{{0, 0}, 10e-15, 0}, {{10, 0}, 30e-15, 0}}, 1);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    merge_solver tight(kmodel, skew_spec::zero());
    merge_solver loose(kmodel, skew_spec::uniform(1e-9));  // 1000 ps
    const auto pt = tight.plan(t, a, b);
    const auto pl = loose.plan(t, a, b);
    ASSERT_TRUE(pt.has_value() && pl.has_value());
    EXPECT_NEAR(pl->cost, 10.0, 1e-9);
    EXPECT_LE(pl->cost, pt->cost + 1e-9);
    // The loose merge keeps a non-degenerate delay interval within bound.
    EXPECT_LE(pl->delays.find(0)->length(), 1e-9 + 1e-18);
}

// ---------------------------------------------------------------------------
// Case 4 (Fig. 5, Eq. 5.2): two shared groups with conflicting frozen
// offsets, repaired by interior snaking on a clean child edge.
// ---------------------------------------------------------------------------

struct conflict_fixture {
    instance inst;
    clock_tree t;
    node_id left_root = topo::knull_node;   // subtree {G0, G1}, offset ~0
    node_id right_root = topo::knull_node;  // subtree {G0, G1}, offset << 0
};

// Builds two subtrees over groups {G0, G1} whose frozen G0-G1 offsets
// differ.  The left subtree merges two nearby single sinks (the balance
// heuristic aligns them: offset ~0).  On the right, the G1 side is first
// built as a deep two-sink subtree with ~60 ps of internal delay, then a
// G0 sink is attached over a tiny span — balancing is impossible there, so
// the right offset freezes far from zero: exactly the paper's Fig. 5
// situation.
conflict_fixture make_conflict(merge_solver& solver) {
    conflict_fixture f;
    f.inst = make_instance({{{0, 0}, 10e-15, 0},       // left G0
                            {{60, 0}, 10e-15, 1},      // left G1
                            {{2205, 0}, 10e-15, 0},    // right G0
                            {{1200, 0}, 10e-15, 1},    // right G1 pair...
                            {{3200, 0}, 10e-15, 1}},
                           2);
    const node_id a = f.t.add_leaf(f.inst, 0);
    const node_id b = f.t.add_leaf(f.inst, 1);
    const node_id c = f.t.add_leaf(f.inst, 2);
    const node_id d = f.t.add_leaf(f.inst, 3);
    const node_id e = f.t.add_leaf(f.inst, 4);
    auto p1 = solver.plan(f.t, a, b);
    EXPECT_TRUE(p1.has_value());
    f.left_root = solver.commit(f.t, a, b, *p1);
    auto p2 = solver.plan(f.t, d, e);  // deep G1 pair
    EXPECT_TRUE(p2.has_value());
    const node_id g1 = solver.commit(f.t, d, e, *p2);
    auto p3 = solver.plan(f.t, c, g1);  // G0 sink near the G1 arc
    EXPECT_TRUE(p3.has_value());
    f.right_root = solver.commit(f.t, c, g1, *p3);
    return f;
}

TEST(MergeSolver, ConflictingOffsetsRepairedByInteriorSnake) {
    merge_solver solver_for_fixture(kmodel, skew_spec::zero());
    auto f = make_conflict(solver_for_fixture);
    const auto& dl = f.t.node(f.left_root).delays;
    const auto& dr = f.t.node(f.right_root).delays;
    const double off_l = dl.find(0)->lo - dl.find(1)->lo;
    const double off_r = dr.find(0)->lo - dr.find(1)->lo;
    ASSERT_GT(std::fabs(off_l - off_r), 1e-15)
        << "fixture failed to create an offset conflict";

    merge_solver solver(kmodel, skew_spec::zero());
    const auto plan = solver.plan(f.t, f.left_root, f.right_root);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shared_groups, 2);
    ASSERT_FALSE(plan->snakes.empty());
    EXPECT_DOUBLE_EQ(plan->violation, 0.0);
    // After the repair both groups merge with degenerate intervals.
    EXPECT_NEAR(plan->delays.find(0)->length(), 0.0, 1e-21);
    EXPECT_NEAR(plan->delays.find(1)->length(), 0.0, 1e-21);
    // Committing applies gamma to a real child edge and keeps caps honest.
    const double cap_before = f.t.node(f.right_root).subtree_cap +
                              f.t.node(f.left_root).subtree_cap;
    const node_id top = solver.commit(f.t, f.left_root, f.right_root, *plan);
    EXPECT_GT(f.t.node(top).subtree_cap,
              cap_before + kmodel.wire_cap(plan->alpha + plan->beta) - 1e-30);
}

TEST(MergeSolver, ForcedPlanReportsViolationWhenIrreparable) {
    // Make the interior repair illegal by uniting the groups inside each
    // child subtree (every child of the roots then straddles), so the
    // forced plan must fall back to minimax violation.
    merge_solver solver_for_fixture(kmodel, skew_spec::zero());
    auto f = make_conflict(solver_for_fixture);
    // Tamper: pretend each direct child of both roots contains both groups,
    // which voids the cleanliness condition.
    for (node_id root : {f.left_root, f.right_root}) {
        for (node_id ch : {f.t.node(root).left, f.t.node(root).right}) {
            auto& d = f.t.node(ch).delays;
            d.set(0, geom::interval::at(d.entries().front().second.lo));
            d.set(1, geom::interval::at(d.entries().front().second.lo));
        }
    }
    merge_solver solver(kmodel, skew_spec::zero());
    EXPECT_FALSE(solver.plan(f.t, f.left_root, f.right_root).has_value());
    const merge_plan forced = solver.plan_forced(f.t, f.left_root, f.right_root);
    EXPECT_GT(forced.violation, 0.0);
}

// ---------------------------------------------------------------------------
// Ledger modes.
// ---------------------------------------------------------------------------

TEST(MergeSolver, ExactLedgerPreventsTheConflict) {
    // Same geometry as the conflict fixture, but the ledger constrains the
    // right-hand co-residence merge to the offset committed on the left, so
    // the final merge needs no interior snakes and no repair.
    offset_ledger ledger(2);
    merge_solver solver(kmodel, skew_spec::zero(), &ledger,
                        consistency_mode::exact);
    auto f = make_conflict(solver);
    EXPECT_EQ(ledger.components(), 1);  // bound at first co-residence
    const auto& dl = f.t.node(f.left_root).delays;
    const auto& dr = f.t.node(f.right_root).delays;
    // The constrained right merge reproduces the committed offset exactly.
    EXPECT_NEAR(dl.find(0)->lo - dl.find(1)->lo,
                dr.find(0)->lo - dr.find(1)->lo, 1e-21);
    auto p = solver.plan(f.t, f.left_root, f.right_root);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->snakes.empty());
    EXPECT_DOUBLE_EQ(p->violation, 0.0);
}

TEST(PlanCache, GenerationStampsGateEveryLookup) {
    // The plan cache is the engine's cross-step memo: entries are keyed by
    // the ordered pair key and stamped with both roots' selection
    // generations; any stamp mismatch is a miss (the engine then re-solves
    // inline), so a speculatively solved plan can never outlive the state
    // it was solved against.
    plan_cache cache;
    merge_plan p;
    p.alpha = 3.0;
    p.beta = 7.0;
    const std::uint64_t key = ordered_pair_key(4, 9);
    cache.store(key, /*gen_a=*/2, /*gen_b=*/5, /*speculative=*/true, p);
    EXPECT_EQ(cache.size(), 1u);

    plan_cache::entry* e = cache.find(key, 2, 5);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->speculative);
    EXPECT_FALSE(e->consumed);
    ASSERT_TRUE(e->plan.has_value());
    EXPECT_DOUBLE_EQ(e->plan->alpha, 3.0);
    e->consumed = true;

    // Any generation bump — either root — invalidates the entry.
    EXPECT_EQ(cache.find(key, 3, 5), nullptr);
    EXPECT_EQ(cache.find(key, 2, 6), nullptr);
    EXPECT_EQ(cache.find(key, 3, 6), nullptr);
    // The stale entry is only shadowed, not erased: the stamps must come
    // back (they never do in the engine — generations only grow) for it
    // to resurface.
    ASSERT_NE(cache.find(key, 2, 5), nullptr);
    EXPECT_TRUE(cache.find(key, 2, 5)->consumed);

    // Storing again overwrites stamp and payload.
    cache.store(key, 3, 6, /*speculative=*/false, std::nullopt);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(key, 2, 5), nullptr);
    plan_cache::entry* e2 = cache.find(key, 3, 6);
    ASSERT_NE(e2, nullptr);
    EXPECT_FALSE(e2->plan.has_value());  // a cached rejection
    EXPECT_FALSE(e2->consumed);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(key, 3, 6), nullptr);
}

TEST(PlanCache, OrderedKeysKeepOrientationsDistinct) {
    // plan(a, b) assigns alpha to a; plan(b, a) is the mirror image.  The
    // cache must never serve one for the other, which is why it is keyed
    // by ordered_pair_key instead of the symmetric pair_key.
    EXPECT_NE(ordered_pair_key(4, 9), ordered_pair_key(9, 4));
    EXPECT_EQ(pair_key(4, 9), pair_key(9, 4));

    plan_cache cache;
    merge_plan ab;
    ab.alpha = 1.0;
    ab.beta = 9.0;
    cache.store(ordered_pair_key(4, 9), 0, 0, false, ab);
    EXPECT_EQ(cache.find(ordered_pair_key(9, 4), 0, 0), nullptr);
    merge_plan ba;
    ba.alpha = 9.0;
    ba.beta = 1.0;
    cache.store(ordered_pair_key(9, 4), 0, 0, false, ba);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_DOUBLE_EQ(cache.find(ordered_pair_key(4, 9), 0, 0)->plan->alpha,
                     1.0);
    EXPECT_DOUBLE_EQ(cache.find(ordered_pair_key(9, 4), 0, 0)->plan->alpha,
                     9.0);
}

TEST(MergeSolver, PathLengthModelMatchesFigureArithmetic) {
    // Under the prior work's linear model the merge point of two sinks at
    // distance 10 with zero skew is simply the midpoint, independent of
    // capacitance.
    const auto inst = make_instance(
        {{{0, 0}, 1e-15, 0}, {{10, 0}, 99e-15, 0}}, 1);
    clock_tree t;
    const node_id a = t.add_leaf(inst, 0);
    const node_id b = t.add_leaf(inst, 1);
    merge_solver solver(rc::delay_model::path_length(), skew_spec::zero());
    const auto plan = solver.plan(t, a, b);
    ASSERT_TRUE(plan.has_value());
    EXPECT_NEAR(plan->alpha, 5.0, 1e-9);
    EXPECT_NEAR(plan->beta, 5.0, 1e-9);
}

}  // namespace
}  // namespace astclk::core
