// Sharded die-region reduction tests (DESIGN.md §4): partition the sink
// set into spatial shards, sub-reduce every shard independently, stitch
// the shard roots with the phase-2 associative machinery.  Covered here:
//
//  * the partitioner: every sink in exactly one shard, no empty shards,
//    deterministic emission, population clamping, the auto heuristic;
//  * determinism: a fixed shard count yields bit-identical trees across
//    worker-thread counts {1, 2, hw} and both NN backends (direct calls
//    and service submissions alike);
//  * quality: sharded wirelength within a stated bound (25%) of the
//    monolithic reduce on r1–r5, and the skew spec still met after the
//    stitch (independent eval pass, windowed-mode violation contract);
//  * accounting: per-shard engine_stats sum exactly — a complete run
//    reports exactly n-1 merges and the shard count, and a cancellation
//    unwinding mid-shard counts every shard's work exactly once (merges
//    bounded by the observed checkpoint count — double counting would
//    break the bound);
//  * cancellation: a cancel flag or deadline firing mid-shard stops the
//    route at the next engine checkpoint (counted through cancel_probe),
//    releases the scratch lease, and leaves the context reusable.

#include "core/route_service.hpp"
#include "core/shard.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace astclk::core {
namespace {

topo::instance paper_instance(const char* name, int groups) {
    gen::instance_spec spec = gen::paper_spec(name);
    auto inst = gen::generate(spec);
    if (groups > 1)
        gen::apply_intermingled_groups(inst, groups, spec.seed + 1);
    return inst;
}

void expect_same_tree(const route_result& got, const route_result& ref,
                      const std::string& what) {
    ASSERT_TRUE(got.ok()) << what << ": " << got.status_message;
    ASSERT_TRUE(ref.ok()) << what << ": " << ref.status_message;
    EXPECT_EQ(got.wirelength, ref.wirelength) << what;
    EXPECT_EQ(got.stats.merges, ref.stats.merges) << what;
    EXPECT_EQ(got.stats.snake_wire, ref.stats.snake_wire) << what;
    EXPECT_EQ(got.stats.rejected_pairs, ref.stats.rejected_pairs) << what;
    EXPECT_EQ(got.stats.forced_merges, ref.stats.forced_merges) << what;
    EXPECT_EQ(got.stats.worst_violation, ref.stats.worst_violation) << what;
    EXPECT_EQ(got.stats.shards, ref.stats.shards) << what;
    ASSERT_EQ(got.tree.size(), ref.tree.size()) << what;
    for (std::size_t i = 0; i < got.tree.size(); ++i) {
        const auto& gn = got.tree.node(static_cast<topo::node_id>(i));
        const auto& rn = ref.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(gn.left, rn.left) << what << " node " << i;
        ASSERT_EQ(gn.right, rn.right) << what << " node " << i;
        ASSERT_EQ(gn.arc, rn.arc) << what << " node " << i;
        ASSERT_EQ(gn.edge_left, rn.edge_left) << what << " node " << i;
        ASSERT_EQ(gn.edge_right, rn.edge_right) << what << " node " << i;
    }
}

routing_request sharded_request(const topo::instance& inst, strategy_id s,
                                int shards, nn_backend be) {
    routing_request r;
    r.instance = &inst;
    r.strategy = s;
    if (s == strategy_id::ast_dme) r.mode = ast_mode::windowed;
    if (s == strategy_id::ext_bst) r.spec = skew_spec::uniform(10e-12);
    r.options.engine.backend = be;
    r.options.engine.shards = shards;
    return r;
}

// ------------------------------------------------------------ partitioner

TEST(ShardPartition, CoversEverySinkExactlyOnce) {
    const auto inst = paper_instance("r3", 8);
    const auto n = static_cast<std::int32_t>(inst.sinks.size());
    for (const int k : {1, 2, 4, 7, 16, 61}) {
        const shard_partition parts = partition_sinks(inst, k);
        ASSERT_EQ(parts.size(), static_cast<std::size_t>(k));
        std::vector<int> seen(static_cast<std::size_t>(n), 0);
        for (const auto& shard : parts) {
            ASSERT_FALSE(shard.empty());
            EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
            for (const std::int32_t s : shard) {
                ASSERT_GE(s, 0);
                ASSERT_LT(s, n);
                ++seen[static_cast<std::size_t>(s)];
            }
        }
        for (const int c : seen) EXPECT_EQ(c, 1) << "k=" << k;
        // Deterministic: a second partition is identical.
        EXPECT_EQ(parts, partition_sinks(inst, k));
    }
    // More shards than sinks clamps to one sink per shard.
    gen::instance_spec tiny = gen::paper_spec("r1");
    tiny.num_sinks = 5;
    const auto small = gen::generate(tiny);
    EXPECT_EQ(partition_sinks(small, 64).size(), 5u);
    // A sink-less instance partitions into zero shards, never an empty one.
    tiny.num_sinks = 0;
    EXPECT_TRUE(partition_sinks(gen::generate(tiny), 8).empty());
}

TEST(ShardPartition, AutoHeuristicTracksPopulationAndConcurrency) {
    // Small populations stay monolithic regardless of pool width.
    EXPECT_EQ(auto_shard_count(267, 1), 1);
    EXPECT_EQ(auto_shard_count(1024, 16), 1);
    // Past the engagement threshold the count tracks ~512 sinks/shard.
    const int k50 = auto_shard_count(50000, 1);
    EXPECT_GE(k50, 64);
    EXPECT_LE(k50, 128);
    // A wide executor raises the count (up to the per-shard floor) so the
    // pool is saturated even when the size heuristic says fewer shards.
    EXPECT_GT(auto_shard_count(4096, 16), auto_shard_count(4096, 1));
    // ...but never below ~192 sinks per shard.
    EXPECT_LE(auto_shard_count(2000, 64), 2000 / 192);

    // effective_shard_count: the default knob is monolithic, a ledger-
    // backed solver is always monolithic, a forced count is clamped.
    engine_options opt;  // shards = 1
    const merge_solver free_solver(rc::delay_model::elmore(),
                                   skew_spec::zero());
    EXPECT_EQ(effective_shard_count(opt, free_solver, 50000), 1);
    opt.shards = 8;
    EXPECT_EQ(effective_shard_count(opt, free_solver, 50000), 8);
    EXPECT_EQ(effective_shard_count(opt, free_solver, 3), 3);
    offset_ledger ledger(4);
    const merge_solver ledgered(rc::delay_model::elmore(), skew_spec::zero(),
                                &ledger, consistency_mode::exact);
    EXPECT_EQ(effective_shard_count(opt, ledgered, 50000), 1);
}

// ------------------------------------------------------------ determinism

TEST(ShardedEngine, FixedShardCountBitIdenticalAcrossThreadsAndBackends) {
    const auto inst = paper_instance("r3", 8);
    const std::vector<int> counts{
        1, 2,
        static_cast<int>(std::max(2u, std::thread::hardware_concurrency()))};
    for (const strategy_id s : {strategy_id::zst_dme, strategy_id::ast_dme}) {
        for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
            const auto ref = route(sharded_request(inst, s, 4, be));
            ASSERT_TRUE(ref.ok()) << ref.status_message;
            EXPECT_EQ(ref.stats.shards, 4);
            for (const int threads : counts) {
                service_options sopt;
                sopt.threads = threads;
                route_service svc(sopt);
                const auto got =
                    svc.route_batch({sharded_request(inst, s, 4, be)});
                expect_same_tree(
                    got[0], ref,
                    strategy_registry::global().name_of(s) + " threads=" +
                        std::to_string(threads) +
                        (be == nn_backend::grid ? " grid" : " linear"));
            }
        }
    }
    // Both backends agree with each other too (one grid/linear pair).
    expect_same_tree(
        route(sharded_request(inst, strategy_id::ast_dme, 4,
                              nn_backend::linear)),
        route(sharded_request(inst, strategy_id::ast_dme, 4,
                              nn_backend::grid)),
        "grid vs linear");
}

TEST(ShardedEngine, MultiMergeOrderShardsDeterministically) {
    const auto inst = paper_instance("r2", 6);
    auto req = sharded_request(inst, strategy_id::zst_dme, 4,
                               nn_backend::grid);
    req.options.engine.order = merge_order::multi_merge;
    const auto ref = route(req);
    ASSERT_TRUE(ref.ok()) << ref.status_message;
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    expect_same_tree(svc.route_batch({req})[0], ref, "multi-merge sharded");
}

// ----------------------------------------------------------- quality (b/c)

TEST(ShardedEngine, WirelengthWithinBoundOfMonolithicOnPaperSuite) {
    // Stated bound: spatial sharding costs at most 25% wirelength against
    // the monolithic greedy reduce on the paper suite (measured: within
    // -7%..+18% — bisection keeps merges local, and the stitch pays only
    // at the k shard seams; sharding may even *beat* the greedy
    // monolithic order).
    for (const char* name : {"r1", "r2", "r3", "r4", "r5"}) {
        const auto inst = paper_instance(name, 1);
        for (const int k : {4, 8}) {
            const auto mono = route(sharded_request(
                inst, strategy_id::zst_dme, 1, nn_backend::grid));
            const auto shard = route(sharded_request(
                inst, strategy_id::zst_dme, k, nn_backend::grid));
            ASSERT_TRUE(mono.ok());
            ASSERT_TRUE(shard.ok());
            EXPECT_GT(shard.wirelength, 0.0);
            EXPECT_LE(shard.wirelength, 1.25 * mono.wirelength)
                << name << " k=" << k;
        }
    }
}

TEST(ShardedEngine, SkewSpecStillMetPostStitch) {
    // The stitch must not destroy the skew budget: the independent
    // evaluator re-derives every intra-group skew on the stitched tree.
    // Windowed-mode contract as in route_cli: residual violations of
    // forced endgame merges are reported in stats.worst_violation and
    // tolerated exactly up to that amount.
    for (const char* name : {"r2", "r3"}) {
        const auto inst = paper_instance(name, 6);
        const auto res = route(sharded_request(inst, strategy_id::ast_dme, 8,
                                               nn_backend::grid));
        ASSERT_TRUE(res.ok()) << res.status_message;
        eval::verify_options vopt;
        vopt.skew_tolerance = res.stats.worst_violation + 1e-15;
        const auto vr =
            eval::verify_route(res, inst, rc::delay_model::elmore(),
                               skew_spec::zero(), vopt);
        EXPECT_TRUE(vr.ok) << name << ": " << vr.message;
    }
    // Zero-skew single-group routes stitch without any violation budget.
    const auto inst = paper_instance("r3", 1);
    const auto res = route(
        sharded_request(inst, strategy_id::zst_dme, 8, nn_backend::grid));
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.stats.worst_violation, 0.0);
    const auto vr = eval::verify_route(res, inst, rc::delay_model::elmore(),
                                       skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
}

// ------------------------------------------------------------- accounting

TEST(ShardedEngine, StatsSumExactlyAcrossShardsAndStitch) {
    const auto inst = paper_instance("r3", 6);
    const auto n = static_cast<int>(inst.sinks.size());
    for (const int k : {2, 8}) {
        const auto res = route(
            sharded_request(inst, strategy_id::ast_dme, k, nn_backend::grid));
        ASSERT_TRUE(res.ok()) << res.status_message;
        // k sub-reductions of n_i roots plus one stitch of k roots merge
        // sum(n_i - 1) + (k - 1) = n - 1 times: the per-shard counters
        // summed exactly once, no merge lost or double-counted.
        EXPECT_EQ(res.stats.merges, n - 1) << "k=" << k;
        EXPECT_EQ(res.stats.shards, k);
        EXPECT_EQ(res.stats.disjoint_merges + res.stats.shared_merges,
                  res.stats.merges);
        // The tree really contains every sink exactly once.
        EXPECT_EQ(res.tree.check_structure(inst.sinks.size()), "");
    }
    // Monolithic reference reports the same total and no shard count.
    const auto mono = route(
        sharded_request(inst, strategy_id::ast_dme, 1, nn_backend::grid));
    EXPECT_EQ(mono.stats.merges, n - 1);
    EXPECT_EQ(mono.stats.shards, 0);
}

// ------------------------------------------------- cancellation (d) + (2)

TEST(ShardedEngine, MidShardCancelStopsAtCheckpointWithExactAccounting) {
    const auto inst = paper_instance("r1", 1);  // 267 sinks
    routing_request base =
        sharded_request(inst, strategy_id::zst_dme, 4, nn_backend::grid);

    // Checkpoint census of an unperturbed sharded run: poll 1 is the
    // dispatch pre-check, then every shard's selection steps and the
    // stitch poll once each (the shard loop runs inline — no executor —
    // so the probe counts every checkpoint).
    cancel_probe counting;
    routing_context warm;
    {
        routing_request r = base;
        r.options.engine.cancel.set_probe(&counting);
        ASSERT_TRUE(route(r, warm).ok());
    }
    ASSERT_GT(counting.polls, 40u);
    // Half-way lands inside a middle shard: well past shard 1 (~1/4 of
    // the polls), well before the stitch.
    const std::uint64_t trip = counting.polls / 2;

    std::atomic<bool> flag{false};
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k == trip) flag.store(true, std::memory_order_relaxed);
    };
    routing_context ctx;
    routing_request r = base;
    r.options.engine.cancel =
        cancel_token(&flag, cancel_token::no_deadline());
    r.options.engine.cancel.set_probe(&probe);
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::cancelled);
    EXPECT_EQ(res.tree.size(), 0u);
    // Prompt: the tripping poll observed the flag — no checkpoint ran
    // after it.
    EXPECT_EQ(probe.polls, trip);
    // Exact accounting across the unwind: every poll from 2..trip-1
    // preceded at most one merge, and each shard's stats block was summed
    // exactly once — a double count would break this bound.
    EXPECT_GT(res.stats.merges, 0);
    EXPECT_LE(res.stats.merges, static_cast<int>(trip) - 2);
    // Mid-shard, not endgame: completed shards' work is included (shard 1
    // alone merges ~1/4 of the sinks).
    EXPECT_GT(res.stats.merges,
              static_cast<int>(inst.sinks.size()) / 8);
    EXPECT_EQ(res.stats.shards, 4);  // the interrupt carries the sums
    EXPECT_EQ(ctx.pooled_scratch(), 1u);  // shard lease released by unwind

    // The context is immediately reusable and bit-identical afterwards.
    expect_same_tree(route(base, ctx), route(base), "post-cancel reuse");
}

TEST(ShardedEngine, MidShardDeadlineCancelsPromptly) {
    const auto inst = paper_instance("r1", 1);
    routing_request r =
        sharded_request(inst, strategy_id::zst_dme, 4, nn_backend::grid);
    // Deadline 40 ms out; checkpoint 10 (inside shard 1) stalls past it —
    // the very same poll must observe the expiry.
    cancel_probe probe;
    probe.on_poll = [](std::uint64_t k) {
        if (k == 10)
            std::this_thread::sleep_for(std::chrono::milliseconds(120));
    };
    r.options.engine.cancel = cancel_token(
        nullptr,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(40));
    r.options.engine.cancel.set_probe(&probe);
    routing_context ctx;
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::deadline_exceeded);
    EXPECT_EQ(probe.polls, 10u);
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_EQ(ctx.pooled_scratch(), 1u);
}

TEST(ShardedEngine, FannedShardCancelUnwindsCleanlyThroughThePool) {
    // With a real pool the shard sub-reductions run inside parallel_for;
    // a deadline firing mid-run must propagate the route_interrupt out of
    // the fan-out (one shard's interrupt wins, the siblings observe the
    // same token and stop too), report deadline_exceeded, and leave the
    // service context immediately reusable.
    const auto inst = paper_instance("r4", 1);  // 1903 sinks, several ms
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    auto req = sharded_request(inst, strategy_id::zst_dme, 8,
                               nn_backend::grid);
    submit_options tight;
    tight.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(500);
    const auto res = svc.submit(req, tight).wait();
    EXPECT_EQ(res.status, route_status::deadline_exceeded);
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_LT(res.stats.merges, static_cast<int>(inst.sinks.size()) - 1);
    // The pool and scratches survived the unwind: the same request with
    // room to finish is bit-identical to a direct call.
    const auto again = svc.submit(req).wait();
    expect_same_tree(again, route(req), "post-deadline fanned reuse");
}

TEST(ShardedEngine, ServiceDeadlineBoundsTheWholeShardSubBatch) {
    // A sharded submission is one request to the service: an expired
    // deadline stops it before any shard work, a live one routes all
    // shards under the handle's token.
    const auto inst = paper_instance("r2", 1);
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    auto req = sharded_request(inst, strategy_id::zst_dme, 4,
                               nn_backend::grid);
    submit_options expired;
    expired.deadline = std::chrono::steady_clock::now();
    const auto dead = svc.submit(req, expired).wait();
    EXPECT_EQ(dead.status, route_status::deadline_exceeded);
    EXPECT_EQ(dead.stats.merges, 0);

    submit_options roomy;
    roomy.deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    roomy.priority = 3;
    const auto ok = svc.submit(req, roomy).wait();
    ASSERT_TRUE(ok.ok()) << ok.status_message;
    expect_same_tree(ok, route(req), "sharded submit with deadline");
}

// --------------------------------------------------------------- grafting

TEST(ShardedEngine, AbsorbRemapsNodeReferences) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = 6;
    const auto inst = gen::generate(spec);
    topo::clock_tree a;
    const auto a0 = a.add_leaf(inst, 0);
    const auto a1 = a.add_leaf(inst, 1);
    const auto ar = a.add_internal(a0, a1, a.node(a0).arc.hull(a.node(a1).arc),
                                   1.0, 2.0, 0.0, a.node(a0).delays);
    topo::clock_tree b;
    const auto b0 = b.add_leaf(inst, 2);
    const auto b1 = b.add_leaf(inst, 3);
    const auto br = b.add_internal(b0, b1, b.node(b0).arc.hull(b.node(b1).arc),
                                   3.0, 4.0, 0.0, b.node(b0).delays);
    topo::clock_tree t;
    const auto off_a = t.absorb(a);
    const auto off_b = t.absorb(b);
    EXPECT_EQ(off_a, 0);
    EXPECT_EQ(off_b, static_cast<topo::node_id>(a.size()));
    ASSERT_EQ(t.size(), a.size() + b.size());
    const auto& ga = t.node(off_a + ar);
    EXPECT_EQ(ga.left, off_a + a0);
    EXPECT_EQ(ga.right, off_a + a1);
    EXPECT_EQ(t.node(off_a + a0).parent, off_a + ar);
    const auto& gb = t.node(off_b + br);
    EXPECT_EQ(gb.left, off_b + b0);
    EXPECT_EQ(gb.right, off_b + b1);
    EXPECT_EQ(t.node(off_b + b1).parent, off_b + br);
    EXPECT_EQ(gb.edge_left, 3.0);
    EXPECT_EQ(gb.edge_right, 4.0);
    EXPECT_EQ(t.node(off_b + b0).sink_index, 2);
}

}  // namespace
}  // namespace astclk::core
