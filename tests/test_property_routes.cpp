// Parameterized end-to-end property sweep: every router, on every
// (size, groups, grouping, seed) combination, must produce a structurally
// sound tree whose independently evaluated skews satisfy the constraints
// and whose bookkeeping matches the evaluator.

#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace astclk {
namespace {

using namespace core;

enum class algo { zst, ext_bst, ast_auto, ast_exact, ast_windowed, separate };

const char* algo_name(algo a) {
    switch (a) {
        case algo::zst: return "zst";
        case algo::ext_bst: return "ext_bst";
        case algo::ast_auto: return "ast_auto";
        case algo::ast_exact: return "ast_exact";
        case algo::ast_windowed: return "ast_windowed";
        case algo::separate: return "separate";
    }
    return "?";
}

using route_param = std::tuple<int /*n*/, int /*k*/, bool /*intermingled*/,
                               int /*seed*/, algo>;

class RouteProperty : public ::testing::TestWithParam<route_param> {};

TEST_P(RouteProperty, ConstraintsAndBookkeepingHold) {
    const auto [n, k, intermingled, seed, a] = GetParam();
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = static_cast<std::uint64_t>(seed) * 131 + 7;
    auto inst = gen::generate(spec);
    if (k > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, k, spec.seed + 1);
        else
            gen::apply_clustered_groups(inst, k);
    }
    ASSERT_EQ(inst.validate(), "");

    const router_options opt;
    route_result r;
    skew_spec constraint = skew_spec::zero();
    switch (a) {
        case algo::zst:
            r = route_zst_dme(inst, opt);
            break;
        case algo::ext_bst:
            r = route_ext_bst(inst, 10e-12, opt);
            // Global bound: emulate by a uniform per-group bound for the
            // verification (every group's spread is within the global one).
            constraint = skew_spec::uniform(10e-12);
            break;
        case algo::ast_auto:
            r = route_ast_dme(inst, skew_spec::zero(), opt);
            break;
        case algo::ast_exact:
            r = route_ast_dme(inst, skew_spec::zero(), opt,
                              ast_mode::exact_ledger);
            break;
        case algo::ast_windowed:
            r = route_ast_dme(inst, skew_spec::zero(), opt,
                              ast_mode::windowed);
            // The windowed mode may leave bounded residual violations from
            // forced endgame merges; verify against that envelope instead
            // of failing the property (the automatic mode is the one that
            // guarantees zero).
            constraint = skew_spec::uniform(r.stats.worst_violation);
            break;
        case algo::separate:
            r = route_separate_stitch(inst, opt);
            break;
    }

    // Structure and wirelength accounting.
    EXPECT_EQ(r.tree.check_structure(inst.size()), "") << algo_name(a);
    EXPECT_GT(r.wirelength, 0.0);
    const auto ev = eval::evaluate(r.tree, inst, opt.model);
    EXPECT_NEAR(ev.total_wirelength, r.wirelength,
                1e-6 * std::max(1.0, r.wirelength));

    // Constraint satisfaction + bookkeeping-vs-evaluator agreement.
    const auto vr = eval::verify_route(r, inst, opt.model, constraint);
    EXPECT_TRUE(vr.ok) << algo_name(a) << ": " << vr.message;

    // Embedding: physical never beyond electrical.
    EXPECT_LT(r.embed.worst_excess, 1e-5);

    // Snake wire accounting is consistent: electrical >= physical total.
    EXPECT_GE(r.wirelength + 1e-6,
              r.embed.total_physical + r.embed.source_edge);
}

std::string route_param_name(const ::testing::TestParamInfo<route_param>& info) {
    const int n = std::get<0>(info.param);
    const int k = std::get<1>(info.param);
    const bool inter = std::get<2>(info.param);
    const int seed = std::get<3>(info.param);
    const algo a = std::get<4>(info.param);
    return std::string(algo_name(a)) + "_n" + std::to_string(n) + "_k" +
           std::to_string(k) + (inter ? "_mix" : "_box") + "_s" +
           std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouteProperty,
    ::testing::Combine(::testing::Values(24, 61, 120),
                       ::testing::Values(1, 3, 6),
                       ::testing::Bool(),
                       ::testing::Values(1, 2),
                       ::testing::Values(algo::zst, algo::ext_bst,
                                         algo::ast_auto, algo::ast_exact,
                                         algo::ast_windowed,
                                         algo::separate)),
    route_param_name);

}  // namespace
}  // namespace astclk
