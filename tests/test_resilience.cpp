// Resilience-layer tests (DESIGN.md §10): deterministic fault injection
// through seeded/scheduled fault plans, retry with bounded backoff,
// the graceful-degradation ladder and partial-result salvage of sharded
// reduces.  The acceptance bar: every cell of the fault matrix (kind ×
// site × retry × degrade) terminates with a valid tree (ok or verified
// degraded) or a typed fault status — never a crash, hang or leaked
// scratch lease — and identical fault seeds reproduce bit-identical
// outcomes.

#include "core/route_service.hpp"
#include "core/shard.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace astclk::core {
namespace {

topo::instance small_instance(int n, int k, std::uint64_t seed,
                              bool intermingled) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (k > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, k, seed + 1);
        else
            gen::apply_clustered_groups(inst, k);
    }
    return inst;
}

/// Bit-exact tree + stats comparison (no status expectations — callers
/// compare degraded results too).
void expect_same_tree(const route_result& a, const route_result& b,
                      const std::string& what) {
    EXPECT_EQ(a.wirelength, b.wirelength) << what;
    EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
    EXPECT_EQ(a.stats.snake_wire, b.stats.snake_wire) << what;
    EXPECT_EQ(a.stats.worst_violation, b.stats.worst_violation) << what;
    ASSERT_EQ(a.tree.size(), b.tree.size()) << what;
    for (std::size_t i = 0; i < a.tree.size(); ++i) {
        const auto& an = a.tree.node(static_cast<topo::node_id>(i));
        const auto& bn = b.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(an.left, bn.left) << what << " node " << i;
        ASSERT_EQ(an.right, bn.right) << what << " node " << i;
        ASSERT_EQ(an.arc, bn.arc) << what << " node " << i;
        ASSERT_EQ(an.edge_left, bn.edge_left) << what << " node " << i;
        ASSERT_EQ(an.edge_right, bn.edge_right) << what << " node " << i;
    }
}

void expect_verified(const route_result& res, const topo::instance& inst,
                     const skew_spec& spec, const std::string& what) {
    eval::verify_options vopt;
    vopt.skew_tolerance += res.stats.worst_violation;
    const auto vr = eval::verify_route(res, inst, rc::delay_model::elmore(),
                                       spec, vopt);
    EXPECT_TRUE(vr.ok) << what << ": " << vr.message;
}

routing_request zst_request(const topo::instance& inst) {
    routing_request req;
    req.instance = &inst;
    req.strategy = strategy_id::zst_dme;
    return req;
}

// ---------------------------------------------------------- plan basics

TEST(FaultPlan, SeededIsDeterministic) {
    const fault_plan p1 = fault_plan::seeded(42, 4, 32);
    const fault_plan p2 = fault_plan::seeded(42, 4, 32);
    const auto e1 = p1.events();
    const auto e2 = p2.events();
    ASSERT_EQ(e1.size(), 4u);
    ASSERT_EQ(e1.size(), e2.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].site, e2[i].site) << i;
        EXPECT_EQ(e1[i].index, e2[i].index) << i;
        EXPECT_EQ(e1[i].kind, e2[i].kind) << i;
        EXPECT_NE(e1[i].kind, fault_kind::none) << i;
        EXPECT_GE(e1[i].index, 1u) << i;
        EXPECT_LE(e1[i].index, 32u) << i;
    }
    // A different seed must not reproduce the same schedule.
    const auto e3 = fault_plan::seeded(43, 4, 32).events();
    bool differs = false;
    for (std::size_t i = 0; i < e1.size(); ++i)
        differs = differs || e3[i].site != e1[i].site ||
                  e3[i].index != e1[i].index || e3[i].kind != e1[i].kind;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, EventsConsumeOnce) {
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::selection, 3, fault_kind::transient_solver);
    EXPECT_TRUE(plan.armed());
    EXPECT_EQ(plan.fire(fault_site::selection, 2), fault_kind::none);
    EXPECT_EQ(plan.fire(fault_site::round, 3), fault_kind::none);
    EXPECT_EQ(plan.fire(fault_site::selection, 3),
              fault_kind::transient_solver);
    // One-shot: the retried run sails past the same checkpoint.
    EXPECT_EQ(plan.fire(fault_site::selection, 3), fault_kind::none);
    EXPECT_FALSE(plan.armed());
    EXPECT_EQ(plan.fired(), 1);
}

TEST(FaultPlan, DispatchIndexesByOccurrence) {
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::dispatch, 2, fault_kind::transient_solver);
    // index 0 asks the plan for its per-site occurrence counter: the
    // first dispatch is occurrence 1, the second (the retry) fires.
    EXPECT_EQ(plan.fire(fault_site::dispatch, 0), fault_kind::none);
    EXPECT_EQ(plan.fire(fault_site::dispatch, 0),
              fault_kind::transient_solver);
}

TEST(FaultPlan, PollAtMapsKindsToStatuses) {
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::selection, 1, fault_kind::transient_solver);
    plan.schedule(fault_site::selection, 2, fault_kind::alloc_failure);
    plan.schedule(fault_site::selection, 3, fault_kind::poisoned_shard);
    cancel_token tok;
    tok.set_faults(&plan);
    EXPECT_TRUE(tok.armed());
    EXPECT_EQ(tok.poll_at(fault_site::selection, 1),
              route_status::transient_fault);
    EXPECT_EQ(tok.poll_at(fault_site::selection, 2),
              route_status::transient_fault);
    EXPECT_EQ(tok.poll_at(fault_site::selection, 3),
              route_status::data_fault);
    EXPECT_EQ(tok.poll_at(fault_site::selection, 4), route_status::ok);
}

TEST(Degrade, CoarseShardCountBounds) {
    EXPECT_GE(coarse_shard_count(100, 1), 2);
    EXPECT_LE(coarse_shard_count(100, 1), 100);
    EXPECT_GT(coarse_shard_count(4096, 1), auto_shard_count(4096, 1));
    EXPECT_EQ(coarse_shard_count(2, 1), 2);
}

// ------------------------------------------------ determinism of faults

TEST(Resilience, SameSeedBitIdenticalOutcome) {
    const auto inst = small_instance(120, 1, 7, false);
    auto run = [&](std::uint64_t seed) {
        fault_plan plan = fault_plan::seeded(seed, 2, 32);
        routing_request req = zst_request(inst);
        req.options.engine.cancel.set_faults(&plan);
        return core::route(req);
    };
    for (const std::uint64_t seed : {11ull, 42ull, 99ull}) {
        const route_result a = run(seed);
        const route_result b = run(seed);
        EXPECT_EQ(a.status, b.status) << "seed " << seed;
        EXPECT_EQ(a.stats.merges, b.stats.merges) << "seed " << seed;
        if (a.usable() && b.usable())
            expect_same_tree(a, b, "seed " + std::to_string(seed));
    }
}

// ------------------------------------------------------- retry/backoff

TEST(Resilience, TransientFaultRetriesToBitIdenticalTree) {
    const auto inst = small_instance(150, 1, 9, false);
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);

    routing_request clean = zst_request(inst);
    const route_result ref = svc.route(clean);
    ASSERT_TRUE(ref.ok());

    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::selection, 5, fault_kind::transient_solver);
    routing_request req = zst_request(inst);
    req.options.engine.cancel.set_faults(&plan);
    submit_options sub;
    sub.retry.max_attempts = 3;
    route_result res = svc.submit(req, sub).wait();
    ASSERT_TRUE(res.ok()) << res.status_message;
    EXPECT_EQ(res.attempts, 2);  // attempt 1 faulted, attempt 2 clean
    EXPECT_EQ(plan.fired(), 1);
    expect_same_tree(ref, res, "retry");
}

TEST(Resilience, RetryExhaustionReportsTransientFault) {
    const auto inst = small_instance(80, 1, 10, false);
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::dispatch, 1, fault_kind::transient_solver);
    plan.schedule(fault_site::dispatch, 2, fault_kind::transient_solver);
    plan.schedule(fault_site::dispatch, 3, fault_kind::transient_solver);
    routing_request req = zst_request(inst);
    req.options.engine.cancel.set_faults(&plan);
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    submit_options sub;
    sub.retry.max_attempts = 2;
    route_result res = svc.submit(req, sub).wait();
    EXPECT_EQ(res.status, route_status::transient_fault);
    EXPECT_EQ(res.attempts, 2);
    EXPECT_EQ(plan.fired(), 2);
}

TEST(Resilience, RetryExhaustionStepsDownTheLadder) {
    const auto inst = small_instance(100, 1, 11, false);
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::dispatch, 1, fault_kind::transient_solver);
    plan.schedule(fault_site::dispatch, 2, fault_kind::transient_solver);
    routing_request req = zst_request(inst);
    req.options.engine.cancel.set_faults(&plan);
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    submit_options sub;
    sub.retry.max_attempts = 2;
    sub.degrade.enabled = true;
    route_result res = svc.submit(req, sub).wait();
    ASSERT_EQ(res.status, route_status::degraded) << res.status_message;
    EXPECT_EQ(res.attempts, 3);  // 2 faulted attempts + 1 rung-1 rerun
    EXPECT_EQ(res.degradation.rung, degrade_rung::no_speculation);
    EXPECT_TRUE(res.degradation.verified);
    expect_verified(res, inst, req.spec, "ladder rung 1");
}

// -------------------------------------------------------------- salvage

TEST(Resilience, PoisonedShardWithoutDegradeIsDataFault) {
    const auto inst = small_instance(200, 1, 12, false);
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::shard, 2, fault_kind::poisoned_shard);
    routing_request req = zst_request(inst);
    req.options.engine.shards = 4;
    req.options.engine.cancel.set_faults(&plan);
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    route_result res = svc.submit(req, {}).wait();
    EXPECT_EQ(res.status, route_status::data_fault);
    EXPECT_EQ(res.attempts, 1);
}

TEST(Resilience, PoisonedShardSalvagesCompletedSubtrees) {
    const auto inst = small_instance(220, 1, 13, false);
    auto run = [&](int threads) {
        // Each run needs a fresh plan: events consume when they fire.
        fault_plan plan = fault_plan::seeded(0, 0);
        plan.schedule(fault_site::shard, 2, fault_kind::poisoned_shard);
        routing_request req = zst_request(inst);
        req.options.engine.shards = 4;
        req.options.engine.cancel.set_faults(&plan);
        service_options sopt;
        sopt.threads = threads;
        route_service svc(sopt);
        submit_options sub;
        sub.degrade.enabled = true;
        route_result res = svc.submit(req, sub).wait();
        EXPECT_EQ(res.status, route_status::degraded)
            << res.status_message;
        EXPECT_EQ(res.degradation.rung, degrade_rung::salvaged);
        EXPECT_EQ(res.degradation.salvaged_shards, 3);
        EXPECT_EQ(res.degradation.greedy_shards, 1);
        EXPECT_TRUE(res.degradation.verified);
        expect_verified(res, inst, req.spec, "salvage");
        return res;
    };
    const route_result seq = run(1);
    const route_result rerun = run(1);
    expect_same_tree(seq, rerun, "salvage repeatability");
    // The shard-site fault is keyed by the partition index, not arrival
    // order, so fanned execution salvages the same shards and the greedy
    // completion + stitch reproduce the same tree bit-exactly.
    const route_result fanned = run(4);
    expect_same_tree(seq, fanned, "salvage across thread counts");
}

TEST(Resilience, StallBurnsDeadlineAndSalvages) {
    const auto inst = small_instance(240, 1, 14, false);
    fault_plan plan = fault_plan::seeded(0, 0);
    plan.schedule(fault_site::shard, 3, fault_kind::worker_stall);
    routing_request req = zst_request(inst);
    req.options.engine.shards = 3;
    req.options.engine.cancel.set_faults(&plan);
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    submit_options sub;
    sub.degrade.enabled = true;
    sub.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    route_result res = svc.submit(req, sub).wait();
    ASSERT_EQ(res.status, route_status::degraded) << res.status_message;
    EXPECT_EQ(res.degradation.rung, degrade_rung::salvaged);
    EXPECT_EQ(res.degradation.salvaged_shards, 2);
    EXPECT_EQ(res.degradation.greedy_shards, 1);
    EXPECT_TRUE(res.degradation.verified);
    expect_verified(res, inst, req.spec, "stall salvage");
}

TEST(Resilience, ResolvedShardsRecorded) {
    const auto inst = small_instance(150, 1, 15, false);
    routing_request req = zst_request(inst);
    route_result mono = core::route(req);
    EXPECT_EQ(mono.resolved_shards, 1);
    req.options.engine.shards = 4;
    route_result sharded = core::route(req);
    EXPECT_EQ(sharded.resolved_shards, 4);
    EXPECT_EQ(sharded.stats.shards, 4);
    // Reproducibility closure: pinning engine.shards to the recorded
    // count reproduces the run bit-exactly.
    route_result pinned = core::route(req);
    expect_same_tree(sharded, pinned, "pinned shard count");
}

// --------------------------------------------------------- fault matrix

TEST(Resilience, FaultMatrixAlwaysTerminatesWithTypedOutcome) {
    const auto inst = small_instance(140, 1, 16, false);
    const fault_kind kinds[] = {
        fault_kind::transient_solver, fault_kind::alloc_failure,
        fault_kind::worker_stall, fault_kind::poisoned_shard};
    const fault_site sites[] = {fault_site::dispatch, fault_site::selection,
                                fault_site::round, fault_site::shard};
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    for (const fault_kind kind : kinds) {
        for (const fault_site site : sites) {
            for (const int attempts : {1, 3}) {
                for (const bool degrade : {false, true}) {
                    const std::string what =
                        std::string(to_string(kind)) + "@" +
                        to_string(site) + " retries=" +
                        std::to_string(attempts) +
                        (degrade ? " degrade" : "");
                    fault_plan plan = fault_plan::seeded(0, 0);
                    const std::uint64_t index =
                        site == fault_site::selection ? 5 : site ==
                        fault_site::shard ? 2 : 1;
                    plan.schedule(site, index, kind);
                    routing_request req = zst_request(inst);
                    if (site == fault_site::round)
                        req.options.engine.order = merge_order::multi_merge;
                    if (site == fault_site::shard)
                        req.options.engine.shards = 4;
                    req.options.engine.cancel.set_faults(&plan);
                    submit_options sub;
                    sub.retry.max_attempts = attempts;
                    sub.degrade.enabled = degrade;
                    route_result res = svc.submit(req, sub).wait();
                    EXPECT_NE(res.status, route_status::error)
                        << what << ": " << res.status_message;
                    EXPECT_NE(res.status, route_status::cancelled) << what;
                    EXPECT_NE(res.status, route_status::deadline_exceeded)
                        << what;  // no deadline in the matrix
                    if (res.usable()) {
                        EXPECT_GT(res.tree.size(), 0u) << what;
                        expect_verified(res, inst, req.spec, what);
                        if (res.status == route_status::degraded) {
                            EXPECT_TRUE(res.degradation.verified) << what;
                        }
                    } else {
                        EXPECT_TRUE(res.status ==
                                        route_status::transient_fault ||
                                    res.status == route_status::data_fault)
                            << what << ": " << to_string(res.status);
                    }
                }
            }
        }
    }
    // Sequential service: every scratch lease went back to the pool and
    // the whole matrix ran off a single pooled scratch.
    EXPECT_EQ(svc.context().pooled_scratch(), 1u);
}

}  // namespace
}  // namespace astclk::core
