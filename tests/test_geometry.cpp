// Unit and property tests for the tilted-coordinate Manhattan geometry
// kernel: transforms, distances, TRR expansion, and the DME merging-segment
// invariant (every point of the intersection lies at exactly the split
// distances from both children).

#include "geom/point.hpp"
#include "geom/tilted_rect.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace astclk::geom {
namespace {

TEST(Point, TiltedRoundTrip) {
    const point p{3.0, -7.5};
    const tilted_point t = p.to_tilted();
    EXPECT_DOUBLE_EQ(t.u, p.x + p.y);
    EXPECT_DOUBLE_EQ(t.v, p.x - p.y);
    const point back = t.to_real();
    EXPECT_DOUBLE_EQ(back.x, p.x);
    EXPECT_DOUBLE_EQ(back.y, p.y);
}

TEST(Point, ManhattanEqualsTiltedChebyshev) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> d(-100.0, 100.0);
    for (int i = 0; i < 200; ++i) {
        const point a{d(rng), d(rng)};
        const point b{d(rng), d(rng)};
        EXPECT_NEAR(manhattan(a, b), chebyshev(a.to_tilted(), b.to_tilted()),
                    1e-9);
    }
}

TEST(TiltedRect, PointRectIsDegenerate) {
    const auto r = tilted_rect::at(point{1.0, 2.0});
    EXPECT_TRUE(r.is_point());
    EXPECT_TRUE(r.is_manhattan_arc());
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.contains(point{1.0, 2.0}.to_tilted()));
}

TEST(TiltedRect, ManhattanArcDetection) {
    // Degenerate in u => slope -1 segment in real space.
    const tilted_rect arc{interval::at(5.0), interval{0.0, 4.0}};
    EXPECT_TRUE(arc.is_manhattan_arc());
    EXPECT_FALSE(arc.is_point());
    // A fat rect is not an arc.
    const tilted_rect fat{interval{0.0, 2.0}, interval{0.0, 2.0}};
    EXPECT_FALSE(fat.is_manhattan_arc());
}

TEST(TiltedRect, DistanceMatchesPointMath) {
    const auto a = tilted_rect::at(point{0.0, 0.0});
    const auto b = tilted_rect::at(point{3.0, 1.0});
    EXPECT_DOUBLE_EQ(a.distance(b), 4.0);  // |3| + |1|
    EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(TiltedRect, ExpansionIsTrr) {
    // TRR of a point with radius r: the L1 ball, containing exactly the
    // points within Manhattan distance r.
    const point c{10.0, 10.0};
    const auto trr = tilted_rect::at(c).expanded(5.0);
    EXPECT_TRUE(trr.contains(point{13.0, 12.0}.to_tilted()));   // d = 5
    EXPECT_TRUE(trr.contains(point{15.0, 10.0}.to_tilted()));   // d = 5
    EXPECT_FALSE(trr.contains(point{13.1, 12.0}.to_tilted()));  // d = 5.1
}

TEST(TiltedRect, NearestPointIsClampAndOptimal) {
    const tilted_rect r{interval{0.0, 2.0}, interval{-1.0, 1.0}};
    const tilted_point q{5.0, 0.5};
    const tilted_point n = r.nearest(q);
    EXPECT_DOUBLE_EQ(n.u, 2.0);
    EXPECT_DOUBLE_EQ(n.v, 0.5);
    EXPECT_DOUBLE_EQ(chebyshev(q, n), r.distance(q));
}

TEST(TiltedRect, IntersectAndHull) {
    const tilted_rect a{interval{0, 4}, interval{0, 4}};
    const tilted_rect b{interval{2, 6}, interval{3, 8}};
    const auto i = a.intersect(b);
    EXPECT_DOUBLE_EQ(i.u().lo, 2);
    EXPECT_DOUBLE_EQ(i.u().hi, 4);
    EXPECT_DOUBLE_EQ(i.v().lo, 3);
    EXPECT_DOUBLE_EQ(i.v().hi, 4);
    const auto h = a.hull(b);
    EXPECT_DOUBLE_EQ(h.u().hi, 6);
    EXPECT_DOUBLE_EQ(h.v().hi, 8);
}

TEST(TiltedRect, EmptyPropagation) {
    const auto e = tilted_rect::empty_set();
    EXPECT_TRUE(e.empty());
    EXPECT_TRUE(e.intersect(tilted_rect::at(point{0, 0})).empty());
    EXPECT_TRUE(e.sample_grid(3).empty());
}

TEST(TiltedRect, RealCornersFormDiamond) {
    // The unit L1 ball around the origin has corners at distance 1 on the
    // axes.
    const auto ball = tilted_rect::at(point{0, 0}).expanded(1.0);
    for (const auto& c : ball.real_corners())
        EXPECT_NEAR(std::fabs(c.x) + std::fabs(c.y), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// The DME invariant: for random rect pairs and any split alpha + beta == d,
// merging_segment(a, b, alpha, beta) is non-empty and all its points are at
// Manhattan distance exactly alpha from a and beta from b.
// ---------------------------------------------------------------------------

class MergingSegmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergingSegmentProperty, IsoDistanceLocus) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_real_distribution<double> coord(-50.0, 50.0);
    std::uniform_real_distribution<double> len(0.0, 20.0);
    std::uniform_real_distribution<double> frac(0.0, 1.0);
    for (int iter = 0; iter < 50; ++iter) {
        const double au = coord(rng), av = coord(rng);
        const double bu = coord(rng), bv = coord(rng);
        const tilted_rect a{interval{au, au + len(rng)},
                            interval{av, av + len(rng)}};
        const tilted_rect b{interval{bu, bu + len(rng)},
                            interval{bv, bv + len(rng)}};
        const double d = a.distance(b);
        const double alpha = frac(rng) * d;
        const double beta = d - alpha;
        const tilted_rect m = merging_segment(a, b, alpha, beta);
        ASSERT_FALSE(m.empty(1e-9));
        for (const auto& p : m.sample_grid(4)) {
            EXPECT_NEAR(a.distance(p), alpha, 1e-9);
            EXPECT_NEAR(b.distance(p), beta, 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergingSegmentProperty,
                         ::testing::Range(1, 9));

TEST(MergingSegment, NegativeRadiiAreEmpty) {
    const auto a = tilted_rect::at(point{0, 0});
    const auto b = tilted_rect::at(point{10, 0});
    EXPECT_TRUE(merging_segment(a, b, -1.0, 11.0).empty());
}

TEST(MergingSegment, ClassicTwoSinkCase) {
    // Sinks at (0,0) and (10,0): d = 10; the midpoint split yields the
    // perpendicular Manhattan bisector segment through (5, 0).
    const auto a = tilted_rect::at(point{0, 0});
    const auto b = tilted_rect::at(point{10, 0});
    const auto m = merging_segment(a, b, 5.0, 5.0);
    ASSERT_FALSE(m.empty());
    EXPECT_TRUE(m.contains(point{5.0, 0.0}.to_tilted()));
    // The merging segment is a Manhattan arc.
    EXPECT_TRUE(m.is_manhattan_arc(1e-9));
}

}  // namespace
}  // namespace astclk::geom
