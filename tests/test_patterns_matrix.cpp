// Tests for the pattern generators and the inter-group skew matrix (the
// paper's S_ij by-product), plus the plain-text route report.

#include "core/router.hpp"
#include "eval/skew_matrix.hpp"
#include "gen/instance_gen.hpp"
#include "gen/patterns.hpp"

#include <gtest/gtest.h>

namespace astclk {
namespace {

TEST(Patterns, AlternatingCombShape) {
    const auto inst = gen::alternating_comb(12, 3);
    EXPECT_EQ(inst.validate(), "");
    EXPECT_EQ(inst.size(), 12u);
    EXPECT_EQ(inst.num_groups, 3);
    // Round-robin groups: adjacent sinks differ.
    for (std::size_t i = 0; i + 1 < inst.size(); ++i)
        EXPECT_NE(inst.sinks[i].group, inst.sinks[i + 1].group);
}

TEST(Patterns, TwoClustersHasStragglers) {
    const auto inst = gen::two_clusters(20);
    EXPECT_EQ(inst.validate(), "");
    EXPECT_EQ(inst.size(), 42u);
    // Each group must have at least one sink in the other group's corner —
    // the property that makes the instance non-separable.
    int g0_far = 0, g1_near = 0;
    for (const auto& s : inst.sinks) {
        if (s.group == 0 && s.loc.x > inst.die_width / 2) ++g0_far;
        if (s.group == 1 && s.loc.x < inst.die_width / 2) ++g1_near;
    }
    EXPECT_GE(g0_far, 1);
    EXPECT_GE(g1_near, 1);
}

TEST(Patterns, RingCoversGroupsEvenly) {
    const auto inst = gen::ring(24, 4);
    EXPECT_EQ(inst.validate(), "");
    for (topo::group_id g = 0; g < 4; ++g)
        EXPECT_EQ(inst.group_members(g).size(), 6u);
}

TEST(Patterns, DepthRampStaysZeroSkew) {
    // Note: the chain alone does NOT force snaking — DME's merging arcs
    // drift toward wherever balancing is feasible, which is exactly the
    // algorithm's strength.  The instance still exercises deep caterpillar
    // topologies.
    const auto inst = gen::depth_ramp(16);
    const auto r = core::route_zst_dme(inst);
    EXPECT_EQ(r.tree.check_structure(inst.size()), "");
    const auto ev =
        eval::evaluate(r.tree, inst, rc::delay_model::elmore());
    EXPECT_LT(rc::to_ps(ev.global_skew), 1e-3);
}

TEST(Patterns, RandomInstancesDoForceSnaking) {
    // On realistic random instances zero-skew balancing cannot always stay
    // on-segment: snake wire must appear (and the tree stays zero-skew).
    gen::instance_spec spec = gen::paper_spec("r1");
    const auto inst = gen::generate(spec);
    const auto r = core::route_zst_dme(inst);
    EXPECT_GT(r.stats.root_snakes, 0);
    EXPECT_GT(r.stats.snake_wire, 0.0);
    const auto ev =
        eval::evaluate(r.tree, inst, rc::delay_model::elmore());
    EXPECT_LT(rc::to_ps(ev.global_skew), 1e-3);
}

TEST(SkewMatrix, OffsetsAreAntisymmetricAndConsistent) {
    auto inst = gen::ring(30, 3);
    const auto r = core::route_ast_dme(inst);
    const auto ev = eval::evaluate(r.tree, inst, rc::delay_model::elmore());
    const eval::skew_matrix m(ev, inst.num_groups);
    EXPECT_EQ(m.groups(), 3);
    for (topo::group_id i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(m.offset(i, i), 0.0);
        for (topo::group_id j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(m.offset(i, j), -m.offset(j, i));
    }
    // Triangle identity: S_ik = S_ij + S_jk.
    EXPECT_NEAR(m.offset(0, 2), m.offset(0, 1) + m.offset(1, 2), 1e-21);
    // With zero intra-group spread the extreme pair realises the global
    // inter-group span.
    const auto [lo, hi] = m.extreme_pair();
    EXPECT_NEAR(m.offset(hi, lo), m.max_abs_offset(), 1e-21);
}

TEST(SkewMatrix, MatchesEvaluatorEnvelopes) {
    auto inst = gen::alternating_comb(10, 2);
    const auto r = core::route_ast_dme(inst);
    const auto ev = eval::evaluate(r.tree, inst, rc::delay_model::elmore());
    const eval::skew_matrix m(ev, inst.num_groups);
    // Zero-skew groups: representative == the common group delay.
    for (topo::group_id g = 0; g < inst.num_groups; ++g) {
        EXPECT_NEAR(m.representative(g),
                    ev.group_min[static_cast<std::size_t>(g)], 1e-18);
    }
    // |S_01| never exceeds the global skew.
    EXPECT_LE(m.max_abs_offset(), ev.global_skew + 1e-21);
}

TEST(Report, FormatsAllSections) {
    auto inst = gen::ring(12, 2);
    const auto r = core::route_ast_dme(inst);
    const auto ev = eval::evaluate(r.tree, inst, rc::delay_model::elmore());
    const std::string rep = eval::format_report(ev, inst);
    EXPECT_NE(rep.find("wirelength"), std::string::npos);
    EXPECT_NE(rep.find("global skew"), std::string::npos);
    EXPECT_NE(rep.find("inter-group span"), std::string::npos);
    EXPECT_NE(rep.find("g0:"), std::string::npos);
    EXPECT_NE(rep.find("g1:"), std::string::npos);
}

}  // namespace
}  // namespace astclk
