// Grid-backend equivalence: the spatial grid index must answer exactly the
// same nearest-neighbour queries (same partner id, same distance, same
// deterministic tie-breaks) as the linear verification scan, and the full
// engine must produce identical trees under either backend.

#include "core/engine.hpp"
#include "core/grid_index.hpp"
#include "core/nn_index.hpp"
#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"
#include "gen/rng.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace astclk::core {
namespace {

using topo::clock_tree;
using topo::instance;
using topo::node_id;

instance seeded_instance(int n, std::uint64_t seed, bool intermingled,
                         int groups) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (groups > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, groups, seed + 1);
        else
            gen::apply_clustered_groups(inst, groups);
    }
    return inst;
}

/// Compare every query on both backends, with and without a ban set.
void expect_index_equivalence(const clock_tree& t,
                              const std::vector<node_id>& roots,
                              std::uint64_t ban_seed) {
    nn_index lin(&t, roots);
    grid_index grid(&t, roots);
    ASSERT_EQ(lin.size(), grid.size());

    // Random symmetric ban set over ~10% of pairs.
    gen::rng rng(ban_seed);
    std::unordered_set<std::uint64_t> bans;
    for (node_id a : roots)
        for (int k = 0; k < 2; ++k) {
            const auto b = roots[static_cast<std::size_t>(
                rng.below(roots.size()))];
            if (a != b) bans.insert(pair_key(a, b));
        }
    const auto no_ban = [](std::uint64_t) { return false; };
    const auto with_ban = [&](std::uint64_t k) { return bans.count(k) > 0; };

    for (node_id id : roots) {
        const auto l0 = lin.nearest_if(id, no_ban);
        const auto g0 = grid.nearest_if(id, no_ban);
        ASSERT_EQ(l0.has_value(), g0.has_value()) << "id " << id;
        if (l0.has_value()) {
            EXPECT_EQ(l0->first, g0->first) << "id " << id;
            EXPECT_EQ(l0->second, g0->second) << "id " << id;
        }
        const auto l1 = lin.nearest_if(id, with_ban);
        const auto g1 = grid.nearest_if(id, with_ban);
        ASSERT_EQ(l1.has_value(), g1.has_value()) << "id " << id << " (bans)";
        if (l1.has_value()) {
            EXPECT_EQ(l1->first, g1->first) << "id " << id << " (bans)";
            EXPECT_EQ(l1->second, g1->second) << "id " << id << " (bans)";
        }
    }
}

TEST(GridIndex, MatchesLinearOnClusteredAndIntermingledLeaves) {
    for (const bool intermingled : {false, true}) {
        for (const std::uint64_t seed : {3u, 11u, 29u}) {
            const auto inst = seeded_instance(180, seed, intermingled, 6);
            clock_tree t;
            std::vector<node_id> roots;
            for (std::size_t i = 0; i < inst.sinks.size(); ++i)
                roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
            expect_index_equivalence(t, roots, seed * 7 + 1);
        }
    }
}

TEST(GridIndex, MatchesLinearWithLongMergedArcs) {
    // Mix leaves with synthetic internal nodes carrying long Manhattan
    // arcs (hulls of distant leaf pairs), the shape the engine produces
    // mid-run; long arcs span many grid cells.
    const auto inst = seeded_instance(120, 5, true, 4);
    clock_tree t;
    std::vector<node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
    gen::rng rng(99);
    std::vector<node_id> active = roots;
    for (int k = 0; k < 40; ++k) {
        const auto ia = static_cast<std::size_t>(rng.below(active.size()));
        auto ib = static_cast<std::size_t>(rng.below(active.size()));
        if (ia == ib) ib = (ib + 1) % active.size();
        const node_id a = active[std::min(ia, ib)];
        const node_id b = active[std::max(ia, ib)];
        // Degenerate-in-u hull: a Manhattan arc spanning the two nodes.
        const geom::tilted_rect hull = t.node(a).arc.hull(t.node(b).arc);
        const geom::tilted_rect arc{geom::interval::at(hull.u().mid()),
                                    hull.v()};
        const node_id c =
            t.add_internal(a, b, arc, 0.0, 0.0, 0.0, t.node(a).delays);
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(std::max(ia, ib)));
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(std::min(ia, ib)));
        active.push_back(c);
    }
    expect_index_equivalence(t, active, 123);
}

/// Route the same instance under both backends; trees must be identical in
/// every engine statistic, wirelength, and per-node geometry.
void expect_identical_routes(const instance& inst) {
    router_options grid_opt, lin_opt;
    grid_opt.engine.backend = nn_backend::grid;
    lin_opt.engine.backend = nn_backend::linear;
    for (const ast_mode mode :
         {ast_mode::windowed, ast_mode::soft_ledger, ast_mode::automatic}) {
        const auto g = route_ast_dme(inst, skew_spec::zero(), grid_opt, mode);
        const auto l = route_ast_dme(inst, skew_spec::zero(), lin_opt, mode);
        EXPECT_EQ(g.stats.merges, l.stats.merges);
        EXPECT_EQ(g.stats.rejected_pairs, l.stats.rejected_pairs);
        EXPECT_EQ(g.stats.forced_merges, l.stats.forced_merges);
        EXPECT_EQ(g.stats.interior_snakes, l.stats.interior_snakes);
        EXPECT_EQ(g.stats.root_snakes, l.stats.root_snakes);
        EXPECT_EQ(g.stats.snake_wire, l.stats.snake_wire);
        EXPECT_EQ(g.wirelength, l.wirelength);
        ASSERT_EQ(g.tree.size(), l.tree.size());
        for (std::size_t i = 0; i < g.tree.size(); ++i) {
            const auto& gn = g.tree.node(static_cast<node_id>(i));
            const auto& ln = l.tree.node(static_cast<node_id>(i));
            EXPECT_EQ(gn.left, ln.left);
            EXPECT_EQ(gn.right, ln.right);
            EXPECT_EQ(gn.arc, ln.arc);
            EXPECT_EQ(gn.edge_left, ln.edge_left);
            EXPECT_EQ(gn.edge_right, ln.edge_right);
        }
    }
}

TEST(GridIndex, EngineProducesIdenticalTreesClustered) {
    expect_identical_routes(seeded_instance(220, 17, false, 6));
}

TEST(GridIndex, EngineProducesIdenticalTreesIntermingled) {
    expect_identical_routes(seeded_instance(220, 23, true, 8));
}

TEST(GridIndex, EngineIdenticalUnderMultiMergeAndZst) {
    const auto inst = seeded_instance(150, 31, true, 5);
    for (const merge_order order :
         {merge_order::nearest_pair, merge_order::multi_merge}) {
        router_options g, l;
        g.engine.order = l.engine.order = order;
        g.engine.backend = nn_backend::grid;
        l.engine.backend = nn_backend::linear;
        const auto rg = route_zst_dme(inst, g);
        const auto rl = route_zst_dme(inst, l);
        EXPECT_EQ(rg.wirelength, rl.wirelength);
        EXPECT_EQ(rg.stats.merges, rl.stats.merges);
        EXPECT_EQ(rg.stats.snake_wire, rl.stats.snake_wire);
        EXPECT_EQ(rg.stats.rounds, rl.stats.rounds);
    }
}

TEST(GridIndex, EraseReinsertKeepsAnswersConsistent) {
    const auto inst = seeded_instance(90, 41, true, 3);
    clock_tree t;
    std::vector<node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
    nn_index lin(&t, roots);
    grid_index grid(&t, roots);
    gen::rng rng(7);
    const auto no_ban = [](std::uint64_t) { return false; };
    // Random erase / reinsert churn, checking equivalence throughout.
    std::vector<node_id> in = roots, out;
    for (int step = 0; step < 60; ++step) {
        if (!in.empty() && (out.empty() || rng.below(3) != 0)) {
            const auto k = static_cast<std::size_t>(rng.below(in.size()));
            const node_id id = in[k];
            lin.erase(id);
            grid.erase(id);
            in.erase(in.begin() + static_cast<std::ptrdiff_t>(k));
            out.push_back(id);
        } else {
            const node_id id = out.back();
            out.pop_back();
            lin.insert(id);
            grid.insert(id);
            in.push_back(id);
        }
        ASSERT_EQ(lin.size(), grid.size());
        for (const node_id id : in) {
            const auto l = lin.nearest_if(id, no_ban);
            const auto g = grid.nearest_if(id, no_ban);
            ASSERT_EQ(l.has_value(), g.has_value());
            if (l.has_value()) {
                ASSERT_EQ(l->first, g->first);
                ASSERT_EQ(l->second, g->second);
            }
        }
    }
}

TEST(GridIndex, TinyPopulationsKeepMinimumCellResolution) {
    // Sizing clamp for small populations (sub-reduction shards): a tiny
    // root set spread over a wide extent must still get a grid of at
    // least kmin_cells_per_axis cells along its longer axis — sqrt-sizing
    // alone would hand it a near-degenerate few-cell grid whose ring
    // visits scan most of the population (a linear scan paying grid
    // overhead).  Answers stay exact either way; the clamp (and this
    // test) is about the cell resolution itself.
    for (const int n : {2, 5, 16, 48, 63}) {
        const auto inst = seeded_instance(n, 77, false, 1);
        clock_tree t;
        std::vector<node_id> roots;
        for (std::size_t i = 0; i < inst.sinks.size(); ++i)
            roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
        const grid_index grid(&t, roots);
        EXPECT_GE(std::max(grid.cells_u(), grid.cells_v()), 8) << "n=" << n;
        // ...and the clamped grid still answers exactly like the linear
        // reference, bans and churn included.
        expect_index_equivalence(t, roots, 77 + static_cast<unsigned>(n));
    }
    // Past the clamp region sqrt-sizing takes over unchanged.
    const auto inst = seeded_instance(256, 78, false, 1);
    clock_tree t;
    std::vector<node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
    const grid_index grid(&t, roots);
    EXPECT_GE(std::max(grid.cells_u(), grid.cells_v()), 16);
}

TEST(GridIndex, OccupancyAdaptiveRebuildKeepsAnswersExact) {
    // Shrink the active set the way the engine does (erasures dominate);
    // the occupancy-adaptive rebuild must fire as the population collapses
    // and must never change a nearest-neighbour answer or the slot order.
    const auto inst = seeded_instance(300, 51, true, 6);
    clock_tree t;
    std::vector<node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<int>(i)));
    nn_index lin(&t, roots);
    grid_index grid(&t, roots);
    EXPECT_EQ(grid.rebuilds(), 0);

    gen::rng rng(13);
    const auto no_ban = [](std::uint64_t) { return false; };
    std::vector<node_id> in = roots;
    int last_rebuilds = 0;
    while (in.size() > 2) {
        const auto k = static_cast<std::size_t>(rng.below(in.size()));
        const node_id id = in[k];
        lin.erase(id);
        grid.erase(id);
        in.erase(in.begin() + static_cast<std::ptrdiff_t>(k));
        const bool just_rebuilt = grid.rebuilds() != last_rebuilds;
        last_rebuilds = grid.rebuilds();
        // Full equivalence sweep right after each rebuild and periodically.
        if (just_rebuilt || in.size() % 16 == 0) {
            for (const node_id q : in) {
                ASSERT_EQ(lin.slot_of(q), grid.slot_of(q));
                const auto l = lin.nearest_if(q, no_ban);
                const auto g = grid.nearest_if(q, no_ban);
                ASSERT_EQ(l.has_value(), g.has_value());
                if (l.has_value()) {
                    ASSERT_EQ(l->first, g->first) << "id " << q;
                    ASSERT_EQ(l->second, g->second) << "id " << q;
                }
            }
        }
    }
    // 300 -> 74 -> 18: at least two adaptive rebuilds on the way down.
    EXPECT_GE(grid.rebuilds(), 2);
}

}  // namespace
}  // namespace astclk::core
