// End-to-end router tests on small deterministic instances: constraint
// satisfaction via the independent evaluator, structural soundness,
// determinism, engine statistics, and cross-router relationships.

#include "core/router.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

namespace astclk::core {
namespace {

topo::instance small_instance(int n, int k, std::uint64_t seed,
                              bool intermingled) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (k > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, k, seed + 1);
        else
            gen::apply_clustered_groups(inst, k);
    }
    return inst;
}

TEST(Routers, ZstDmeAchievesZeroGlobalSkew) {
    const auto inst = small_instance(60, 1, 3, false);
    const router_options opt;
    const auto r = route_zst_dme(inst, opt);
    const auto ev = eval::evaluate(r.tree, inst, opt.model);
    EXPECT_LT(rc::to_ps(ev.global_skew), 1e-3);
    EXPECT_EQ(r.tree.check_structure(inst.size()), "");
    EXPECT_GT(r.wirelength, 0.0);
    EXPECT_EQ(r.stats.merges, static_cast<int>(inst.size()) - 1);
}

TEST(Routers, ExtBstRespectsGlobalBound) {
    const auto inst = small_instance(80, 1, 4, false);
    const router_options opt;
    for (double bound_ps : {1.0, 10.0, 100.0}) {
        const auto r = route_ext_bst(inst, bound_ps * 1e-12, opt);
        const auto ev = eval::evaluate(r.tree, inst, opt.model);
        EXPECT_LE(rc::to_ps(ev.global_skew), bound_ps + 1e-3)
            << "bound " << bound_ps << " ps";
    }
}

TEST(Routers, LooserBoundNeverIncreasesWirelengthMuch) {
    // Monotonicity is only heuristic (greedy order changes), but a looser
    // bound should never cost a significant amount more wire.
    const auto inst = small_instance(100, 1, 5, false);
    const router_options opt;
    const auto tight = route_ext_bst(inst, 0.0, opt);
    const auto loose = route_ext_bst(inst, 1.0, opt);  // effectively infinite
    EXPECT_LT(loose.wirelength, tight.wirelength * 1.02);
}

TEST(Routers, AstDmeSatisfiesZeroIntraGroupSkew) {
    const auto inst = small_instance(70, 5, 6, true);
    const router_options opt;
    const auto r = route_ast_dme(inst);
    const auto vr = eval::verify_route(r, inst, opt.model, skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
    const auto ev = eval::evaluate(r.tree, inst, opt.model);
    EXPECT_LT(rc::to_ps(ev.max_intra_group_skew), 1e-3);
}

TEST(Routers, AstBookkeepingMatchesEvaluator) {
    const auto inst = small_instance(50, 4, 7, true);
    const router_options opt;
    const auto r = route_ast_dme(inst);
    const auto vr = eval::verify_route(r, inst, opt.model, skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
    EXPECT_LT(vr.max_cap_error, 1e-20);
    EXPECT_LT(vr.max_delay_bookkeeping_error, 1e-18);
    EXPECT_LT(vr.worst_embed_excess, 1e-5);
}

TEST(Routers, AstExactLedgerNeverForcesViolations) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const auto inst = small_instance(90, 6, seed, true);
        const auto r =
            route_ast_dme(inst, skew_spec::zero(), {}, ast_mode::exact_ledger);
        EXPECT_EQ(r.stats.forced_merges, 0) << "seed " << seed;
        EXPECT_DOUBLE_EQ(r.stats.worst_violation, 0.0);
    }
}

TEST(Routers, AstBoundedSpecKeepsGroupsWithinBound) {
    const auto inst = small_instance(60, 4, 9, true);
    const router_options opt;
    const skew_spec spec = skew_spec::uniform(20e-12);
    const auto r = route_ast_dme(inst, spec, opt);
    const auto ev = eval::evaluate(r.tree, inst, opt.model);
    for (topo::group_id g = 0; g < inst.num_groups; ++g)
        EXPECT_LE(rc::to_ps(ev.group_skew[static_cast<std::size_t>(g)]),
                  20.0 + 0.01);
}

TEST(Routers, SeparateStitchSatisfiesConstraintsButCostsMore) {
    // The prior work's construction must still achieve intra-group zero
    // skew; on intermingled groups it wastes a lot of wire (Fig. 2).
    const auto inst = small_instance(80, 5, 10, true);
    const router_options opt;
    const auto sep = route_separate_stitch(inst, opt);
    const auto vr = eval::verify_route(sep, inst, opt.model, skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
    const auto ast = route_ast_dme(inst);
    EXPECT_GT(sep.wirelength, ast.wirelength);
}

TEST(Routers, DeterministicAcrossRuns) {
    const auto inst = small_instance(64, 4, 11, true);
    const auto a = route_ast_dme(inst);
    const auto b = route_ast_dme(inst);
    EXPECT_DOUBLE_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.tree.size(), b.tree.size());
}

TEST(Routers, SingleSinkInstance) {
    topo::instance inst;
    inst.num_groups = 1;
    inst.die_width = inst.die_height = 100.0;
    inst.source = {0.0, 0.0};
    inst.sinks = {{{30.0, 40.0}, 10e-15, 0}};
    const auto r = route_zst_dme(inst);
    EXPECT_EQ(r.tree.check_structure(1), "");
    EXPECT_NEAR(r.wirelength, 70.0, 1e-9);  // source-to-sink Manhattan
}

TEST(Routers, TwoSinkInstanceMatchesHandMath) {
    topo::instance inst;
    inst.num_groups = 1;
    inst.die_width = inst.die_height = 100.0;
    inst.source = {50.0, 50.0};
    inst.sinks = {{{0.0, 50.0}, 10e-15, 0}, {{100.0, 50.0}, 10e-15, 0}};
    const router_options opt;
    const auto r = route_zst_dme(inst, opt);
    // Symmetric: merge point at the centre, wirelength 100 + source edge 0.
    EXPECT_NEAR(r.wirelength, 100.0, 1e-6);
    const auto ev = eval::evaluate(r.tree, inst, opt.model);
    EXPECT_LT(rc::to_ps(ev.global_skew), 1e-6);
}

TEST(Routers, MultiMergeOrderProducesValidTrees) {
    const auto inst = small_instance(75, 4, 12, true);
    router_options opt;
    opt.engine.order = merge_order::multi_merge;
    const auto r = route_ast_dme(inst, skew_spec::zero(), opt);
    const auto vr = eval::verify_route(r, inst, opt.model, skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
    EXPECT_GT(r.stats.rounds, 0);
    EXPECT_LT(r.stats.rounds, r.stats.merges);
}

TEST(Routers, TrueCostOrderingToggleStillValid) {
    const auto inst = small_instance(75, 4, 13, true);
    router_options opt;
    opt.engine.true_cost_ordering = false;
    const auto r = route_ast_dme(inst, skew_spec::zero(), opt);
    const auto vr = eval::verify_route(r, inst, opt.model, skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
}

TEST(Routers, StatsClassifyMergeCases) {
    const auto inst = small_instance(80, 6, 14, true);
    const auto r = route_ast_dme(inst);
    EXPECT_EQ(r.stats.merges, static_cast<int>(inst.size()) - 1);
    EXPECT_EQ(r.stats.disjoint_merges + r.stats.shared_merges, r.stats.merges);
    EXPECT_GT(r.stats.disjoint_merges, 0);  // intermingled: plenty of case 2
    EXPECT_GT(r.stats.shared_merges, 0);
}

TEST(Routers, WirelengthLowerBoundSanity) {
    // No tree can use less wire than half the sum of each sink's distance
    // to its nearest other sink (every sink needs a connection).
    const auto inst = small_instance(60, 1, 15, false);
    double lower = 0.0;
    for (std::size_t i = 0; i < inst.size(); ++i) {
        double nn = 1e30;
        for (std::size_t j = 0; j < inst.size(); ++j) {
            if (i == j) continue;
            nn = std::min(nn, geom::manhattan(inst.sinks[i].loc,
                                              inst.sinks[j].loc));
        }
        lower += nn;
    }
    lower *= 0.5;
    const auto r = route_zst_dme(inst);
    EXPECT_GT(r.wirelength, lower);
}

}  // namespace
}  // namespace astclk::core
