// dary_heap.hpp property tests: the 4-ary (and other-arity) implicit
// heaps must drain in exactly the order std::push_heap/std::pop_heap
// would — the bit-identity contract the merge engine's selection heap
// relies on (engine.cpp swapped its binary heaps for 4-ary ones without
// changing a single tree).

#include "core/dary_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace astclk::core {
namespace {

/// The engine's selection-entry shape: key plus id tie-breaks.
struct entry {
    double key;
    int a, b;
    bool operator==(const entry&) const = default;
};

/// The engine's sel_order: min-heap on (key, a, b) via an inverted "less".
struct min_order {
    bool operator()(const entry& x, const entry& y) const {
        if (x.key != y.key) return x.key > y.key;
        if (x.a != y.a) return x.a > y.a;
        return x.b > y.b;
    }
};

/// The engine's rad_order: max-heap on key alone (a partial order — ties
/// are real, as in the radius heap).
struct max_order {
    bool operator()(const entry& x, const entry& y) const {
        return x.key < y.key;
    }
};

template <class Cmp>
entry std_pop(std::vector<entry>& h) {
    const entry e = h.front();
    std::pop_heap(h.begin(), h.end(), Cmp{});
    h.pop_back();
    return e;
}

TEST(DaryHeap, DrainOrderMatchesStdHeapUnderTotalOrder) {
    // Interleaved pushes and pops with heavy key duplication: the fronts
    // and the drained sequences must match std::push_heap/pop_heap
    // element for element, because min_order is a total order.
    std::mt19937 rng(20260730);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<entry> ref, dary;
        for (int op = 0; op < 800; ++op) {
            if (ref.empty() || rng() % 3 != 0) {
                const entry e{static_cast<double>(rng() % 16),
                              static_cast<int>(rng() % 40),
                              static_cast<int>(rng() % 40)};
                ref.push_back(e);
                std::push_heap(ref.begin(), ref.end(), min_order{});
                dary_push<min_order>(dary, e);
            } else {
                ASSERT_EQ(dary.front(), ref.front()) << "trial " << trial;
                std_pop<min_order>(ref);
                dary_pop<min_order>(dary);
            }
        }
        while (!ref.empty()) {
            ASSERT_EQ(dary.front(), std_pop<min_order>(ref));
            dary_pop<min_order>(dary);
        }
        EXPECT_TRUE(dary.empty());
    }
}

TEST(DaryHeap, PartialOrderDrainsSameKeySequence) {
    // Under max_order ties break arbitrarily, so element identity is not
    // guaranteed — but the *key* sequence (what current_radius reads) is.
    std::mt19937 rng(7);
    std::vector<entry> ref, dary;
    for (int i = 0; i < 500; ++i) {
        const entry e{static_cast<double>(rng() % 10),
                      static_cast<int>(i), 0};
        ref.push_back(e);
        std::push_heap(ref.begin(), ref.end(), max_order{});
        dary_push<max_order>(dary, e);
    }
    while (!ref.empty()) {
        EXPECT_EQ(dary.front().key, ref.front().key);
        std_pop<max_order>(ref);
        dary_pop<max_order>(dary);
    }
    EXPECT_TRUE(dary.empty());
}

TEST(DaryHeap, OtherAritiesDrainSortedToo) {
    // The arity is a template knob; every D drains the same sorted
    // sequence under a total order.
    std::mt19937 rng(11);
    std::vector<entry> in;
    for (int i = 0; i < 300; ++i)
        in.push_back({static_cast<double>(rng() % 25),
                      static_cast<int>(rng() % 9),
                      static_cast<int>(rng() % 9)});
    std::vector<entry> sorted = in;
    std::sort(sorted.begin(), sorted.end(), [](const entry& x, const entry& y) {
        return min_order{}(y, x);  // ascending under the min-heap order
    });
    const auto drain2 = [&in] {
        std::vector<entry> h, out;
        for (const entry& e : in) dary_push<min_order, 2>(h, e);
        while (!h.empty()) {
            out.push_back(h.front());
            dary_pop<min_order, 2>(h);
        }
        return out;
    };
    const auto drain8 = [&in] {
        std::vector<entry> h, out;
        for (const entry& e : in) dary_push<min_order, 8>(h, e);
        while (!h.empty()) {
            out.push_back(h.front());
            dary_pop<min_order, 8>(h);
        }
        return out;
    };
    EXPECT_EQ(drain2(), sorted);
    EXPECT_EQ(drain8(), sorted);
}

TEST(DaryHeap, SingleElementAndRepeatedReuse) {
    std::vector<entry> h;
    dary_push<min_order>(h, {1.0, 2, 3});
    EXPECT_EQ(h.front(), (entry{1.0, 2, 3}));
    dary_pop<min_order>(h);
    EXPECT_TRUE(h.empty());
    // Reuse the same storage (the engine_scratch pattern): capacity
    // persists, behaviour resets.
    for (int round = 0; round < 3; ++round) {
        for (int i = 9; i >= 0; --i)
            dary_push<min_order>(h, {static_cast<double>(i), i, i});
        for (int i = 0; i < 10; ++i) {
            EXPECT_EQ(h.front().key, static_cast<double>(i));
            dary_pop<min_order>(h);
        }
        EXPECT_TRUE(h.empty());
    }
}

}  // namespace
}  // namespace astclk::core
