// group_delays bookkeeping tests: merge-walk correctness, bit-exact shifts
// of degenerate intervals (the frozen-skew invariant), shared-group
// queries.

#include "topo/group_map.hpp"

#include <gtest/gtest.h>

namespace astclk::topo {
namespace {

using geom::interval;

TEST(GroupDelays, SingleLeafState) {
    const auto m = group_delays::single(3);
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_DOUBLE_EQ(m.find(3)->lo, 0.0);
    EXPECT_EQ(m.find(2), nullptr);
}

TEST(GroupDelays, SetInsertsSorted) {
    group_delays m;
    m.set(5, interval::at(1.0));
    m.set(1, interval::at(2.0));
    m.set(3, interval::at(3.0));
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m.entries()[0].first, 1);
    EXPECT_EQ(m.entries()[1].first, 3);
    EXPECT_EQ(m.entries()[2].first, 5);
    // Overwrite keeps size.
    m.set(3, interval::at(9.0));
    EXPECT_EQ(m.size(), 3u);
    EXPECT_DOUBLE_EQ(m.find(3)->lo, 9.0);
}

TEST(GroupDelays, ShiftAllPreservesDegeneracyBitExactly) {
    group_delays m;
    m.set(0, interval::at(1.25e-10));
    m.set(7, interval::at(3.5e-11));
    m.shift_all(7.77e-12);
    // lo and hi run through identical arithmetic: still exactly equal.
    EXPECT_EQ(m.find(0)->lo, m.find(0)->hi);
    EXPECT_EQ(m.find(7)->lo, m.find(7)->hi);
    EXPECT_DOUBLE_EQ(m.find(0)->lo, 1.25e-10 + 7.77e-12);
}

TEST(GroupDelays, MergedDisjointKeepsBothSides) {
    const auto a = group_delays::single(0, interval::at(1.0));
    const auto b = group_delays::single(1, interval::at(2.0));
    const auto c = group_delays::merged(a, 0.5, b, 0.25);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.find(0)->lo, 1.5);
    EXPECT_DOUBLE_EQ(c.find(1)->lo, 2.25);
}

TEST(GroupDelays, MergedSharedTakesHull) {
    group_delays a;
    a.set(0, {1.0, 2.0});
    a.set(1, interval::at(5.0));
    group_delays b;
    b.set(0, {1.5, 3.0});
    b.set(2, interval::at(7.0));
    const auto c = group_delays::merged(a, 1.0, b, 0.0);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_DOUBLE_EQ(c.find(0)->lo, 1.5);  // min(1+1, 1.5+0)
    EXPECT_DOUBLE_EQ(c.find(0)->hi, 3.0);  // max(2+1, 3+0)
    EXPECT_DOUBLE_EQ(c.find(1)->lo, 6.0);
    EXPECT_DOUBLE_EQ(c.find(2)->lo, 7.0);
}

TEST(GroupDelays, SharedAndDisjointQueries) {
    group_delays a;
    a.set(0, interval::at(0.0));
    a.set(2, interval::at(0.0));
    a.set(4, interval::at(0.0));
    group_delays b;
    b.set(1, interval::at(0.0));
    b.set(2, interval::at(0.0));
    b.set(4, interval::at(0.0));
    const auto s = a.shared_with(b);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[1], 4);
    EXPECT_FALSE(a.disjoint_from(b));

    group_delays c;
    c.set(9, interval::at(0.0));
    EXPECT_TRUE(a.disjoint_from(c));
    EXPECT_TRUE(a.shared_with(c).empty());
}

TEST(GroupDelays, SpreadAndOverall) {
    group_delays m;
    m.set(0, {1.0, 2.5});
    m.set(1, {4.0, 4.2});
    EXPECT_DOUBLE_EQ(m.max_spread(), 1.5);
    const auto o = m.overall();
    EXPECT_DOUBLE_EQ(o.lo, 1.0);
    EXPECT_DOUBLE_EQ(o.hi, 4.2);
    EXPECT_TRUE(group_delays().overall().empty());
}

TEST(GroupDelays, GroupsListsIdsAscending) {
    group_delays m;
    m.set(9, interval::at(0.0));
    m.set(4, interval::at(0.0));
    const auto g = m.groups();
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0], 4);
    EXPECT_EQ(g[1], 9);
}

TEST(Instance, ValidateCatchesProblems) {
    instance inst;
    EXPECT_NE(inst.validate(), "");  // no sinks

    inst.sinks.push_back({{0, 0}, 1e-15, 0});
    inst.num_groups = 1;
    EXPECT_EQ(inst.validate(), "");

    inst.sinks.push_back({{1, 1}, 1e-15, 5});  // group out of range
    EXPECT_NE(inst.validate(), "");

    inst.sinks[1].group = 0;
    inst.sinks[1].cap = -1.0;  // negative cap
    EXPECT_NE(inst.validate(), "");

    inst.sinks[1].cap = 1e-15;
    inst.num_groups = 2;  // group 1 has no members
    EXPECT_NE(inst.validate(), "");
}

TEST(Instance, GroupMembers) {
    instance inst;
    inst.num_groups = 2;
    inst.sinks = {{{0, 0}, 1e-15, 0}, {{1, 0}, 1e-15, 1}, {{2, 0}, 1e-15, 0}};
    const auto g0 = inst.group_members(0);
    ASSERT_EQ(g0.size(), 2u);
    EXPECT_EQ(g0[0], 0);
    EXPECT_EQ(g0[1], 2);
}

}  // namespace
}  // namespace astclk::topo
