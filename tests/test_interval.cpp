// Unit tests for the closed-interval kernel.

#include "geom/interval.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace astclk::geom {
namespace {

TEST(Interval, DefaultIsDegenerateZero) {
    interval iv;
    EXPECT_FALSE(iv.empty());
    EXPECT_DOUBLE_EQ(iv.lo, 0.0);
    EXPECT_DOUBLE_EQ(iv.hi, 0.0);
    EXPECT_DOUBLE_EQ(iv.length(), 0.0);
}

TEST(Interval, AtHoldsSingleValue) {
    const auto iv = interval::at(3.5);
    EXPECT_TRUE(iv.contains(3.5));
    EXPECT_DOUBLE_EQ(iv.length(), 0.0);
    EXPECT_DOUBLE_EQ(iv.mid(), 3.5);
}

TEST(Interval, EmptySetBehaviour) {
    const auto e = interval::empty_set();
    EXPECT_TRUE(e.empty());
    EXPECT_FALSE(e.contains(0.0, 0.0));
    // Intersection with anything stays empty.
    EXPECT_TRUE(e.intersect({-10, 10}).empty());
    // Hull with a real interval recovers the real interval.
    const auto h = e.hull({1, 2});
    EXPECT_DOUBLE_EQ(h.lo, 1);
    EXPECT_DOUBLE_EQ(h.hi, 2);
}

TEST(Interval, EmptyToleranceClassification) {
    const interval slightly_inverted{1.0 + 1e-12, 1.0};
    EXPECT_TRUE(slightly_inverted.empty());
    EXPECT_FALSE(slightly_inverted.empty(1e-9));
}

TEST(Interval, ContainsWithTolerance) {
    const interval iv{0.0, 1.0};
    EXPECT_TRUE(iv.contains(1.0 + 0.5 * kGeomEps));
    EXPECT_FALSE(iv.contains(1.0 + 1.0, 0.0));
    EXPECT_TRUE(iv.contains(interval{0.2, 0.8}));
    EXPECT_FALSE(iv.contains(interval{0.2, 1.5}));
}

TEST(Interval, ClampAndDistance) {
    const interval iv{-2.0, 5.0};
    EXPECT_DOUBLE_EQ(iv.clamp(-3.0), -2.0);
    EXPECT_DOUBLE_EQ(iv.clamp(7.0), 5.0);
    EXPECT_DOUBLE_EQ(iv.clamp(1.0), 1.0);
    EXPECT_DOUBLE_EQ(iv.distance(-3.0), 1.0);
    EXPECT_DOUBLE_EQ(iv.distance(8.0), 3.0);
    EXPECT_DOUBLE_EQ(iv.distance(0.0), 0.0);
}

TEST(Interval, GapIsSymmetricAndZeroOnOverlap) {
    const interval a{0.0, 2.0};
    const interval b{5.0, 6.0};
    EXPECT_DOUBLE_EQ(a.gap(b), 3.0);
    EXPECT_DOUBLE_EQ(b.gap(a), 3.0);
    EXPECT_DOUBLE_EQ(a.gap(interval{1.0, 3.0}), 0.0);
    EXPECT_DOUBLE_EQ(a.gap(a), 0.0);
}

TEST(Interval, ExpandIntersectHullShift) {
    const interval a{1.0, 2.0};
    const auto e = a.expanded(0.5);
    EXPECT_DOUBLE_EQ(e.lo, 0.5);
    EXPECT_DOUBLE_EQ(e.hi, 2.5);
    const auto i = a.intersect({1.5, 4.0});
    EXPECT_DOUBLE_EQ(i.lo, 1.5);
    EXPECT_DOUBLE_EQ(i.hi, 2.0);
    const auto h = a.hull({-1.0, 0.0});
    EXPECT_DOUBLE_EQ(h.lo, -1.0);
    EXPECT_DOUBLE_EQ(h.hi, 2.0);
    const auto s = a.shifted(10.0);
    EXPECT_DOUBLE_EQ(s.lo, 11.0);
    EXPECT_DOUBLE_EQ(s.hi, 12.0);
}

TEST(Interval, DisjointIntersectionIsEmpty) {
    EXPECT_TRUE(interval(0, 1).intersect(interval(2, 3)).empty());
}

TEST(Interval, StreamFormatting) {
    std::ostringstream os;
    os << interval{1, 2} << ' ' << interval::empty_set();
    EXPECT_EQ(os.str(), "[1, 2] [empty]");
}

// Algebraic property sweep: expansion distributes over intersection
// endpoints, gap vanishes after sufficient expansion, etc.
class IntervalPairProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(IntervalPairProperty, ExpansionClosesGap) {
    const auto [lo, width, gap_target] = GetParam();
    const interval a{lo, lo + width};
    const interval b{lo + width + gap_target, lo + 2 * width + gap_target};
    const double g = a.gap(b);
    EXPECT_NEAR(g, std::max(0.0, gap_target), 1e-12);
    // Expanding each by half the gap makes them touch.
    EXPECT_NEAR(a.expanded(g / 2).gap(b.expanded(g / 2)), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntervalPairProperty,
    ::testing::Combine(::testing::Values(-5.0, 0.0, 1e3),
                       ::testing::Values(0.0, 1.0, 42.0),
                       ::testing::Values(0.0, 0.25, 7.0)));

}  // namespace
}  // namespace astclk::geom
