// Service-layer tests: batched and streamed route_service runs must be
// bit-identical to direct single-threaded router calls for all four
// strategies on both NN backends, deterministic across thread counts, and
// isolate a failing request from the rest of its batch.  Also covers the
// streaming API (async submit, priority ordering, per-request deadlines,
// cooperative cancellation with one-round latency, scratch-pool recovery),
// the strategy registry, uniform timing/threads bookkeeping, scratch
// reuse, and the parallel multi-merge fan-out.

#include "core/route_service.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace astclk::core {
namespace {

topo::instance small_instance(int n, int k, std::uint64_t seed,
                              bool intermingled) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (k > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, k, seed + 1);
        else
            gen::apply_clustered_groups(inst, k);
    }
    return inst;
}

/// Bit-exact comparison: every statistic the engine reports and every
/// node's topology/geometry (the acceptance bar for threaded execution).
void expect_same_route(const route_result& a, const route_result& b,
                       const std::string& what) {
    EXPECT_TRUE(a.ok()) << what << ": " << a.status_message;
    EXPECT_TRUE(b.ok()) << what << ": " << b.status_message;
    EXPECT_EQ(a.wirelength, b.wirelength) << what;
    EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
    EXPECT_EQ(a.stats.snake_wire, b.stats.snake_wire) << what;
    EXPECT_EQ(a.stats.rejected_pairs, b.stats.rejected_pairs) << what;
    EXPECT_EQ(a.stats.forced_merges, b.stats.forced_merges) << what;
    EXPECT_EQ(a.stats.worst_violation, b.stats.worst_violation) << what;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << what;
    ASSERT_EQ(a.tree.size(), b.tree.size()) << what;
    for (std::size_t i = 0; i < a.tree.size(); ++i) {
        const auto& an = a.tree.node(static_cast<topo::node_id>(i));
        const auto& bn = b.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(an.left, bn.left) << what << " node " << i;
        ASSERT_EQ(an.right, bn.right) << what << " node " << i;
        ASSERT_EQ(an.arc, bn.arc) << what << " node " << i;
        ASSERT_EQ(an.edge_left, bn.edge_left) << what << " node " << i;
        ASSERT_EQ(an.edge_right, bn.edge_right) << what << " node " << i;
    }
}

/// All four strategies on both NN backends against one instance.
std::vector<routing_request> all_requests(const topo::instance& inst) {
    std::vector<routing_request> reqs;
    for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
        for (const strategy_id s :
             {strategy_id::zst_dme, strategy_id::ext_bst,
              strategy_id::ast_dme, strategy_id::separate_stitch}) {
            routing_request r;
            r.instance = &inst;
            r.options.engine.backend = be;
            r.strategy = s;
            if (s == strategy_id::ext_bst)
                r.spec = skew_spec::uniform(10e-12);
            reqs.push_back(r);
        }
    }
    return reqs;
}

/// The legacy direct call for a request (always executor-free, i.e. the
/// sequential single-threaded reference).
route_result direct_call(const routing_request& r) {
    switch (r.strategy) {
        case strategy_id::zst_dme:
            return route_zst_dme(*r.instance, r.options);
        case strategy_id::ext_bst:
            return route_ext_bst(*r.instance, r.spec.default_bound,
                                 r.options);
        case strategy_id::ast_dme:
            return route_ast_dme(*r.instance, r.spec, r.options, r.mode);
        case strategy_id::separate_stitch:
            return route_separate_stitch(*r.instance, r.options);
    }
    throw std::logic_error("unknown strategy");
}

// ------------------------------------------------------ blocker strategy
// A registered test strategy that parks its worker on a gate until the
// test releases it — the deterministic way to pin a single-worker pool at
// a known point while submissions queue up behind it.

struct worker_gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    bool entered = false;

    void reset() {
        std::lock_guard<std::mutex> lk(mu);
        open = false;
        entered = false;
    }
    void wait_entered() {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return entered; });
    }
    void release() {
        {
            std::lock_guard<std::mutex> lk(mu);
            open = true;
        }
        cv.notify_all();
    }
};

worker_gate& blocker_gate() {
    static worker_gate g;
    return g;
}

route_result strategy_blocker(const routing_request&, routing_context&) {
    worker_gate& g = blocker_gate();
    std::unique_lock<std::mutex> lk(g.mu);
    g.entered = true;
    g.cv.notify_all();
    g.cv.wait(lk, [&] { return g.open; });
    return {};
}

constexpr strategy_id kblocker_id = static_cast<strategy_id>(100);

void ensure_blocker_registered() {
    static bool once = [] {
        strategy_registry::global().add(kblocker_id, "test_blocker", "tblk",
                                        &strategy_blocker);
        return true;
    }();
    (void)once;
}

// ------------------------------------------------------------- the tests

TEST(RouteService, BatchedMatchesDirectCallsBitExact) {
    const auto mix = small_instance(90, 5, 21, true);
    const auto box = small_instance(70, 4, 22, false);
    for (const topo::instance* inst : {&mix, &box}) {
        const auto reqs = all_requests(*inst);
        service_options sopt;
        sopt.threads = 4;
        route_service svc(sopt);
        const auto got = svc.route_batch(reqs);
        ASSERT_EQ(got.size(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            ASSERT_TRUE(got[i].ok()) << got[i].status_message;
            const auto ref = direct_call(reqs[i]);
            expect_same_route(got[i], ref,
                              strategy_registry::global().name_of(
                                  reqs[i].strategy));
        }
    }
}

TEST(RouteService, StreamingSubmitMatchesDirectCallsBitExact) {
    // The full identity matrix: all 4 strategies x both backends x
    // {batch wrapper, streaming submit} x thread counts {1, 2, hw}.
    const auto inst = small_instance(90, 5, 21, true);
    const auto reqs = all_requests(inst);
    std::vector<route_result> refs;
    refs.reserve(reqs.size());
    for (const auto& r : reqs) refs.push_back(direct_call(r));

    const std::vector<int> counts{
        1, 2,
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))};
    for (const int threads : counts) {
        service_options sopt;
        sopt.threads = threads;
        route_service svc(sopt);

        const auto batch = svc.route_batch(reqs);
        std::vector<route_handle> handles;
        handles.reserve(reqs.size());
        for (const auto& r : reqs) handles.push_back(svc.submit(r));

        ASSERT_EQ(batch.size(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const std::string what =
                strategy_registry::global().name_of(reqs[i].strategy) +
                " threads=" + std::to_string(threads) + " req " +
                std::to_string(i);
            expect_same_route(batch[i], refs[i], "batch " + what);
            const auto streamed = handles[i].wait();
            expect_same_route(streamed, refs[i], "stream " + what);
        }
    }
}

TEST(RouteService, DeterministicAcrossThreadCounts) {
    const auto inst = small_instance(110, 6, 33, true);
    auto reqs = all_requests(inst);
    // Multi-merge requests exercise the engine-level fan-out as well.
    for (auto r : all_requests(inst)) {
        r.options.engine.order = merge_order::multi_merge;
        reqs.push_back(r);
    }
    // Speculative nearest-pair requests exercise the top-k plan() overlap
    // (engaged at threads >= 2, a no-op at 1 — identical either way).
    for (auto r : all_requests(inst)) {
        r.options.engine.speculate_k = 4;
        reqs.push_back(r);
    }
    std::vector<int> counts{1, 2,
                            static_cast<int>(std::max(
                                1u, std::thread::hardware_concurrency()))};
    std::vector<std::vector<route_result>> runs;
    for (const int threads : counts) {
        service_options sopt;
        sopt.threads = threads;
        route_service svc(sopt);
        runs.push_back(svc.route_batch(reqs));
    }
    for (std::size_t run = 1; run < runs.size(); ++run) {
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            ASSERT_TRUE(runs[run][i].ok()) << runs[run][i].status_message;
            expect_same_route(
                runs[run][i], runs[0][i],
                "threads=" + std::to_string(counts[run]) + " req " +
                    std::to_string(i));
        }
    }
}

TEST(RouteService, ParallelMultiMergeMatchesSequentialEngine) {
    const auto inst = small_instance(150, 6, 44, true);
    for (const strategy_id s : {strategy_id::zst_dme, strategy_id::ast_dme,
                                strategy_id::separate_stitch}) {
        routing_request r;
        r.instance = &inst;
        r.strategy = s;
        if (s == strategy_id::ast_dme) r.mode = ast_mode::windowed;
        r.options.engine.order = merge_order::multi_merge;

        const auto sequential = direct_call(r);  // executor-free reference
        service_options sopt;
        sopt.threads = 4;
        route_service svc(sopt);
        const auto threaded = svc.route(r);
        EXPECT_GT(threaded.stats.rounds, 0);
        expect_same_route(threaded, sequential,
                          "multi_merge " +
                              strategy_registry::global().name_of(s));
    }
}

TEST(RouteService, ErrorInOneRequestIsIsolatedWithStatus) {
    const auto inst = small_instance(60, 4, 55, true);
    auto good = all_requests(inst);
    std::vector<routing_request> reqs{good[0], routing_request{}, good[1]};
    // reqs[1].instance is null: that slot alone must report
    // route_status::error — no string matching needed to classify it.
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    const auto got = svc.route_batch(reqs);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(got[0].ok()) << got[0].status_message;
    EXPECT_EQ(got[1].status, route_status::error);
    EXPECT_FALSE(got[1].ok());
    EXPECT_NE(got[1].status_message.find("instance"), std::string::npos)
        << got[1].status_message;
    EXPECT_TRUE(got[2].ok()) << got[2].status_message;
    expect_same_route(got[0], direct_call(reqs[0]), "isolated[0]");
    expect_same_route(got[2], direct_call(reqs[2]), "isolated[2]");
}

TEST(RouteService, ScratchAndInstanceReuseAreBitIdentical) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = 80;
    spec.seed = 66;
    routing_context ctx;
    const topo::instance& inst = ctx.intermingled(spec, 5, 67);
    EXPECT_EQ(&inst, &ctx.intermingled(spec, 5, 67));  // cache hit
    EXPECT_EQ(ctx.cached_instances(), 1u);

    routing_request r;
    r.instance = &inst;
    r.mode = ast_mode::windowed;  // rejections populate the ban/starved sets
    const auto first = route(r, ctx);   // fresh scratch, returned to pool
    const auto second = route(r, ctx);  // reused scratch
    expect_same_route(first, second, "scratch reuse");
    expect_same_route(first, route(r), "transient context");
}

TEST(RouteService, TimingAndThreadsRecordedUniformly) {
    const auto inst = small_instance(80, 4, 77, true);
    routing_request r;
    r.instance = &inst;
    const auto direct = route(r);
    EXPECT_GT(direct.cpu_seconds, 0.0);
    EXPECT_EQ(direct.threads_used, 1);

    service_options sopt;
    sopt.threads = 3;
    route_service svc(sopt);
    EXPECT_EQ(svc.threads(), 3);
    const auto served = svc.route(r);
    EXPECT_GT(served.cpu_seconds, 0.0);
    EXPECT_EQ(served.threads_used, 3);
    const auto batch = svc.route_batch({r});
    ASSERT_TRUE(batch[0].ok());
    EXPECT_GT(batch[0].cpu_seconds, 0.0);
    EXPECT_EQ(batch[0].threads_used, 3);
}

TEST(RouteService, RegistryResolvesNamesAndRejectsUnknownIds) {
    auto& reg = strategy_registry::global();
    EXPECT_EQ(reg.id_of("ast_dme"), strategy_id::ast_dme);
    EXPECT_EQ(reg.id_of("ast"), strategy_id::ast_dme);
    EXPECT_EQ(reg.id_of("zst"), strategy_id::zst_dme);
    EXPECT_EQ(reg.id_of("bst"), strategy_id::ext_bst);
    EXPECT_EQ(reg.id_of("sep"), strategy_id::separate_stitch);
    EXPECT_FALSE(reg.id_of("nonesuch").has_value());
    // Other tests may have registered extensions (the blocker strategy);
    // the four built-ins are always present.
    EXPECT_GE(reg.names().size(), 4u);
    for (const char* name :
         {"zst_dme", "ext_bst", "ast_dme", "separate_stitch"})
        EXPECT_TRUE(reg.id_of(name).has_value()) << name;
    EXPECT_EQ(reg.name_of(strategy_id::ext_bst), "ext_bst");

    const auto inst = small_instance(24, 1, 88, false);
    routing_request r;
    r.instance = &inst;
    r.strategy = static_cast<strategy_id>(99);
    EXPECT_THROW((void)route(r), std::out_of_range);
    routing_request null_req;
    EXPECT_THROW((void)route(null_req), std::invalid_argument);
}

TEST(RouteService, BatchedResultsStillVerify) {
    // The service path must hand back trees the independent evaluator
    // accepts, exactly like the direct path.
    const auto inst = small_instance(100, 5, 99, true);
    routing_request r;
    r.instance = &inst;
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    const auto got = svc.route_batch({r});
    ASSERT_TRUE(got[0].ok()) << got[0].status_message;
    const router_options opt;
    const auto vr = eval::verify_route(got[0], inst, opt.model,
                                       skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
}

TEST(RouteService, StatusNamesAreStable) {
    EXPECT_STREQ(to_string(route_status::ok), "ok");
    EXPECT_STREQ(to_string(route_status::cancelled), "cancelled");
    EXPECT_STREQ(to_string(route_status::deadline_exceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(to_string(route_status::error), "error");
}

TEST(RouteService, CompletionCallbackAndTryGet) {
    const auto inst = small_instance(60, 4, 12, true);
    routing_request r;
    r.instance = &inst;
    const auto ref = direct_call(r);

    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    std::atomic<int> callbacks{0};
    std::atomic<double> seen_wl{0.0};
    submit_options so;
    so.on_complete = [&](const route_result& res) {
        ++callbacks;
        seen_wl.store(res.wirelength);
    };
    route_handle h = svc.submit(r, so);
    ASSERT_TRUE(h.valid());
    std::optional<route_result> got;
    while (!got.has_value()) {  // streaming consumption: poll try_get
        got = h.try_get();
        if (!got.has_value())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(h.done());
    EXPECT_EQ(callbacks.load(), 1);
    EXPECT_EQ(seen_wl.load(), got->wirelength);
    expect_same_route(*got, ref, "try_get stream");
    EXPECT_FALSE(h.try_get().has_value());  // one-shot retrieval
    EXPECT_FALSE(h.cancel());               // already completed
}

TEST(RouteService, PriorityOrderIsClaimedFirstBySingleWorker) {
    // A single-worker pool makes claim order observable: hold the worker
    // on the blocker gate, queue a low-priority backlog, then a late
    // high-priority submit — the high one must complete before the
    // backlog.
    ensure_blocker_registered();
    blocker_gate().reset();
    const auto inst = small_instance(40, 3, 7, true);

    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);

    std::mutex order_mu;
    std::vector<std::string> order;
    const auto tagged = [&](const char* label, int priority) {
        submit_options so;
        so.priority = priority;
        so.on_complete = [&, label](const route_result&) {
            std::lock_guard<std::mutex> lk(order_mu);
            order.emplace_back(label);
        };
        return so;
    };

    routing_request blocker;
    blocker.instance = &inst;
    blocker.strategy = kblocker_id;
    auto hgate = svc.submit(blocker, tagged("gate", 100));
    blocker_gate().wait_entered();  // the worker is now pinned

    routing_request r;
    r.instance = &inst;
    auto hlow1 = svc.submit(r, tagged("low1", 0));
    auto hlow2 = svc.submit(r, tagged("low2", 0));
    auto hhigh = svc.submit(r, tagged("high", 7));  // late but urgent

    blocker_gate().release();
    (void)hgate.wait();
    const auto rhigh = hhigh.wait();
    const auto rlow1 = hlow1.wait();
    const auto rlow2 = hlow2.wait();
    EXPECT_TRUE(rhigh.ok() && rlow1.ok() && rlow2.ok());

    const std::vector<std::string> expected{"gate", "high", "low1", "low2"};
    EXPECT_EQ(order, expected);
    expect_same_route(rhigh, direct_call(r), "priority result");
}

TEST(RouteService, CancelQueuedRequestCompletesImmediately) {
    ensure_blocker_registered();
    blocker_gate().reset();
    const auto inst = small_instance(40, 3, 8, true);

    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);

    routing_request blocker;
    blocker.instance = &inst;
    blocker.strategy = kblocker_id;
    auto hgate = svc.submit(blocker);
    blocker_gate().wait_entered();

    routing_request r;
    r.instance = &inst;
    auto h = svc.submit(r);
    EXPECT_FALSE(h.done());
    EXPECT_TRUE(h.cancel());  // still queued: completes inside the call
    EXPECT_TRUE(h.done());    // did not wait for the pinned worker
    auto res = h.try_get();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->status, route_status::cancelled);
    EXPECT_EQ(res->status_message, "cancelled");
    EXPECT_EQ(res->tree.size(), 0u);

    blocker_gate().release();
    EXPECT_TRUE(hgate.wait().ok());
    // The cancelled slot never perturbed the service: the same request
    // routes normally afterwards.
    expect_same_route(svc.submit(r).wait(), direct_call(r),
                      "post-cancel resubmit");
}

TEST(RouteService, CancelMidReduceStopsWithinOneRoundAndFreesScratch) {
    const auto inst = small_instance(150, 6, 44, true);
    routing_request base;
    base.instance = &inst;
    base.mode = ast_mode::windowed;

    // Count the checkpoints of an unperturbed run (poll 1 is the dispatch
    // pre-check; each engine selection step polls once before working).
    cancel_probe counting;
    routing_context warm;
    {
        routing_request r = base;
        r.options.engine.cancel.set_probe(&counting);
        ASSERT_TRUE(route(r, warm).ok());
    }
    ASSERT_GT(counting.polls, 20u);
    const std::uint64_t trip = counting.polls / 2;

    // Trip the cancel flag at checkpoint `trip`: the same poll must
    // observe it — cancellation latency is bounded by one merge round.
    std::atomic<bool> flag{false};
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k == trip) flag.store(true, std::memory_order_relaxed);
    };
    routing_context ctx;
    routing_request r = base;
    r.options.engine.cancel =
        cancel_token(&flag, cancel_token::no_deadline());
    r.options.engine.cancel.set_probe(&probe);
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::cancelled);
    EXPECT_EQ(res.status_message, "cancelled");
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_EQ(probe.polls, trip);          // stopped at that checkpoint
    // Polls 2..trip-1 each preceded at most one commit, so the burned
    // work (reported via the interrupt's stats) is bounded by the
    // checkpoint count — and non-zero, proving a genuine mid-reduce stop.
    EXPECT_GT(res.stats.merges, 0);
    EXPECT_LE(res.stats.merges, static_cast<int>(trip) - 2);
    EXPECT_EQ(ctx.pooled_scratch(), 1u);   // lease released by the unwind

    // The pool is reusable: an identical request on the same context is
    // bit-identical to a fresh transient-context run.
    const auto again = route(base, ctx);
    expect_same_route(again, route(base), "post-cancel scratch reuse");
}

TEST(RouteService, CancelMidSpeculativeReduceStopsAndStrandsNothing) {
    // The selection checkpoint precedes the speculative top-k dispatch, so
    // a fired token stops the reduce before another plan() batch fans out
    // — and because the batch is a blocking parallel_for, no speculative
    // task can outlive its step: after the unwind the pool is quiescent
    // and immediately reusable.  Checkpoint counting works exactly as on
    // the plain engine (speculation adds no polls).
    const auto inst = small_instance(150, 6, 44, true);
    thread_pool pool(2);  // wide enough for speculation to engage
    routing_request base;
    base.instance = &inst;
    base.mode = ast_mode::windowed;
    base.options.engine.executor = &pool;
    base.options.engine.speculate_k = 8;

    cancel_probe counting;
    routing_context warm;
    {
        routing_request r = base;
        r.options.engine.cancel.set_probe(&counting);
        const auto full = route(r, warm);
        ASSERT_TRUE(full.ok());
        ASSERT_GT(full.stats.speculated_plans, 0);  // pipeline engaged
    }
    ASSERT_GT(counting.polls, 20u);
    const std::uint64_t trip = counting.polls / 2;

    std::atomic<bool> flag{false};
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k == trip) flag.store(true, std::memory_order_relaxed);
    };
    routing_context ctx;
    routing_request r = base;
    r.options.engine.cancel =
        cancel_token(&flag, cancel_token::no_deadline());
    r.options.engine.cancel.set_probe(&probe);
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::cancelled);
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_EQ(probe.polls, trip);        // same bound as the plain engine
    EXPECT_GT(res.stats.merges, 0);
    EXPECT_LE(res.stats.merges, static_cast<int>(trip) - 2);
    // The interrupt closed the speculation books on its way out.
    EXPECT_GT(res.stats.speculated_plans, 0);
    EXPECT_EQ(res.stats.wasted_speculation,
              res.stats.speculated_plans - res.stats.speculative_hits);
    EXPECT_EQ(ctx.pooled_scratch(), 1u);  // lease released by the unwind

    // Nothing was stranded: the same pool and context immediately serve
    // an identical speculative request, bit-identical to a fresh one.
    const auto again = route(base, ctx);
    expect_same_route(again, route(base), "post-cancel speculative reuse");
}

TEST(RouteService, DeadlineMidSpeculativeReduceReportsAndRecovers) {
    // Same contract for deadlines: expiry is observed at the next
    // selection checkpoint, before the step's speculative dispatch.
    const auto inst = small_instance(150, 6, 44, true);
    thread_pool pool(2);
    routing_request r;
    r.instance = &inst;
    r.mode = ast_mode::windowed;
    r.options.engine.executor = &pool;
    r.options.engine.speculate_k = 8;
    cancel_probe probe;
    probe.on_poll = [](std::uint64_t k) {
        if (k == 10)
            std::this_thread::sleep_for(std::chrono::milliseconds(120));
    };
    r.options.engine.cancel = cancel_token(
        nullptr, std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(40));
    r.options.engine.cancel.set_probe(&probe);
    routing_context ctx;
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::deadline_exceeded);
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_EQ(ctx.pooled_scratch(), 1u);
}

TEST(RouteService, CancelMidMultiMergeStopsAtRoundBoundary) {
    const auto inst = small_instance(150, 6, 44, true);
    routing_request base;
    base.instance = &inst;
    base.mode = ast_mode::windowed;
    base.options.engine.order = merge_order::multi_merge;

    cancel_probe counting;
    routing_context warm;
    {
        routing_request r = base;
        r.options.engine.cancel.set_probe(&counting);
        ASSERT_TRUE(route(r, warm).ok());
    }
    ASSERT_GT(counting.polls, 4u);
    const std::uint64_t trip = counting.polls / 2;

    std::atomic<bool> flag{false};
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k == trip) flag.store(true, std::memory_order_relaxed);
    };
    routing_context ctx;
    routing_request r = base;
    r.options.engine.cancel =
        cancel_token(&flag, cancel_token::no_deadline());
    r.options.engine.cancel.set_probe(&probe);
    const auto res = route(r, ctx);
    EXPECT_EQ(res.status, route_status::cancelled);
    EXPECT_EQ(probe.polls, trip);
    // Polls 2..trip-1 each completed exactly one multi-merge round before
    // the flag was observed at `trip` — one-round latency, by count.
    EXPECT_EQ(res.stats.rounds, static_cast<int>(trip - 2));
}

TEST(RouteService, CallerTokenFlagIsHonoredThroughSubmit) {
    // A request arriving with its own cancel flag keeps it working on the
    // async path: the service chains the request token behind the
    // handle-wired one, so either flag stops the run.
    const auto inst = small_instance(150, 6, 44, true);
    routing_request r;
    r.instance = &inst;
    r.mode = ast_mode::windowed;
    std::atomic<bool> my_flag{false};
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k == 30) my_flag.store(true, std::memory_order_relaxed);
    };
    r.options.engine.cancel =
        cancel_token(&my_flag, cancel_token::no_deadline());
    r.options.engine.cancel.set_probe(&probe);

    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    const auto res = svc.submit(r).wait();
    EXPECT_EQ(res.status, route_status::cancelled);
    EXPECT_EQ(probe.polls, 30u);  // probe forwarded, counted once per poll
    EXPECT_EQ(res.tree.size(), 0u);
}

TEST(RouteService, ExpiredDeadlineSkipsReduceEntirely) {
    const auto inst = small_instance(80, 4, 9, true);
    routing_request r;
    r.instance = &inst;
    cancel_probe probe;
    r.options.engine.cancel.set_probe(&probe);

    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    submit_options so;
    so.deadline = std::chrono::steady_clock::now();  // already expired
    const auto res = svc.submit(r, so).wait();
    EXPECT_EQ(res.status, route_status::deadline_exceeded);
    EXPECT_EQ(res.status_message, "deadline exceeded");
    EXPECT_EQ(res.stats.merges, 0);
    EXPECT_EQ(res.tree.size(), 0u);
    EXPECT_EQ(probe.polls, 1u);  // only the dispatch pre-check ran

    // Same contract on the direct path: a request whose own token carries
    // an expired deadline never enters the strategy.
    routing_request direct = r;
    direct.options.engine.cancel =
        cancel_token(nullptr, std::chrono::steady_clock::now());
    const auto dres = route(direct);
    EXPECT_EQ(dres.status, route_status::deadline_exceeded);
    EXPECT_EQ(dres.stats.merges, 0);
}

TEST(RouteService, DeadlineFiringMidReduceReportsDeadlineExceeded) {
    const auto inst = small_instance(120, 5, 10, true);
    routing_request r;
    r.instance = &inst;
    r.mode = ast_mode::windowed;
    // Park the reduce at its second checkpoint until the deadline is
    // safely in the past, so the mid-run expiry is deterministic.
    cancel_probe probe;
    probe.on_poll = [](std::uint64_t k) {
        if (k == 2)
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
    };
    r.options.engine.cancel.set_probe(&probe);

    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    submit_options so;
    so.deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(100);
    const auto res = svc.submit(r, so).wait();
    EXPECT_EQ(res.status, route_status::deadline_exceeded);
    EXPECT_EQ(res.stats.merges, 0);
    EXPECT_EQ(res.tree.size(), 0u);
}

TEST(RouteService, CancelMidReduceNeverPerturbsSiblings) {
    const auto inst = small_instance(150, 6, 44, true);
    routing_request req;
    req.instance = &inst;
    req.mode = ast_mode::windowed;
    const auto ref = direct_call(req);

    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);

    // The victim cancels *itself* from an engine checkpoint through its
    // public handle — exactly a cancel() racing a running reduce, made
    // deterministic (the checkpoint blocks until the handle exists).
    std::mutex hmu;
    std::condition_variable hcv;
    bool hset = false;
    route_handle victim;
    cancel_probe probe;
    probe.on_poll = [&](std::uint64_t k) {
        if (k != 40) return;
        std::unique_lock<std::mutex> lk(hmu);
        hcv.wait(lk, [&] { return hset; });
        EXPECT_TRUE(victim.cancel());  // running: cooperative
    };
    routing_request vreq = req;
    vreq.options.engine.cancel.set_probe(&probe);
    auto h = svc.submit(vreq);
    {
        std::lock_guard<std::mutex> lk(hmu);
        victim = h;
        hset = true;
    }
    hcv.notify_all();
    auto sibling = svc.submit(req);  // identical, uncancelled

    const auto vres = h.wait();
    EXPECT_EQ(vres.status, route_status::cancelled);
    EXPECT_EQ(vres.tree.size(), 0u);
    const auto sres = sibling.wait();
    expect_same_route(sres, ref, "sibling of a cancelled request");
    // And the service remains pristine for the victim's request too.
    expect_same_route(svc.submit(req).wait(), ref, "victim resubmitted");
}

TEST(RouteService, DestructionDrainsAndHandlesOutliveTheService) {
    const auto inst = small_instance(70, 4, 13, true);
    routing_request r;
    r.instance = &inst;
    const auto ref = direct_call(r);
    std::vector<route_handle> handles;
    {
        service_options sopt;
        sopt.threads = 2;
        route_service svc(sopt);
        for (int i = 0; i < 3; ++i) handles.push_back(svc.submit(r));
    }  // destructor drains the queue; results stay reachable
    for (auto& h : handles) {
        const auto res = h.wait();  // must not block or dangle
        expect_same_route(res, ref, "post-destruction result");
    }
}

TEST(RouteHandle, OnCompleteExceptionIsSwallowed) {
    const auto inst = small_instance(60, 1, 31, false);
    routing_request r;
    r.instance = &inst;
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    submit_options sub;
    std::atomic<int> called{0};
    sub.on_complete = [&](const route_result& res) {
        ++called;
        EXPECT_TRUE(res.ok());
        throw std::runtime_error("callback bomb");
    };
    route_handle h = svc.submit(r, sub);
    // The throwing callback must neither kill the worker nor leave the
    // waiter blocked: wait() returns the stored result normally.
    const route_result res = h.wait();
    EXPECT_TRUE(res.ok()) << res.status_message;
    EXPECT_EQ(called.load(), 1);
    // The worker survived: the service still serves.
    EXPECT_TRUE(svc.submit(r).wait().ok());
}

TEST(RouteHandle, SecondRetrievalThrowsLogicError) {
    const auto inst = small_instance(60, 1, 32, false);
    routing_request r;
    r.instance = &inst;
    service_options sopt;
    sopt.threads = 1;
    route_service svc(sopt);
    route_handle h = svc.submit(r);
    route_handle copy = h;  // all copies address the same submission
    const route_result res = h.wait();
    EXPECT_TRUE(res.ok());
    EXPECT_THROW(h.wait(), std::logic_error);
    EXPECT_THROW(copy.wait(), std::logic_error);
    EXPECT_EQ(copy.try_get(), std::nullopt);  // try_get stays non-throwing
    EXPECT_TRUE(copy.done());
    EXPECT_THROW(route_handle{}.wait(), std::logic_error);  // empty handle
}

TEST(RouteHandle, TicketRevokeRacesWorkerClaim) {
    // A cancel storm against a single busy worker: while the blocker pins
    // the one worker, a sibling thread cancels queued submissions as the
    // gate opens and the worker starts claiming them.  Whoever wins each
    // state's claimed-exchange completes it — every handle resolves
    // exactly once, as `cancelled` or as a full result, never both and
    // never neither.
    ensure_blocker_registered();
    const auto inst = small_instance(40, 1, 33, false);
    routing_request work;
    work.instance = &inst;
    routing_request blocker;
    blocker.instance = &inst;
    blocker.strategy = kblocker_id;
    for (int round = 0; round < 5; ++round) {
        blocker_gate().reset();
        service_options sopt;
        sopt.threads = 1;
        route_service svc(sopt);
        route_handle pin = svc.submit(blocker);
        blocker_gate().wait_entered();
        std::vector<route_handle> handles;
        for (int i = 0; i < 16; ++i) handles.push_back(svc.submit(work));
        std::thread canceller([&] {
            for (auto& h : handles) h.cancel();
        });
        blocker_gate().release();
        canceller.join();
        EXPECT_TRUE(pin.wait().ok());
        int cancelled = 0, completed = 0;
        for (auto& h : handles) {
            const route_result res = h.wait();  // exactly one result each
            if (res.status == route_status::cancelled) {
                EXPECT_EQ(res.tree.size(), 0u);
                ++cancelled;
            } else {
                EXPECT_TRUE(res.ok()) << res.status_message;
                ++completed;
            }
        }
        EXPECT_EQ(cancelled + completed, 16);
    }
}

}  // namespace
}  // namespace astclk::core
