// Service-layer tests: batched route_service runs must be bit-identical
// to direct single-threaded router calls for all four strategies on both
// NN backends, deterministic across thread counts, and isolate a failing
// request from the rest of its batch.  Also covers the strategy registry,
// uniform timing/threads bookkeeping, scratch reuse, and the parallel
// multi-merge fan-out.

#include "core/route_service.hpp"
#include "eval/report.hpp"
#include "gen/grouping.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace astclk::core {
namespace {

topo::instance small_instance(int n, int k, std::uint64_t seed,
                              bool intermingled) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    spec.seed = seed;
    auto inst = gen::generate(spec);
    if (k > 1) {
        if (intermingled)
            gen::apply_intermingled_groups(inst, k, seed + 1);
        else
            gen::apply_clustered_groups(inst, k);
    }
    return inst;
}

/// Bit-exact comparison: every statistic the engine reports and every
/// node's topology/geometry (the acceptance bar for threaded execution).
void expect_same_route(const route_result& a, const route_result& b,
                       const std::string& what) {
    EXPECT_EQ(a.wirelength, b.wirelength) << what;
    EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
    EXPECT_EQ(a.stats.snake_wire, b.stats.snake_wire) << what;
    EXPECT_EQ(a.stats.rejected_pairs, b.stats.rejected_pairs) << what;
    EXPECT_EQ(a.stats.forced_merges, b.stats.forced_merges) << what;
    EXPECT_EQ(a.stats.worst_violation, b.stats.worst_violation) << what;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << what;
    ASSERT_EQ(a.tree.size(), b.tree.size()) << what;
    for (std::size_t i = 0; i < a.tree.size(); ++i) {
        const auto& an = a.tree.node(static_cast<topo::node_id>(i));
        const auto& bn = b.tree.node(static_cast<topo::node_id>(i));
        ASSERT_EQ(an.left, bn.left) << what << " node " << i;
        ASSERT_EQ(an.right, bn.right) << what << " node " << i;
        ASSERT_EQ(an.arc, bn.arc) << what << " node " << i;
        ASSERT_EQ(an.edge_left, bn.edge_left) << what << " node " << i;
        ASSERT_EQ(an.edge_right, bn.edge_right) << what << " node " << i;
    }
}

/// All four strategies on both NN backends against one instance.
std::vector<routing_request> all_requests(const topo::instance& inst) {
    std::vector<routing_request> reqs;
    for (const nn_backend be : {nn_backend::grid, nn_backend::linear}) {
        for (const strategy_id s :
             {strategy_id::zst_dme, strategy_id::ext_bst,
              strategy_id::ast_dme, strategy_id::separate_stitch}) {
            routing_request r;
            r.instance = &inst;
            r.options.engine.backend = be;
            r.strategy = s;
            if (s == strategy_id::ext_bst)
                r.spec = skew_spec::uniform(10e-12);
            reqs.push_back(r);
        }
    }
    return reqs;
}

/// The legacy direct call for a request (always executor-free, i.e. the
/// sequential single-threaded reference).
route_result direct_call(const routing_request& r) {
    switch (r.strategy) {
        case strategy_id::zst_dme:
            return route_zst_dme(*r.instance, r.options);
        case strategy_id::ext_bst:
            return route_ext_bst(*r.instance, r.spec.default_bound,
                                 r.options);
        case strategy_id::ast_dme:
            return route_ast_dme(*r.instance, r.spec, r.options, r.mode);
        case strategy_id::separate_stitch:
            return route_separate_stitch(*r.instance, r.options);
    }
    throw std::logic_error("unknown strategy");
}

TEST(RouteService, BatchedMatchesDirectCallsBitExact) {
    const auto mix = small_instance(90, 5, 21, true);
    const auto box = small_instance(70, 4, 22, false);
    for (const topo::instance* inst : {&mix, &box}) {
        const auto reqs = all_requests(*inst);
        service_options sopt;
        sopt.threads = 4;
        route_service svc(sopt);
        const auto got = svc.route_batch(reqs);
        ASSERT_EQ(got.size(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            ASSERT_TRUE(got[i].ok()) << got[i].error;
            const auto ref = direct_call(reqs[i]);
            expect_same_route(got[i].result, ref,
                              strategy_registry::global().name_of(
                                  reqs[i].strategy));
        }
    }
}

TEST(RouteService, DeterministicAcrossThreadCounts) {
    const auto inst = small_instance(110, 6, 33, true);
    auto reqs = all_requests(inst);
    // Multi-merge requests exercise the engine-level fan-out as well.
    for (auto r : all_requests(inst)) {
        r.options.engine.order = merge_order::multi_merge;
        reqs.push_back(r);
    }
    std::vector<int> counts{1, 2,
                            static_cast<int>(std::max(
                                1u, std::thread::hardware_concurrency()))};
    std::vector<std::vector<batch_entry>> runs;
    for (const int threads : counts) {
        service_options sopt;
        sopt.threads = threads;
        route_service svc(sopt);
        runs.push_back(svc.route_batch(reqs));
    }
    for (std::size_t run = 1; run < runs.size(); ++run) {
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            ASSERT_TRUE(runs[run][i].ok()) << runs[run][i].error;
            expect_same_route(
                runs[run][i].result, runs[0][i].result,
                "threads=" + std::to_string(counts[run]) + " req " +
                    std::to_string(i));
        }
    }
}

TEST(RouteService, ParallelMultiMergeMatchesSequentialEngine) {
    const auto inst = small_instance(150, 6, 44, true);
    for (const strategy_id s : {strategy_id::zst_dme, strategy_id::ast_dme,
                                strategy_id::separate_stitch}) {
        routing_request r;
        r.instance = &inst;
        r.strategy = s;
        if (s == strategy_id::ast_dme) r.mode = ast_mode::windowed;
        r.options.engine.order = merge_order::multi_merge;

        const auto sequential = direct_call(r);  // executor-free reference
        service_options sopt;
        sopt.threads = 4;
        route_service svc(sopt);
        const auto threaded = svc.route(r);
        EXPECT_GT(threaded.stats.rounds, 0);
        expect_same_route(threaded, sequential,
                          "multi_merge " +
                              strategy_registry::global().name_of(s));
    }
}

TEST(RouteService, ExceptionInOneRequestIsIsolated) {
    const auto inst = small_instance(60, 4, 55, true);
    auto good = all_requests(inst);
    std::vector<routing_request> reqs{good[0], routing_request{}, good[1]};
    // reqs[1].instance is null: the dispatch must throw for that slot only.
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    const auto got = svc.route_batch(reqs);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(got[0].ok()) << got[0].error;
    EXPECT_FALSE(got[1].ok());
    EXPECT_NE(got[1].error.find("instance"), std::string::npos)
        << got[1].error;
    EXPECT_TRUE(got[2].ok()) << got[2].error;
    expect_same_route(got[0].result, direct_call(reqs[0]), "isolated[0]");
    expect_same_route(got[2].result, direct_call(reqs[2]), "isolated[2]");
}

TEST(RouteService, ScratchAndInstanceReuseAreBitIdentical) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = 80;
    spec.seed = 66;
    routing_context ctx;
    const topo::instance& inst = ctx.intermingled(spec, 5, 67);
    EXPECT_EQ(&inst, &ctx.intermingled(spec, 5, 67));  // cache hit
    EXPECT_EQ(ctx.cached_instances(), 1u);

    routing_request r;
    r.instance = &inst;
    r.mode = ast_mode::windowed;  // rejections populate the ban/starved sets
    const auto first = route(r, ctx);   // fresh scratch, returned to pool
    const auto second = route(r, ctx);  // reused scratch
    expect_same_route(first, second, "scratch reuse");
    expect_same_route(first, route(r), "transient context");
}

TEST(RouteService, TimingAndThreadsRecordedUniformly) {
    const auto inst = small_instance(80, 4, 77, true);
    routing_request r;
    r.instance = &inst;
    const auto direct = route(r);
    EXPECT_GT(direct.cpu_seconds, 0.0);
    EXPECT_EQ(direct.threads_used, 1);

    service_options sopt;
    sopt.threads = 3;
    route_service svc(sopt);
    EXPECT_EQ(svc.threads(), 3);
    const auto served = svc.route(r);
    EXPECT_GT(served.cpu_seconds, 0.0);
    EXPECT_EQ(served.threads_used, 3);
    const auto batch = svc.route_batch({r});
    ASSERT_TRUE(batch[0].ok());
    EXPECT_GT(batch[0].result.cpu_seconds, 0.0);
    EXPECT_EQ(batch[0].result.threads_used, 3);
}

TEST(RouteService, RegistryResolvesNamesAndRejectsUnknownIds) {
    auto& reg = strategy_registry::global();
    EXPECT_EQ(reg.id_of("ast_dme"), strategy_id::ast_dme);
    EXPECT_EQ(reg.id_of("ast"), strategy_id::ast_dme);
    EXPECT_EQ(reg.id_of("zst"), strategy_id::zst_dme);
    EXPECT_EQ(reg.id_of("bst"), strategy_id::ext_bst);
    EXPECT_EQ(reg.id_of("sep"), strategy_id::separate_stitch);
    EXPECT_FALSE(reg.id_of("nonesuch").has_value());
    EXPECT_EQ(reg.names().size(), 4u);
    EXPECT_EQ(reg.name_of(strategy_id::ext_bst), "ext_bst");

    const auto inst = small_instance(24, 1, 88, false);
    routing_request r;
    r.instance = &inst;
    r.strategy = static_cast<strategy_id>(99);
    EXPECT_THROW((void)route(r), std::out_of_range);
    routing_request null_req;
    EXPECT_THROW((void)route(null_req), std::invalid_argument);
}

TEST(RouteService, BatchedResultsStillVerify) {
    // The service path must hand back trees the independent evaluator
    // accepts, exactly like the direct path.
    const auto inst = small_instance(100, 5, 99, true);
    routing_request r;
    r.instance = &inst;
    service_options sopt;
    sopt.threads = 2;
    route_service svc(sopt);
    const auto got = svc.route_batch({r});
    ASSERT_TRUE(got[0].ok()) << got[0].error;
    const router_options opt;
    const auto vr = eval::verify_route(got[0].result, inst, opt.model,
                                       skew_spec::zero());
    EXPECT_TRUE(vr.ok) << vr.message;
}

}  // namespace
}  // namespace astclk::core
