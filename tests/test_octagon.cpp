// Octilinear convex region tests: canonical closure, membership, exact
// distances (cross-checked by brute force sampling), Minkowski expansion,
// vertex extraction, and the shortest-distance region of the paper's
// disjoint-group merges (Fig. 3).

#include "geom/octagon.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace astclk::geom {
namespace {

TEST(Octagon, PointRegion) {
    const auto o = octagon::at(point{2.0, 3.0});
    EXPECT_FALSE(o.empty());
    EXPECT_TRUE(o.contains(point{2.0, 3.0}));
    EXPECT_FALSE(o.contains(point{2.1, 3.0}, 1e-3));
    EXPECT_DOUBLE_EQ(o.area(), 0.0);
}

TEST(Octagon, RectRegion) {
    const auto o = octagon::rect({0.0, 4.0}, {0.0, 2.0});
    EXPECT_TRUE(o.contains(point{4.0, 2.0}));
    EXPECT_TRUE(o.contains(point{0.0, 0.0}));
    EXPECT_FALSE(o.contains(point{4.1, 2.0}, 1e-3));
    EXPECT_NEAR(o.area(), 8.0, 1e-9);
    EXPECT_EQ(o.vertices().size(), 4u);
}

TEST(Octagon, CanonicalClosureTightensSlabs) {
    // x in [0,10], y in [0,10], but u = x+y <= 5 cuts the square into a
    // triangle; closure must tighten x and y to [0,5].
    const octagon o({0, 10}, {0, 10}, {-100, 5}, interval::all());
    EXPECT_DOUBLE_EQ(o.x().hi, 5.0);
    EXPECT_DOUBLE_EQ(o.y().hi, 5.0);
    EXPECT_NEAR(o.area(), 12.5, 1e-9);
}

TEST(Octagon, InconsistentSlabsAreEmpty) {
    const octagon o({0, 1}, {0, 1}, {5, 6}, interval::all());  // x+y <= 2 < 5
    EXPECT_TRUE(o.empty());
}

TEST(Octagon, FromTiltedMatchesRectSemantics) {
    // A Manhattan arc (slope -1 through (1,0) and (0,1)): u = 1, v in [-1,1].
    const tilted_rect arc{interval::at(1.0), interval{-1.0, 1.0}};
    const auto o = octagon::from_tilted(arc);
    EXPECT_TRUE(o.contains(point{1.0, 0.0}));
    EXPECT_TRUE(o.contains(point{0.0, 1.0}));
    EXPECT_TRUE(o.contains(point{0.5, 0.5}));
    EXPECT_FALSE(o.contains(point{1.0, 1.0}, 1e-6));
}

TEST(Octagon, ExpansionIsL1Minkowski) {
    const auto o = octagon::at(point{0, 0}).expanded(2.0);
    // The L1 ball of radius 2.
    EXPECT_TRUE(o.contains(point{1.0, 1.0}));
    EXPECT_TRUE(o.contains(point{2.0, 0.0}));
    EXPECT_FALSE(o.contains(point{1.5, 1.0}, 1e-6));
    EXPECT_NEAR(o.area(), 8.0, 1e-9);  // diamond with diagonal 4
}

TEST(Octagon, DistanceToPointMatchesBruteForce) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> d(-20.0, 20.0);
    for (int iter = 0; iter < 40; ++iter) {
        const double x0 = d(rng), y0 = d(rng);
        const octagon o = octagon::rect({x0, x0 + 6.0}, {y0, y0 + 4.0})
                              .expanded(std::fabs(d(rng)) * 0.1);
        const point p{d(rng), d(rng)};
        const double dist = o.distance(p);
        // Brute force: min over a dense grid of the region.
        double best = 1e30;
        const auto vs = o.vertices();
        ASSERT_FALSE(vs.empty());
        double xmin = 1e30, xmax = -1e30, ymin = 1e30, ymax = -1e30;
        for (const auto& v : vs) {
            xmin = std::min(xmin, v.x);
            xmax = std::max(xmax, v.x);
            ymin = std::min(ymin, v.y);
            ymax = std::max(ymax, v.y);
        }
        const int n = 120;
        for (int i = 0; i <= n; ++i) {
            for (int j = 0; j <= n; ++j) {
                const point q{xmin + (xmax - xmin) * i / n,
                              ymin + (ymax - ymin) * j / n};
                if (o.contains(q, 1e-9)) best = std::min(best, manhattan(p, q));
            }
        }
        // Grid granularity bounds the brute-force error.
        const double cell =
            (xmax - xmin + ymax - ymin) / n + 1e-9;
        EXPECT_LE(dist, best + 1e-9);
        EXPECT_GE(dist, best - 2.0 * cell);
    }
}

TEST(Octagon, DistanceBetweenRegions) {
    const auto a = octagon::rect({0, 1}, {0, 1});
    const auto b = octagon::rect({4, 5}, {0, 1});
    EXPECT_NEAR(a.distance(b), 3.0, 1e-9);
    EXPECT_NEAR(a.distance(a), 0.0, 1e-12);
    // Diagonal separation: L1 distance adds both gaps.
    const auto c = octagon::rect({4, 5}, {3, 4});
    EXPECT_NEAR(a.distance(c), 5.0, 1e-9);
}

TEST(Octagon, NearestPointAchievesDistance) {
    const auto o = octagon::rect({0, 2}, {0, 2});
    const point p{5.0, 1.0};
    const auto q = o.nearest(p);
    ASSERT_TRUE(q.has_value());
    EXPECT_NEAR(manhattan(p, *q), o.distance(p), 1e-6);
    EXPECT_TRUE(o.contains(*q, 1e-6));
    // Interior point maps to itself.
    const auto inside = o.nearest(point{1.0, 1.0});
    ASSERT_TRUE(inside.has_value());
    EXPECT_DOUBLE_EQ(inside->x, 1.0);
}

TEST(Octagon, FeasiblePointIsInside) {
    const octagon o({0, 10}, {0, 10}, {8, 12}, {-3, 3});
    const auto p = o.feasible_point();
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(o.contains(*p, 1e-9));
    EXPECT_FALSE(octagon::empty_set().feasible_point().has_value());
}

TEST(Octagon, VerticesAreOctilinear) {
    const octagon o({0, 10}, {0, 10}, {3, 16}, {-6, 6});
    const auto vs = o.vertices();
    ASSERT_GE(vs.size(), 3u);
    for (std::size_t i = 0; i < vs.size(); ++i) {
        const point& a = vs[i];
        const point& b = vs[(i + 1) % vs.size()];
        const double dx = b.x - a.x, dy = b.y - a.y;
        // Every edge is horizontal, vertical, or +-45 degrees.
        const bool ok = std::fabs(dx) < 1e-9 || std::fabs(dy) < 1e-9 ||
                        std::fabs(std::fabs(dx) - std::fabs(dy)) < 1e-9;
        EXPECT_TRUE(ok) << "edge " << i << ": dx=" << dx << " dy=" << dy;
    }
}

// ---------------------------------------------------------------------------
// Shortest-distance region (paper Fig. 3): the merging region between two
// subtrees with no shared groups.
// ---------------------------------------------------------------------------

TEST(Sdr, TwoPointsGiveBoundingBox) {
    // For two points the SDR is exactly their axis-aligned bounding box.
    const auto a = tilted_rect::at(point{0, 0});
    const auto b = tilted_rect::at(point{3, 1});
    const auto sdr = shortest_distance_region(a, b);
    EXPECT_TRUE(sdr.contains(point{0, 0}));
    EXPECT_TRUE(sdr.contains(point{3, 1}));
    EXPECT_TRUE(sdr.contains(point{2, 0.5}));
    EXPECT_FALSE(sdr.contains(point{-0.5, 0}, 1e-6));
    EXPECT_FALSE(sdr.contains(point{2, 1.5}, 1e-6));
    EXPECT_NEAR(sdr.area(), 3.0, 1e-9);
}

TEST(Sdr, CollinearPointsGiveSegment) {
    const auto a = tilted_rect::at(point{0, 0});
    const auto b = tilted_rect::at(point{5, 0});
    const auto sdr = shortest_distance_region(a, b);
    EXPECT_NEAR(sdr.area(), 0.0, 1e-9);
    EXPECT_TRUE(sdr.contains(point{2.5, 0}));
}

TEST(Sdr, OverlappingRegionsGiveIntersection) {
    const tilted_rect a{interval{0, 4}, interval{0, 4}};
    const tilted_rect b{interval{2, 6}, interval{2, 6}};
    const auto sdr = shortest_distance_region(a, b);
    // d == 0, so the SDR is a ∩ b (in tilted space [2,4] x [2,4]).
    EXPECT_TRUE(sdr.contains(tilted_point{3.0, 3.0}.to_real()));
    EXPECT_FALSE(sdr.contains(tilted_point{1.0, 1.0}.to_real(), 1e-6));
}

class SdrProperty : public ::testing::TestWithParam<int> {};

TEST_P(SdrProperty, MembershipMatchesDistanceSum) {
    // p in SDR(a, b)  <=>  d(p, a) + d(p, b) == d(a, b).
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 977);
    std::uniform_real_distribution<double> coord(-30.0, 30.0);
    std::uniform_real_distribution<double> len(0.0, 10.0);
    for (int iter = 0; iter < 25; ++iter) {
        const double au = coord(rng), av = coord(rng);
        const double bu = coord(rng), bv = coord(rng);
        const tilted_rect a{interval{au, au + len(rng)},
                            interval{av, av + len(rng)}};
        const tilted_rect b{interval{bu, bu + len(rng)},
                            interval{bv, bv + len(rng)}};
        const double d = a.distance(b);
        const auto sdr = shortest_distance_region(a, b);
        std::uniform_real_distribution<double> probe(-80.0, 80.0);
        for (int s = 0; s < 60; ++s) {
            const tilted_point tp{probe(rng), probe(rng)};
            const double sum = a.distance(tp) + b.distance(tp);
            const bool on_sdr = std::fabs(sum - d) <= 1e-7;
            const bool in_region = sdr.contains(tp.to_real(), 1e-6);
            if (on_sdr) {
                EXPECT_TRUE(in_region) << "sum=" << sum << " d=" << d;
            }
            if (sum > d + 1e-5) {
                EXPECT_FALSE(in_region) << "sum=" << sum;
            }
        }
        // All iso-split merging segments lie inside the SDR.
        for (double f : {0.0, 0.3, 0.7, 1.0}) {
            const auto m = merging_segment(a, b, f * d, (1 - f) * d);
            for (const auto& p : m.sample_grid(3))
                EXPECT_TRUE(sdr.contains(p.to_real(), 1e-6));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdrProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace astclk::geom
