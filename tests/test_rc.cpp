// RC substrate tests: Elmore/path-length edge delays against hand
// calculations, and the closed-form merge solvers (split linearity, snake
// quadratics) as exact inverses.

#include "rc/delay_model.hpp"
#include "rc/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace astclk::rc {
namespace {

TEST(DelayModel, ElmoreHandComputed) {
    // r = 2 ohm/u, c = 3 F/u, wire length 4, load 5 F:
    // e = r*l*(c*l/2 + C) = 2*4*(6 + 5) = 88.
    delay_model m = delay_model::elmore({2.0, 3.0});
    EXPECT_DOUBLE_EQ(m.edge_delay(4.0, 5.0), 88.0);
    EXPECT_DOUBLE_EQ(m.wire_cap(4.0), 12.0);
    EXPECT_DOUBLE_EQ(m.edge_delay(0.0, 5.0), 0.0);
}

TEST(DelayModel, PathLengthIsGeometric) {
    delay_model m = delay_model::path_length();
    EXPECT_DOUBLE_EQ(m.edge_delay(7.5, 123.0), 7.5);
    EXPECT_DOUBLE_EQ(m.wire_cap(7.5), 0.0);
}

TEST(DelayModel, ClassicTechScale) {
    // 10 mm of wire (1e5 units) into a 20 fF load lands in the hundreds of
    // picoseconds — the regime of the r1-r5 benchmarks.
    delay_model m = delay_model::elmore(classic_clock_tech());
    const double d = m.edge_delay(1e5, 20e-15);
    EXPECT_GT(to_ps(d), 100.0);
    EXPECT_LT(to_ps(d), 1000.0);
}

TEST(Solve, LengthForDelayInvertsEdgeDelay) {
    delay_model m = delay_model::elmore({2.0, 3.0});
    for (double target : {0.0, 1.0, 88.0, 1234.5}) {
        const auto l = length_for_delay(m, target, 5.0);
        ASSERT_TRUE(l.has_value());
        EXPECT_NEAR(m.edge_delay(*l, 5.0), target, 1e-9 * (1.0 + target));
        EXPECT_GE(*l, 0.0);
    }
}

TEST(Solve, LengthForDelayPathLength) {
    const auto l = length_for_delay(delay_model::path_length(), 42.0, 99.0);
    ASSERT_TRUE(l.has_value());
    EXPECT_DOUBLE_EQ(*l, 42.0);
}

TEST(Solve, LengthForDelayDegenerateCases) {
    // Zero wire capacitance: pure-resistance solution target/(r*C).
    delay_model m{model_kind::elmore, {2.0, 0.0}};
    const auto l = length_for_delay(m, 10.0, 5.0);
    ASSERT_TRUE(l.has_value());
    EXPECT_DOUBLE_EQ(*l, 1.0);
    // No resistance at all: unreachable.
    delay_model zero{model_kind::elmore, {0.0, 1.0}};
    EXPECT_FALSE(length_for_delay(zero, 10.0, 5.0).has_value());
}

TEST(Solve, SnakeForExtraDelayInvertsExtension) {
    delay_model m = delay_model::elmore({0.003, 0.02});
    const double len = 40.0, cap = 7.0;
    for (double extra : {0.0, 0.5, 3.0, 100.0}) {
        const auto g = snake_for_extra_delay(m, len, cap, extra);
        ASSERT_TRUE(g.has_value());
        const double got =
            m.edge_delay(len + *g, cap) - m.edge_delay(len, cap);
        EXPECT_NEAR(got, extra, 1e-9 * (1.0 + extra));
        EXPECT_GE(*g, 0.0);
    }
}

TEST(Solve, DelayDiffEndpoints) {
    delay_model m = delay_model::elmore({2.0, 3.0});
    const double span = 10.0, ca = 4.0, cb = 6.0;
    EXPECT_DOUBLE_EQ(delay_diff(m, span, ca, cb, 0.0),
                     m.edge_delay(span, cb));
    EXPECT_DOUBLE_EQ(delay_diff(m, span, ca, cb, span),
                     -m.edge_delay(span, ca));
}

TEST(Solve, SplitForTargetSolvesExactly) {
    delay_model m = delay_model::elmore({2.0, 3.0});
    const double span = 10.0, ca = 4.0, cb = 6.0;
    for (double frac : {0.0, 0.25, 0.5, 0.9, 1.0}) {
        // Pick a target realised by some alpha, then recover it.
        const double alpha_true = frac * span;
        const double target = delay_diff(m, span, ca, cb, alpha_true);
        const auto alpha = split_for_target(m, span, ca, cb, target);
        ASSERT_TRUE(alpha.has_value());
        EXPECT_NEAR(*alpha, alpha_true, 1e-9 * span);
    }
}

TEST(Solve, SplitForTargetIsMonotoneDecreasing) {
    // D(alpha) decreases, so larger targets give smaller alphas.
    delay_model m = delay_model::elmore({0.003, 0.02});
    const double span = 1000.0, ca = 50.0, cb = 20.0;
    const auto a1 = split_for_target(m, span, ca, cb, 10.0);
    const auto a2 = split_for_target(m, span, ca, cb, 20.0);
    ASSERT_TRUE(a1 && a2);
    EXPECT_GT(*a1, *a2);
}

TEST(Solve, SplitForTargetUnclampedSignalsSnaking) {
    delay_model m = delay_model::elmore({2.0, 3.0});
    const double span = 10.0, ca = 4.0, cb = 6.0;
    // A target far above D(0) would need alpha < 0 (snake on the B side).
    const double big = m.edge_delay(span, cb) + 100.0;
    const auto alpha = split_for_target(m, span, ca, cb, big);
    ASSERT_TRUE(alpha.has_value());
    EXPECT_LT(*alpha, 0.0);
}

TEST(Solve, SplitForTargetPathLength) {
    delay_model m = delay_model::path_length();
    // (span - a) - a = target -> a = (span - target) / 2.
    const auto a = split_for_target(m, 10.0, 1.0, 1.0, 4.0);
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(*a, 3.0);
}

// Property sweep: the split equation stays exact across magnitudes,
// including the real benchmark technology scale.
class SplitProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SplitProperty, RoundTrip) {
    const auto [span, ca_ff, frac] = GetParam();
    delay_model m = delay_model::elmore(classic_clock_tech());
    const double ca = ca_ff * 1e-15, cb = 33e-15;
    const double alpha_true = frac * span;
    const double target = delay_diff(m, span, ca, cb, alpha_true);
    const auto alpha = split_for_target(m, span, ca, cb, target);
    ASSERT_TRUE(alpha.has_value());
    EXPECT_NEAR(*alpha, alpha_true, 1e-6 * std::max(1.0, span));
    EXPECT_NEAR(delay_diff(m, span, ca, cb, *alpha), target,
                1e-18 + 1e-9 * std::fabs(target));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitProperty,
    ::testing::Combine(::testing::Values(1.0, 500.0, 20000.0, 90000.0),
                       ::testing::Values(5.0, 50.0, 4000.0),
                       ::testing::Values(0.0, 0.3, 0.5, 1.0)));

}  // namespace
}  // namespace astclk::rc
