// Invariant-auditor suite (DESIGN.md §12).  Two halves:
//
//  * self-tests: every audit::verify_* checker runs green on healthy
//    state, then a violation is seeded — a corrupted edge, a stale grid
//    registration, a broken heap order, a leaked scratch lease, books
//    that do not sum, a plan-cache stamp from the future — and the
//    checker must name it.  A checker that cannot detect the corruption
//    it claims to guard against is worse than none: it certifies.
//  * checkpoint integration: the `checkpoint` helper counts and throws
//    correctly in every build, and in ASTCLK_AUDIT builds a routed
//    request demonstrably drives the engine's hook sites (the
//    process-wide checkpoint counter moves) while staying green.

#include "core/audit.hpp"
#include "core/dary_heap.hpp"
#include "core/route_context.hpp"
#include "core/strategy.hpp"
#include "gen/instance_gen.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace astclk::core {
namespace {

topo::instance small_instance(int n) {
    gen::instance_spec spec = gen::paper_spec("r1");
    spec.num_sinks = n;
    return gen::generate(spec);
}

route_result route_small(const topo::instance& inst, routing_context& ctx) {
    routing_request req;
    req.instance = &inst;
    req.strategy = strategy_id::ast_dme;
    route_result res = route(req, ctx);
    EXPECT_TRUE(res.ok()) << res.status_message;
    return res;
}

// ------------------------------------------------------ tree structure

TEST(AuditTree, HealthyRoutedTreePasses) {
    const auto inst = small_instance(40);
    routing_context ctx;
    const route_result res = route_small(inst, ctx);
    EXPECT_EQ(audit::verify_tree_structure(res.tree, inst.sinks.size()), "");
}

TEST(AuditTree, SeededNegativeEdgeFires) {
    const auto inst = small_instance(40);
    routing_context ctx;
    route_result res = route_small(inst, ctx);
    topo::clock_tree t = std::move(res.tree);
    t.node(t.root()).edge_left = -1.0;
    const std::string diag = audit::verify_tree_structure(t, inst.sinks.size());
    ASSERT_NE(diag, "");
    EXPECT_NE(diag.find("negative"), std::string::npos) << diag;
}

TEST(AuditTree, SeededNegativeCapAndSourceEdgeFire) {
    const auto inst = small_instance(24);
    routing_context ctx;
    route_result res = route_small(inst, ctx);
    topo::clock_tree bad_cap = res.tree;
    bad_cap.node(bad_cap.root()).subtree_cap = -1e-15;
    EXPECT_NE(audit::verify_tree_structure(bad_cap, inst.sinks.size()), "");
    topo::clock_tree bad_src = res.tree;
    bad_src.set_source_edge(-5.0);
    EXPECT_NE(audit::verify_tree_structure(bad_src, inst.sinks.size()), "");
}

TEST(AuditTree, SeededParentChildAsymmetryFires) {
    const auto inst = small_instance(24);
    routing_context ctx;
    route_result res = route_small(inst, ctx);
    topo::clock_tree t = std::move(res.tree);
    // Re-point the root's left child at the root itself: parent/child
    // symmetry breaks, which the delegated check_structure pass reports.
    t.node(t.root()).left = t.root();
    EXPECT_NE(audit::verify_tree_structure(t, inst.sinks.size()), "");
}

// ---------------------------------------------------- grid vs live set

TEST(AuditGrid, HealthyIndexPasses) {
    const auto inst = small_instance(64);
    topo::clock_tree t;
    std::vector<topo::node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<std::int32_t>(i)));
    grid_index g(&t, roots);
    EXPECT_EQ(audit::verify_grid_vs_live_set(g, t), "");

    // Still healthy after churn: erase some, re-insert one.
    g.erase(roots[3]);
    g.erase(roots[10]);
    g.insert(roots[3]);
    EXPECT_EQ(audit::verify_grid_vs_live_set(g, t), "");
}

TEST(AuditGrid, SeededStaleRegistrationFires) {
    const auto inst = small_instance(64);
    topo::clock_tree t;
    std::vector<topo::node_id> roots;
    for (std::size_t i = 0; i < inst.sinks.size(); ++i)
        roots.push_back(t.add_leaf(inst, static_cast<std::int32_t>(i)));
    grid_index g(&t, roots);
    ASSERT_EQ(audit::verify_grid_vs_live_set(g, t), "");
    // Mutate a registered node's arc *without* re-inserting it — exactly
    // the stale-registration corruption the checker exists to catch (a
    // correct engine always erases, mutates, then re-inserts).
    t.node(roots[7]).arc = t.node(roots[7]).arc.expanded(1e6);
    const std::string diag = audit::verify_grid_vs_live_set(g, t);
    ASSERT_NE(diag, "");
}

// -------------------------------------------------------- heap invariant

TEST(AuditHeap, DaryHeapPassesAndCorruptionFires) {
    std::vector<int> h;
    for (int v : {5, 1, 9, 9, 3, 7, 2, 8, 0, 4, 6, 11, -3})
        dary_push<std::less<int>>(h, v);
    EXPECT_EQ((audit::verify_heap_invariant<std::less<int>>(h)), "");
    dary_pop<std::less<int>>(h);
    EXPECT_EQ((audit::verify_heap_invariant<std::less<int>>(h)), "");

    // Seed: a tail element larger than everything breaks the d-ary order.
    h.back() = 1000;
    const std::string diag = audit::verify_heap_invariant<std::less<int>>(h);
    ASSERT_NE(diag, "");
    EXPECT_NE(diag.find("heap invariant"), std::string::npos) << diag;

    // Binary arity sanity: the template honours D.
    std::vector<int> bin{9, 7, 8, 1, 2, 3, 4};
    EXPECT_EQ((audit::verify_heap_invariant<std::less<int>, 2>(bin)), "");
    bin[3] = 99;  // child of bin[1] under D=2
    EXPECT_NE((audit::verify_heap_invariant<std::less<int>, 2>(bin)), "");
}

// -------------------------------------------------- scratch lease balance

TEST(AuditScratch, BalancedAfterQuiesceLeakWhileLeased) {
    routing_context ctx;
    EXPECT_EQ(audit::verify_scratch_lease_balance(ctx), "");  // nothing yet
    {
        auto a = ctx.scratch();
        auto b = ctx.scratch();
        (void)a;
        (void)b;
        // Two leases outstanding: the imbalance the checker reports when
        // called before quiescing (or after a real leak).
        const std::string diag = audit::verify_scratch_lease_balance(ctx);
        ASSERT_NE(diag, "");
        EXPECT_NE(diag.find("imbalance"), std::string::npos) << diag;
    }
    // Leases returned on destruction: balanced again.
    EXPECT_EQ(audit::verify_scratch_lease_balance(ctx), "");

    // A full route leaves a quiesced context balanced too.
    const auto inst = small_instance(32);
    (void)route_small(inst, ctx);
    EXPECT_EQ(audit::verify_scratch_lease_balance(ctx), "");
}

// ------------------------------------------------------------ stats books

TEST(AuditStats, RealRunPassesSeededCorruptionsFire) {
    const auto inst = small_instance(48);
    routing_context ctx;
    const route_result res = route_small(inst, ctx);
    ASSERT_EQ(audit::verify_stats_books(res.stats), "");
    EXPECT_EQ(audit::verify_stats_books(engine_stats{}), "");

    engine_stats bad = res.stats;
    ++bad.merges;  // taxonomy no longer sums
    EXPECT_NE(audit::verify_stats_books(bad), "");

    bad = res.stats;
    bad.rejected_pairs = -1;
    EXPECT_NE(audit::verify_stats_books(bad), "");

    bad = res.stats;
    bad.speculated_plans = 3;
    bad.speculative_hits = 5;  // more consumed than dispatched
    EXPECT_NE(audit::verify_stats_books(bad), "");

    bad = res.stats;
    bad.speculated_plans = 5;
    bad.speculative_hits = 2;
    bad.wasted_speculation = 1;  // books do not close (should be 3)
    EXPECT_NE(audit::verify_stats_books(bad), "");

    bad = res.stats;
    bad.worst_violation = 1e-12;  // violation without any forced merge
    bad.forced_merges = 0;
    EXPECT_NE(audit::verify_stats_books(bad), "");
}

TEST(AuditStats, AccumulatedBooksStillPass) {
    const auto inst = small_instance(48);
    routing_context ctx;
    routing_request req;
    req.instance = &inst;
    req.strategy = strategy_id::ast_dme;
    req.mode = ast_mode::windowed;  // ledger-free: sharding stays enabled
    req.options.engine.shards = 4;
    const route_result res = route(req, ctx);
    ASSERT_TRUE(res.ok()) << res.status_message;
    EXPECT_EQ(res.stats.shards, 4);
    EXPECT_EQ(audit::verify_stats_books(res.stats), "");
}

// ------------------------------------------------- plan-cache generations

TEST(AuditPlanCache, StampsCheckedAgainstGenerations) {
    plan_cache pc;
    std::vector<std::uint32_t> gen{0, 2, 1, 7};
    EXPECT_EQ(audit::verify_plan_cache_generations(pc, gen), "");  // empty

    // Current and stale stamps are both legal (stale = miss by design).
    pc.store(ordered_pair_key(1, 2), 2, 1, false, std::nullopt);
    pc.store(ordered_pair_key(3, 1), 4, 0, true, std::nullopt);
    EXPECT_EQ(audit::verify_plan_cache_generations(pc, gen), "");

    // Seed: a stamp from the future — gen_a above node 1's generation.
    pc.store(ordered_pair_key(1, 3), 9, 7, true, std::nullopt);
    std::string diag = audit::verify_plan_cache_generations(pc, gen);
    ASSERT_NE(diag, "");
    EXPECT_NE(diag.find("future"), std::string::npos) << diag;

    // Seed: an entry for a node the generation table has never seen.
    plan_cache pc2;
    pc2.store(ordered_pair_key(9, 1), 0, 0, false, std::nullopt);
    diag = audit::verify_plan_cache_generations(pc2, gen);
    ASSERT_NE(diag, "");
    EXPECT_NE(diag.find("unknown"), std::string::npos) << diag;
}

// -------------------------------------------------- checkpoint integration

TEST(AuditCheckpoint, HelperCountsAndThrows) {
    const std::uint64_t before = audit::checkpoints_run();
    EXPECT_NO_THROW(audit::checkpoint("test-site", ""));
    EXPECT_EQ(audit::checkpoints_run(), before + 1);
    try {
        audit::checkpoint("test-site", "seeded diagnostic");
        FAIL() << "checkpoint did not throw on a non-empty diagnostic";
    } catch (const audit::violation& v) {
        const std::string what = v.what();
        EXPECT_NE(what.find("audit[test-site]"), std::string::npos) << what;
        EXPECT_NE(what.find("seeded diagnostic"), std::string::npos) << what;
    }
    EXPECT_EQ(audit::checkpoints_run(), before + 2);
}

#ifdef ASTCLK_AUDIT
TEST(AuditCheckpoint, AuditBuildDrivesEngineHooks) {
    // In an ASTCLK_AUDIT build a routed request must actually exercise the
    // engine's checkpoint hook sites — and a healthy engine passes them.
    const auto inst = small_instance(48);
    routing_context ctx;
    const std::uint64_t before = audit::checkpoints_run();
    (void)route_small(inst, ctx);
    const std::uint64_t monolithic = audit::checkpoints_run();
    EXPECT_GT(monolithic, before)
        << "ASTCLK_AUDIT build ran a route without hitting any checkpoint";

    routing_request req;  // sharded path: shard/total book audits
    req.instance = &inst;
    req.strategy = strategy_id::ast_dme;
    req.mode = ast_mode::windowed;
    req.options.engine.shards = 3;
    const route_result res = route(req, ctx);
    ASSERT_TRUE(res.ok()) << res.status_message;
    EXPECT_GT(audit::checkpoints_run(), monolithic);
}
#endif

}  // namespace
}  // namespace astclk::core
